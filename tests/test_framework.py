"""Tests for the end-to-end Framework driver (Figure 4)."""

import numpy as np
import pytest

from repro.core import CompileOptions, Framework, PlanError, run_template
from repro.gpusim import GEFORCE_8800_GTX, GpuDevice, TESLA_C870, XEON_WORKSTATION
from repro.runtime import reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

SMALL_DEV = GpuDevice(name="small", memory_bytes=20 * 1024)  # 5k floats
BIG_DEV = GpuDevice(name="big", memory_bytes=8 << 20)


@pytest.fixture(scope="module")
def edge():
    g = find_edges_graph(48, 40, 5, 4)
    inputs = find_edges_inputs(48, 40, 5, 4, seed=21)
    ref = reference_execute(g, inputs)["Edg"]
    return g, inputs, ref


class TestCompile:
    def test_compile_validates_plan(self, edge):
        g, _, _ = edge
        compiled = Framework(SMALL_DEV).compile(g)
        assert compiled.peak_device_floats <= SMALL_DEV.usable_memory_floats
        assert compiled.split_report.any_split

    def test_template_not_mutated(self, edge):
        g, _, _ = edge
        n_ops = len(g.ops)
        Framework(SMALL_DEV).compile(g)
        assert len(g.ops) == n_ops

    def test_no_split_on_big_device(self, edge):
        g, _, _ = edge
        compiled = Framework(BIG_DEV).compile(g)
        assert not compiled.split_report.any_split
        assert compiled.transfer_floats() == g.io_size()

    def test_options_propagate(self, edge):
        g, _, _ = edge
        opts = CompileOptions(scheduler="bfs", eviction_policy="lru", eager_free=False)
        compiled = Framework(BIG_DEV, options=opts).compile(g)
        assert compiled.plan.label == "lru+lazy"

    def test_split_disabled_raises_when_needed(self, edge):
        g, _, _ = edge
        fw = Framework(SMALL_DEV, options=CompileOptions(split=False))
        with pytest.raises(PlanError):
            fw.compile(g)

    def test_summary_fields(self, edge):
        g, _, _ = edge
        s = Framework(SMALL_DEV).compile(g).summary()
        for key in ("transfer_floats", "device", "operators", "peak_device_floats"):
            assert key in s


class TestExecution:
    def test_execute_matches_reference(self, edge):
        g, inputs, ref = edge
        fw = Framework(SMALL_DEV)
        res = fw.execute(fw.compile(g), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_run_template_convenience(self, edge):
        g, inputs, ref = edge
        res = run_template(g, inputs, SMALL_DEV)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_simulate_agrees_with_execute(self, edge):
        g, inputs, _ = edge
        fw = Framework(SMALL_DEV, host=XEON_WORKSTATION)
        compiled = fw.compile(g)
        sim = fw.simulate(compiled)
        res = fw.execute(compiled, inputs)
        assert sim.transfer_floats == res.transfer_floats
        assert sim.total_time == pytest.approx(
            res.transfer_time + res.compute_time, rel=1e-6
        )


class TestRetargeting:
    """Section 2: automatic re-targeting across devices and data sizes."""

    def test_same_template_both_paper_devices(self, edge):
        g, inputs, ref = edge
        for dev in (TESLA_C870, GEFORCE_8800_GTX):
            fw = Framework(dev)
            res = fw.execute(fw.compile(g), inputs)
            np.testing.assert_allclose(
                res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5
            )

    def test_smaller_memory_never_transfers_less(self, edge):
        g, _, _ = edge
        caps = [128 * 1024, 256 * 1024, 8 << 20]
        vols = []
        for cap in caps:
            fw = Framework(GpuDevice(name=f"m{cap}", memory_bytes=cap))
            vols.append(fw.compile(g).transfer_floats())
        assert vols[0] >= vols[1] >= vols[2]

    def test_memory_variant_retarget(self, edge):
        g, inputs, ref = edge
        half = SMALL_DEV.with_memory(SMALL_DEV.memory_bytes // 2)
        fw = Framework(half)
        res = fw.execute(fw.compile(g), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)


class TestBaseline:
    def test_baseline_feasible_on_big_device(self, edge):
        g, inputs, ref = edge
        fw = Framework(BIG_DEV)
        compiled = fw.compile_baseline(g)
        res = fw.execute(compiled, inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_baseline_na_on_small_device(self, edge):
        g, _, _ = edge
        with pytest.raises(PlanError):
            Framework(SMALL_DEV).compile_baseline(g)

    def test_optimized_beats_baseline(self, edge):
        g, _, _ = edge
        fw = Framework(BIG_DEV, host=XEON_WORKSTATION)
        opt = fw.simulate(fw.compile(g))
        base = fw.simulate(fw.compile_baseline(g))
        assert opt.transfer_floats < base.transfer_floats
        assert opt.total_time < base.total_time


class TestAutoHeadroom:
    def test_auto_matches_best_candidate(self):
        """compile() with auto headroom returns the cheapest candidate."""
        g = find_edges_graph(400, 400, 16, 4)
        dev = GpuDevice(name="hr", memory_bytes=256 * 1024)
        candidates = []
        for h in (1.0, 2.0, 4.0):
            fw = Framework(dev, options=CompileOptions(split_headroom=h))
            candidates.append(fw.compile(g).transfer_floats())
        auto = Framework(
            dev, options=CompileOptions(split_headroom="auto")
        ).compile(g)
        assert auto.transfer_floats() == min(candidates)

    def test_in_core_skips_candidates(self):
        """When the template fits, only one compilation happens (fast path
        indistinguishable from headroom 1)."""
        g = find_edges_graph(48, 40, 5, 4)
        auto = Framework(BIG_DEV).compile(g)
        one = Framework(
            BIG_DEV, options=CompileOptions(split_headroom=1.0)
        ).compile(g)
        assert auto.transfer_floats() == one.transfer_floats()
        assert auto.plan.steps == one.plan.steps

    def test_fixed_headroom_respected(self):
        g = find_edges_graph(400, 400, 16, 4)
        dev = GpuDevice(name="hr2", memory_bytes=256 * 1024)
        fw = Framework(dev, options=CompileOptions(split_headroom=4.0))
        compiled = fw.compile(g)
        # All operators fit in a quarter of usable capacity.
        cap = dev.usable_memory_floats
        assert all(
            compiled.graph.op_footprint(o) <= cap / 4
            for o in compiled.graph.ops
        )
