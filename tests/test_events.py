"""Tests for the discrete-event stream execution engine.

Three pillars, mirroring the invariants ``repro.runtime.events``
documents:

* **oracle equality** — with a single shared copy engine the event
  engine's timing reproduces :func:`simulate_plan_overlap` exactly
  (same engine policies, same dependency model), so the overlap
  predictor is exact, not merely optimistic;
* **overlap never loses** — ``total_time <= sync_total_time`` in every
  configuration, and the per-direction engine never loses to the
  shared one;
* **execution fidelity** — firing steps in dependency order instead of
  plan order changes no output bit, and the recorded profile genuinely
  overlaps streams.
"""

import numpy as np
import pytest

from repro.core import CompileOptions, Framework, dfs_schedule, schedule_transfers
from repro.core.graph import OperatorGraph
from repro.gpusim import TESLA_C870, XEON_WORKSTATION, GpuDevice
from repro.runtime import (
    execute_plan_events,
    plan_streams,
    reference_execute,
    simulate_plan_events,
    simulate_plan_overlap,
    step_stream,
)
from repro.runtime.events import (
    COMPUTE,
    D2H_STREAM,
    H2D_STREAM,
    HOST_STREAM,
    SHARED_COPY,
)
from repro.templates import find_edges_graph, find_edges_inputs

KB = 1024

#: small memory forces evictions (re-uploads + saving downloads), which
#: is where the dependency model earns its keep
DEVICES = {
    "tight": GpuDevice(name="ev-tight", memory_bytes=128 * KB),
    "roomy": GpuDevice(name="ev-roomy", memory_bytes=2048 * KB),
}


@pytest.fixture(scope="module")
def compiled():
    g = find_edges_graph(96, 64, 5, 4)
    fw = Framework(DEVICES["tight"], host=XEON_WORKSTATION)
    return fw.compile(g)


def _compile_on(device):
    g = find_edges_graph(96, 64, 5, 4)
    return Framework(device, host=XEON_WORKSTATION).compile(g)


# ---------------------------------------------------------------------------
# Oracle equality: shared copy engine == simulate_plan_overlap, exactly
# ---------------------------------------------------------------------------
class TestOracleEquality:
    @pytest.mark.parametrize("device", sorted(DEVICES))
    @pytest.mark.parametrize("in_order", [False, True])
    def test_shared_engine_matches_overlap_prediction(self, device, in_order):
        """One copy engine + one compute engine is exactly the
        ``simulate_plan_overlap`` hardware model — bit-for-bit, not
        approximately: both run the same issue policy over the same
        dependency edges."""
        compiled = _compile_on(DEVICES[device])
        tl = simulate_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES[device],
            copy_streams="shared",
            in_order_copy=in_order,
        )
        ov = simulate_plan_overlap(
            compiled.plan, compiled.graph, DEVICES[device],
            in_order_copy=in_order,
        )
        assert tl.total_time == ov.total_time
        assert tl.copy_busy == ov.copy_busy
        assert tl.compute_busy == ov.compute_busy
        assert tl.sync_total_time == ov.sync_total_time

    def test_executed_timeline_matches_simulated(self, compiled):
        """Executing payloads through the engine does not perturb the
        timeline: event-for-event equal to the timing-only run."""
        sim = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES["tight"]
        )
        run = execute_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES["tight"],
            find_edges_inputs(96, 64, 5, 4, seed=3),
        )
        assert run.timeline.total_time == sim.total_time
        assert len(run.timeline.events) == len(sim.events)
        for a, b in zip(run.timeline.events, sim.events):
            assert (a.index, a.stream, a.start, a.finish) == (
                b.index, b.stream, b.start, b.finish
            )

    def test_hidden_transfer_accounting(self, compiled):
        tl = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES["tight"]
        )
        assert tl.hidden_transfer_time == pytest.approx(
            tl.sync_total_time - tl.total_time
        )
        assert 0.0 <= tl.hidden_transfer_fraction <= 1.0
        assert tl.speedup >= 1.0


# ---------------------------------------------------------------------------
# Overlap never loses
# ---------------------------------------------------------------------------
class TestTimingInvariants:
    @pytest.mark.parametrize("device", sorted(DEVICES))
    @pytest.mark.parametrize("mode", ["per-direction", "shared"])
    def test_never_slower_than_sync(self, device, mode):
        compiled = _compile_on(DEVICES[device])
        tl = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES[device], copy_streams=mode
        )
        assert tl.total_time <= tl.sync_total_time + 1e-12
        assert tl.total_time >= tl.compute_busy - 1e-12

    @pytest.mark.parametrize("device", sorted(DEVICES))
    def test_per_direction_never_loses_to_shared(self, device):
        """Splitting the DMA engine by direction removes contention; it
        can never add any."""
        compiled = _compile_on(DEVICES[device])
        split = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES[device],
            copy_streams="per-direction",
        )
        shared = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES[device],
            copy_streams="shared",
        )
        assert split.total_time <= shared.total_time + 1e-12

    def test_events_respect_dependencies(self, compiled):
        """Replay check: no event starts before all its deps finish,
        and each engine runs serially (no self-overlap)."""
        tl = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES["tight"]
        )
        finish = {ev.index: ev.finish for ev in tl.events}
        for ev in tl.events:
            for d in ev.deps:
                assert ev.start >= finish[d] - 1e-12, (
                    f"event {ev.index} started before dep {d} finished"
                )
        for stream, evs in tl.by_stream().items():
            ordered = sorted(evs, key=lambda e: e.start)
            for a, b in zip(ordered, ordered[1:]):
                assert b.start >= a.finish - 1e-12, (
                    f"stream {stream} overlaps itself"
                )

    def test_frees_gate_nothing(self, compiled):
        """Frees are host bookkeeping: zero duration, and no timed
        event depends on one."""
        tl = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES["tight"]
        )
        free_idx = {
            ev.index for ev in tl.events if ev.stream == HOST_STREAM
        }
        assert free_idx, "tight device should produce frees"
        for ev in tl.events:
            if ev.stream == HOST_STREAM:
                assert ev.duration == 0.0
            else:
                assert not free_idx.intersection(ev.deps)

    def test_serial_chain_cannot_overlap(self):
        """upload -> compute -> download strictly serialises (matches
        the overlap module's own boundary case)."""
        g = OperatorGraph()
        g.add_data("a", (64, 64), is_input=True)
        g.add_data("b", (64, 64), is_output=True)
        g.add_operator("op", "tanh", ["a"], ["b"])
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        tl = simulate_plan_events(plan, g, TESLA_C870)
        assert tl.total_time == pytest.approx(tl.sync_total_time, rel=1e-9)
        assert tl.hidden_transfer_fraction == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Execution fidelity
# ---------------------------------------------------------------------------
class TestExecution:
    @pytest.mark.parametrize("mode", ["per-direction", "shared"])
    def test_outputs_bit_identical_to_sync_executor(self, compiled, mode):
        inputs = find_edges_inputs(96, 64, 5, 4, seed=3)
        fw = Framework(DEVICES["tight"], host=XEON_WORKSTATION)
        sync = fw.execute(compiled, inputs)
        run = execute_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES["tight"],
            inputs,
            copy_streams=mode,
        )
        assert set(run.outputs) == set(sync.outputs)
        for name in sync.outputs:
            assert np.array_equal(run.outputs[name], sync.outputs[name]), name
        ref = reference_execute(find_edges_graph(96, 64, 5, 4), inputs)
        for name in ref:
            assert np.array_equal(run.outputs[name], ref[name]), name

    def test_transfer_counters_match_plan(self, compiled):
        run = execute_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES["tight"],
            find_edges_inputs(96, 64, 5, 4, seed=3),
        )
        assert run.h2d_floats == compiled.plan.h2d_floats(compiled.graph)
        assert run.d2h_floats == compiled.plan.d2h_floats(compiled.graph)

    def test_profile_genuinely_overlaps(self):
        """The recorded profile is the executed timeline: at least one
        transfer runs concurrently with a kernel on an overlappable
        template."""
        g = OperatorGraph()
        g.add_data("K", (16, 16), is_input=True)
        for i in range(8):
            g.add_data(f"a{i}", (256, 256), is_input=True)
            g.add_data(f"b{i}", (256, 256), is_output=True)
            g.add_operator(
                f"op{i}", "conv2d", [f"a{i}", "K"], [f"b{i}"], mode="same"
            )
        fw = Framework(TESLA_C870, host=XEON_WORKSTATION)
        compiled = fw.compile(g)
        rng = np.random.default_rng(0)
        inputs = {
            name: rng.standard_normal(ds.shape).astype(np.float32)
            for name, ds in g.data.items()
            if ds.is_input and ds.parent is None
        }
        run = execute_plan_events(
            compiled.plan, compiled.graph, TESLA_C870, inputs
        )
        assert run.total_time < run.sync_total_time - 1e-12
        kernels = [
            (e.start, e.start + e.duration)
            for e in run.profile.events
            if e.kind.name == "KERNEL"
        ]
        copies = [
            (e.start, e.start + e.duration)
            for e in run.profile.events
            if e.kind.name in ("H2D", "D2H") and e.duration > 0
        ]
        assert any(
            ks < ce and cs < ke
            for ks, ke in kernels
            for cs, ce in copies
        ), "no transfer overlapped any kernel"
        assert 0.0 <= run.overlap_efficiency <= 1.0
        assert run.overlap_efficiency > 0.0

    def test_stream_profiles_partition_the_profile(self, compiled):
        run = execute_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES["tight"],
            find_edges_inputs(96, 64, 5, 4, seed=3),
        )
        named = run.stream_profiles()
        names = [n for n, _ in named]
        assert COMPUTE in names and H2D_STREAM in names
        assert sum(len(p.events) for _, p in named) == len(run.profile.events)
        # Chrome-trace export lays each stream out as its own track.
        from repro.obs import chrome_trace

        trace = chrome_trace(profiles=named)
        assert trace["traceEvents"]

    def test_shared_mode_collapses_copy_tracks(self, compiled):
        run = execute_plan_events(
            compiled.plan,
            compiled.graph,
            DEVICES["tight"],
            find_edges_inputs(96, 64, 5, 4, seed=3),
            copy_streams="shared",
        )
        names = [n for n, _ in run.stream_profiles()]
        assert SHARED_COPY in names
        assert H2D_STREAM not in names and D2H_STREAM not in names


# ---------------------------------------------------------------------------
# Stream assignment surface (the `repro explain` column)
# ---------------------------------------------------------------------------
class TestStreamAssignment:
    def test_plan_streams_aligns_with_timeline(self, compiled):
        streams = plan_streams(compiled.plan)
        tl = simulate_plan_events(
            compiled.plan, compiled.graph, DEVICES["tight"]
        )
        assert streams == tl.stream_table()
        assert len(streams) == len(compiled.plan.steps)

    def test_step_stream_kinds(self, compiled):
        for step, stream in zip(compiled.plan.steps, plan_streams(compiled.plan)):
            text = str(step).split(None, 1)[0]
            expected = {
                "h2d": H2D_STREAM,
                "d2h": D2H_STREAM,
                "exec": COMPUTE,
                "free": HOST_STREAM,
            }[text]
            assert stream == expected
            assert step_stream(step) == expected

    def test_shared_mode_stream_names(self, compiled):
        streams = plan_streams(compiled.plan, copy_streams="shared")
        assert SHARED_COPY in streams
        assert H2D_STREAM not in streams and D2H_STREAM not in streams


# ---------------------------------------------------------------------------
# Input validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_bad_copy_streams_rejected(self, compiled):
        with pytest.raises(ValueError, match="copy_streams"):
            simulate_plan_events(
                compiled.plan, compiled.graph, DEVICES["tight"],
                copy_streams="triple",
            )

    def test_multi_device_plans_rejected(self):
        from repro.gpusim import homogeneous_group
        from repro.multigpu import compile_multi

        g = find_edges_graph(64, 64, 5, 4)
        compiled = compile_multi(g, homogeneous_group(TESLA_C870, 2))
        with pytest.raises(ValueError, match="single-device"):
            simulate_plan_events(compiled.plan, compiled.graph, TESLA_C870)
