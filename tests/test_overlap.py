"""Tests for asynchronous copy/compute overlap simulation."""

import pytest

from repro.core import Framework, dfs_schedule, schedule_transfers
from repro.gpusim import TESLA_C870, XEON_WORKSTATION
from repro.runtime import simulate_plan, simulate_plan_overlap
from repro.templates import find_edges_graph


@pytest.fixture(scope="module")
def compiled():
    g = find_edges_graph(512, 512, 16, 4)
    fw = Framework(TESLA_C870, host=XEON_WORKSTATION)
    return fw.compile(g)


class TestOverlap:
    def test_never_slower_than_sync(self, compiled):
        ov = simulate_plan_overlap(compiled.plan, compiled.graph, TESLA_C870)
        assert ov.total_time <= ov.sync_total_time + 1e-12
        assert ov.speedup >= 1.0

    def test_bounded_below_by_each_engine(self, compiled):
        ov = simulate_plan_overlap(compiled.plan, compiled.graph, TESLA_C870)
        assert ov.total_time >= ov.copy_busy - 1e-12
        assert ov.total_time >= ov.compute_busy - 1e-12

    def test_sync_time_matches_serial_simulator(self, compiled):
        ov = simulate_plan_overlap(compiled.plan, compiled.graph, TESLA_C870)
        sim = simulate_plan(compiled.plan, compiled.graph, TESLA_C870)
        assert ov.sync_total_time == pytest.approx(sim.total_time, rel=1e-9)

    def test_hidden_time_accounting(self, compiled):
        ov = simulate_plan_overlap(compiled.plan, compiled.graph, TESLA_C870)
        assert ov.hidden_transfer_time == pytest.approx(
            ov.sync_total_time - ov.total_time
        )
        assert 0.0 <= ov.exposed_transfer_fraction <= 1.0

    def test_speedup_capped_at_two(self, compiled):
        """Two engines can at most halve the time."""
        ov = simulate_plan_overlap(compiled.plan, compiled.graph, TESLA_C870)
        assert ov.speedup <= 2.0 + 1e-9

    def test_dependency_ordering_respected(self):
        """A launch cannot start before its input upload completes, so a
        transfer-then-compute chain cannot overlap at all."""
        from repro.core.graph import OperatorGraph

        g = OperatorGraph()
        g.add_data("a", (512, 512), is_input=True)
        g.add_data("b", (512, 512), is_output=True)
        g.add_operator("op", "tanh", ["a"], ["b"])
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        ov = simulate_plan_overlap(plan, g, TESLA_C870)
        # upload -> compute -> download strictly serialises.
        assert ov.total_time == pytest.approx(ov.sync_total_time, rel=1e-9)

    def test_independent_streams_do_overlap(self):
        """Many independent single-op pipelines overlap copy with compute."""
        from repro.core.graph import OperatorGraph

        g = OperatorGraph()
        g.add_data("K", (16, 16), is_input=True)
        for i in range(8):
            g.add_data(f"a{i}", (512, 512), is_input=True)
            g.add_data(f"b{i}", (512, 512), is_output=True)
            # conv with a 16x16 kernel: compute roughly balances transfer,
            # so two engines overlap substantially.
            g.add_operator(
                f"op{i}", "conv2d", [f"a{i}", "K"], [f"b{i}"], mode="same"
            )
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        ov = simulate_plan_overlap(plan, g, TESLA_C870)
        assert ov.total_time < ov.sync_total_time * 0.8
