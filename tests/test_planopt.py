"""Tests for post-scheduling plan transformations (upload prefetching)."""

import numpy as np
import pytest

from repro.core import Framework, hoist_uploads, validate_plan
from repro.core.plan import CopyToGPU
from repro.gpusim import GpuDevice, SimRuntime
from repro.runtime import execute_plan, reference_execute, simulate_plan_overlap
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="po-dev", memory_bytes=40 * 1024)


@pytest.fixture()
def compiled():
    g = find_edges_graph(64, 48, 5, 4)
    return Framework(DEV).compile(g)


class TestHoistUploads:
    def test_plan_still_valid(self, compiled):
        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        peak = validate_plan(pre, compiled.graph, DEV.usable_memory_floats)
        assert peak <= DEV.usable_memory_floats

    def test_transfer_volume_unchanged(self, compiled):
        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        assert pre.transfer_floats(compiled.graph) == compiled.transfer_floats()
        assert len(pre.steps) == len(compiled.plan.steps)

    def test_upload_multiset_preserved_and_some_hoisted(self, compiled):
        def uploads(plan):
            return sorted(
                s.data for s in plan.steps if isinstance(s, CopyToGPU)
            )

        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        assert uploads(pre) == uploads(compiled.plan)
        # Each upload still precedes the launches that consume it
        # (guaranteed by validation) and the earliest upload in the plan
        # can only move towards the front.
        first_before = next(
            i
            for i, s in enumerate(compiled.plan.steps)
            if isinstance(s, CopyToGPU)
        )
        first_after = next(
            i for i, s in enumerate(pre.steps) if isinstance(s, CopyToGPU)
        )
        assert first_after <= first_before

    def test_numerics_preserved(self, compiled):
        inputs = find_edges_inputs(64, 48, 5, 4, seed=14)
        ref = reference_execute(find_edges_graph(64, 48, 5, 4), inputs)["Edg"]
        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        res = execute_plan(pre, compiled.graph, SimRuntime(DEV), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_label_marks_prefetch(self, compiled):
        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        assert pre.label.endswith("+prefetch")

    def test_max_hoist_window(self, compiled):
        pre = hoist_uploads(
            compiled.plan,
            compiled.graph,
            DEV.usable_memory_floats,
            max_hoist=1,
        )
        validate_plan(pre, compiled.graph, DEV.usable_memory_floats)
        # With a window of 1, an upload moves at most one position.
        for i, s in enumerate(compiled.plan.steps):
            if isinstance(s, CopyToGPU):
                j = pre.steps.index(s)
                assert i - j <= 1 + sum(
                    1
                    for k, t in enumerate(compiled.plan.steps[:i])
                    if isinstance(t, CopyToGPU)
                    and pre.steps.index(t) != k
                )

    def test_launch_order_untouched(self, compiled):
        pre = hoist_uploads(
            compiled.plan, compiled.graph, DEV.usable_memory_floats
        )
        assert pre.launches() == compiled.plan.launches()


class TestPrefetchOverlapBenefit:
    def test_in_order_stream_benefits(self):
        """On a FIFO copy stream the prefetched plan overlaps strictly
        better than the just-in-time plan (the pass's purpose)."""
        g = find_edges_graph(2000, 2000, 16, 4)
        dev = GpuDevice(name="big", memory_bytes=8 << 20)
        compiled = Framework(dev).compile(g)
        pre = hoist_uploads(
            compiled.plan, compiled.graph, dev.usable_memory_floats
        )
        plain = simulate_plan_overlap(
            compiled.plan, compiled.graph, dev, in_order_copy=True
        )
        prefetched = simulate_plan_overlap(
            pre, compiled.graph, dev, in_order_copy=True
        )
        assert prefetched.total_time < plain.total_time
        # And approaches the multi-stream ideal.
        ideal = simulate_plan_overlap(compiled.plan, compiled.graph, dev)
        assert prefetched.total_time <= ideal.total_time * 1.10
