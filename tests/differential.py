"""Differential-testing harness: every executor against the reference.

The framework now has four ways to run a template — the host-only
reference interpreter, the statically planned simulator, the dynamic
run-time orchestrator, and the multi-GPU executor.  All of them run the
same float32 numpy operator implementations over row-chunked graphs, so
their outputs must agree *bitwise*, not merely within tolerance: any
drift means an executor gathered the wrong slot, scattered to the wrong
rows, or dropped a transfer.

This module is a library (no tests); test_differential.py drives it
across the (template x device x planner x executor) matrix and over
seeded random operator graphs.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

import numpy as np

from repro.core import CompileOptions, Framework, OperatorGraph
from repro.gpusim import GpuDevice, SimRuntime, homogeneous_group
from repro.multigpu import compile_multi, execute_multi
from repro.runtime import dynamic_execute, reference_execute

Outputs = dict[str, np.ndarray]

#: Planner configurations worth differentiating: the default pipeline,
#: a deliberately different scheduler+policy pair, and a lazy-free
#: minimal-split variant.  Correctness must be invariant to all of them.
PLANNERS: dict[str, CompileOptions] = {
    "default": CompileOptions(),
    "bfs-lru": CompileOptions(
        scheduler="bfs", eviction_policy="lru", split_headroom=1.0
    ),
    "topo-fifo-lazy": CompileOptions(
        scheduler="topo", eviction_policy="fifo", eager_free=False
    ),
}


def run_static(
    template: OperatorGraph,
    inputs: Mapping[str, np.ndarray],
    device: GpuDevice,
    options: CompileOptions,
) -> Outputs:
    """Compile a static plan and execute it on the simulator."""
    fw = Framework(device, options=options)
    compiled = fw.compile(template)
    return dict(fw.execute(compiled, inputs).outputs)


def run_dynamic(
    template: OperatorGraph,
    inputs: Mapping[str, np.ndarray],
    device: GpuDevice,
    options: CompileOptions,
) -> Outputs:
    """Execute the compiled (split) graph through the dynamic runtime."""
    compiled = Framework(device, options=options).compile(template)
    result = dynamic_execute(
        compiled.graph, SimRuntime(device), inputs, op_order=compiled.op_order
    )
    return dict(result.outputs)


def make_events_runner(
    copy_streams: str = "per-direction", in_order_copy: bool = False
) -> Callable[..., Outputs]:
    """An executor closure for the discrete-event stream engine.

    The *streams dimension* of the matrix: firing plan steps when their
    dependencies complete (instead of in serialized plan order) must not
    change a single output bit, whichever copy-engine layout is used.
    The engine also asserts its own timing invariant on every run:
    overlap never loses to the synchronous walk.
    """

    def run_events(
        template: OperatorGraph,
        inputs: Mapping[str, np.ndarray],
        device: GpuDevice,
        options: CompileOptions,
    ) -> Outputs:
        from repro.runtime import execute_plan_events

        compiled = Framework(device, options=options).compile(template)
        result = execute_plan_events(
            compiled.plan,
            compiled.graph,
            device,
            inputs,
            copy_streams=copy_streams,
            in_order_copy=in_order_copy,
        )
        assert result.total_time <= result.sync_total_time + 1e-12, (
            f"event engine slower than synchronous walk: "
            f"{result.total_time} > {result.sync_total_time}"
        )
        return dict(result.outputs)

    run_events.__name__ = f"run_events_{copy_streams}"
    return run_events


def make_multi_runner(
    num_devices: int, transfer_mode: str = "peer"
) -> Callable[..., Outputs]:
    """An executor closure for an N-device group in the given mode."""

    def run_multi(
        template: OperatorGraph,
        inputs: Mapping[str, np.ndarray],
        device: GpuDevice,
        options: CompileOptions,
    ) -> Outputs:
        group = homogeneous_group(device, num_devices)
        compiled = compile_multi(
            template, group, options=options, transfer_mode=transfer_mode
        )
        return dict(execute_multi(compiled, inputs).outputs)

    run_multi.__name__ = f"run_multi{num_devices}_{transfer_mode}"
    return run_multi


def make_service_runner(
    shards: int = 0, batch_window: float = 0.0, workers: int = 2
) -> Callable[..., Outputs]:
    """An executor that round-trips through the serving tier.

    ``shards=0`` uses the in-process :class:`ExecutionService`;
    ``shards>0`` spawns the multi-process sharded fleet — the *shard
    dimension* of the differential matrix: results must be bitwise
    identical no matter which process compiled and executed the plan,
    or whether batching coalesced the request with others.
    """
    from repro.service import (
        ExecutionService,
        ServiceConfig,
        ServiceRequest,
        ShardedExecutionService,
    )

    def run_service(
        template: OperatorGraph,
        inputs: Mapping[str, np.ndarray],
        device: GpuDevice,
        options: CompileOptions,
    ) -> Outputs:
        config = ServiceConfig(
            workers=workers,
            max_queue_depth=256,
            batch_window=batch_window,
        )
        if shards > 0:
            svc = ShardedExecutionService(config, shards=shards)
        else:
            svc = ExecutionService(config)
        with svc:
            ticket = svc.submit(ServiceRequest(
                template=template,
                device=device,
                options=options,
                mode="execute",
                inputs=dict(inputs),
            ))
            response = ticket.result(timeout=120)
        assert response.ok, f"service run failed: {response.error}"
        return dict(response.value.outputs)

    run_service.__name__ = (
        f"run_service_shards{shards}" if shards else "run_service"
    )
    return run_service


#: name -> callable(template, inputs, device, options) -> outputs
EXECUTORS: dict[str, Callable[..., Outputs]] = {
    "static": run_static,
    "dynamic": run_dynamic,
    "events": make_events_runner("per-direction"),
    "events-shared": make_events_runner("shared"),
    "multi2-peer": make_multi_runner(2, "peer"),
    "multi3-staged": make_multi_runner(3, "staged"),
}


def assert_bitwise_equal(
    reference: Mapping[str, np.ndarray], got: Mapping[str, np.ndarray], label: str
) -> None:
    """Outputs must match the reference exactly, key for key."""
    assert set(got) == set(reference), (
        f"{label}: output names {sorted(got)} != {sorted(reference)}"
    )
    for name, ref in reference.items():
        arr = got[name]
        assert arr.shape == ref.shape, (
            f"{label}: {name} shape {arr.shape} != {ref.shape}"
        )
        if not np.array_equal(arr, ref):
            bad = int(np.sum(arr != ref))
            raise AssertionError(
                f"{label}: {name} differs from reference in {bad}/{ref.size} "
                f"elements (max abs err "
                f"{float(np.max(np.abs(arr - ref))):.3e})"
            )


def differential_check(
    template: OperatorGraph,
    inputs: Mapping[str, np.ndarray],
    device: GpuDevice,
    options: CompileOptions,
    executors: Mapping[str, Callable[..., Outputs]] | None = None,
) -> Outputs:
    """Run every executor and compare each bitwise against the reference.

    Returns the reference outputs (handy for extra assertions).
    """
    reference = reference_execute(template.copy(), inputs)
    for name, runner in (executors or EXECUTORS).items():
        got = runner(template.copy(), inputs, device, options)
        assert_bitwise_equal(reference, got, name)
    return reference


def assert_columnar_equivalent(
    graph: OperatorGraph,
    capacity_floats: int | None = None,
    schedulers: tuple[str, ...] = ("dfs", "dfs_naive"),
    policies: tuple[str, ...] = ("belady", "cost", "ltu", "lru", "fifo"),
) -> None:
    """The columnar planner must emit *byte-identical* plans.

    For every scheduler/eviction-policy/eager-free combination covered
    by :mod:`repro.core.columnar`, the flat-table fast path must produce
    exactly the operator order, plan steps and provenance notes of the
    per-object reference implementation — compared as canonical JSON, so
    any drift (a reordered step, a changed note string) fails loudly.
    """
    import json

    from repro.core import SCHEDULERS, plan_to_dict, schedule_transfers
    from repro.core.columnar import (
        COLUMNAR_SCHEDULERS,
        lower,
        schedule_transfers_columnar,
    )

    cap = capacity_floats
    if cap is None:
        # tight enough to force evictions, loose enough to be feasible
        cap = max(graph.max_footprint(), 1) * 2
    col = lower(graph)
    for sched in schedulers:
        ref_order = SCHEDULERS[sched](graph)
        col_order = COLUMNAR_SCHEDULERS[sched](graph, col)
        assert col_order == ref_order, f"{sched}: operator order differs"
        for policy in policies:
            for eager in (True, False):
                ref = schedule_transfers(
                    graph, ref_order, cap, policy=policy, eager_free=eager
                )
                got = schedule_transfers_columnar(
                    graph, col_order, cap,
                    policy=policy, eager_free=eager, col=col,
                )
                a = json.dumps(plan_to_dict(ref), sort_keys=True)
                b = json.dumps(plan_to_dict(got), sort_keys=True)
                assert a == b, (
                    f"columnar plan differs from reference: "
                    f"{sched}/{policy}/eager={eager}"
                )


# ---------------------------------------------------------------------------
# Seeded random operator graphs
# ---------------------------------------------------------------------------
def random_operator_graph(
    seed: int, n_layers: int = 3, width: int = 3
) -> OperatorGraph:
    """A random layered DAG over shape-preserving library operators.

    Every data structure in one graph shares a shape so any subset of
    predecessors is a valid multi-input; kinds are drawn from the real
    operator library so all executors use the same numpy impls.
    """
    rng = random.Random(seed)
    rows = rng.choice([16, 24, 32])
    cols = rng.choice([8, 16])
    g = OperatorGraph(f"rand{seed}")
    prev: list[str] = []
    for i in range(width):
        g.add_data(f"in{i}", (rows, cols), is_input=True)
        prev.append(f"in{i}")
    unary = ["remap", "relu", "tanh", "scale"]
    binary = ["add", "sub", "mul", "max"]
    for layer in range(n_layers):
        cur: list[str] = []
        for i in range(width):
            name = f"d{layer}_{i}"
            is_last = layer == n_layers - 1
            g.add_data(name, (rows, cols), is_output=is_last)
            if rng.random() < 0.5 or len(prev) < 2:
                kind = rng.choice(unary)
                src = [rng.choice(prev)]
            else:
                kind = rng.choice(binary)
                src = rng.sample(prev, k=2)
            g.add_operator(f"o{layer}_{i}", kind, src, [name])
            cur.append(name)
        prev = cur
    # Dead intermediates become outputs so every plan must save them.
    for d, ds in g.data.items():
        if not ds.is_input and not ds.is_output and not g.consumers.get(d):
            ds.is_output = True
    g.validate()
    return g


def random_inputs(
    graph: OperatorGraph, seed: int
) -> dict[str, np.ndarray]:
    """Deterministic float32 arrays for every root input of the graph."""
    rng = np.random.default_rng(seed)
    out: dict[str, np.ndarray] = {}
    for name, ds in graph.data.items():
        if ds.is_input and ds.parent is None:
            out[name] = rng.standard_normal(ds.shape).astype(np.float32)
    return out
