"""Hypothesis property tests for the multi-GPU partitioner and scheduler.

Three families of invariants over random layered graphs, device counts,
policies and transfer modes:

* partitioner soundness — every operator assigned exactly one valid
  device, modeled costs add up, no device starves while work remains;
* plan residency — an independent replay (not ``validate_plan``) checks
  that every step only touches data resident on its own device and that
  per-device peak residency never exceeds ``usable_memory_floats``;
* Belady optimality — an eviction under ``policy="belady"`` never picks
  a buffer whose next use on that device comes sooner than another
  evictable resident buffer's (in particular, never the next-used one).
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import (
    CopyToCPU,
    CopyToGPU,
    ExecutionPlan,
    Free,
    Launch,
    PeerCopy,
    validate_plan,
)
from repro.core.scheduling import dfs_schedule
from repro.gpusim import GpuDevice, homogeneous_group
from repro.multigpu import (
    MultiTransferScheduler,
    partition_graph,
    schedule_multi_transfers,
)
from repro.gpusim import CostModel
from repro.multigpu.partition import modeled_op_cost

from .differential import random_operator_graph

KB = 1024

graph_seeds = st.integers(min_value=0, max_value=10_000)
device_counts = st.integers(min_value=1, max_value=4)
policies = st.sampled_from(["belady", "ltu", "lru", "fifo"])
modes = st.sampled_from(["peer", "staged"])


def _setup(seed: int, n: int, *, headroom: float = 2.0):
    """A random graph plus a device group every op fits on."""
    graph = random_operator_graph(seed)
    footprint = max(
        sum(
            graph.data[d].size
            for d in set(op.inputs) | set(op.outputs)
        )
        for op in graph.ops.values()
    )
    # memory_reserve shaves planner-visible capacity; size the raw
    # memory so usable_memory_floats lands near footprint * headroom.
    dev = GpuDevice(name="prop-dev", memory_bytes=64 * KB)
    want = int(footprint * headroom)
    dev = dev.with_memory(int(want * 4 / dev.memory_reserve) + 4 * KB)
    group = homogeneous_group(dev, n)
    order = dfs_schedule(graph)
    part = partition_graph(graph, order, group)
    return graph, group, order, part


def _replay(plan: ExecutionPlan, graph, num_devices: int) -> list[int]:
    """Independent plan interpreter: asserts residency, returns peaks."""
    resident = [dict() for _ in range(num_devices)]
    host = {d for d, ds in graph.data.items() if ds.is_input and not ds.virtual}
    used = [0] * num_devices
    peak = [0] * num_devices
    for i, step in enumerate(plan.steps):
        dev = plan.device_of(i)
        if isinstance(step, CopyToGPU):
            assert step.data in host, (
                f"step {i}: upload of {step.data!r} with no valid host copy"
            )
            resident[dev][step.data] = graph.data[step.data].size
        elif isinstance(step, PeerCopy):
            assert step.src != step.dst
            assert 0 <= step.src < num_devices
            assert step.dst == dev
            assert step.data in resident[step.src], (
                f"step {i}: peer copy of {step.data!r} not on gpu{step.src}"
            )
            assert step.data not in resident[step.dst]
            resident[dev][step.data] = graph.data[step.data].size
        elif isinstance(step, CopyToCPU):
            assert step.data in resident[dev], (
                f"step {i}: download of {step.data!r} not on gpu{dev}"
            )
            host.add(step.data)
        elif isinstance(step, Launch):
            op = graph.ops[step.op]
            for d in op.inputs:
                assert d in resident[dev], (
                    f"step {i}: {step.op!r} reads {d!r} absent from gpu{dev}"
                )
            for d in op.outputs:
                resident[dev][d] = graph.data[d].size
                host.discard(d)
        elif isinstance(step, Free):
            assert step.data in resident[dev], (
                f"step {i}: free of {step.data!r} not on gpu{dev}"
            )
            del resident[dev][step.data]
        used[dev] = sum(resident[dev].values())
        peak[dev] = max(peak[dev], used[dev])
    for dev in range(num_devices):
        assert not resident[dev], f"gpu{dev} not drained: {sorted(resident[dev])}"
    return peak


class TestPartitioner:
    @settings(max_examples=40, deadline=None)
    @given(seed=graph_seeds, n=device_counts)
    def test_total_assignment(self, seed, n):
        graph, group, order, part = _setup(seed, n)
        assert set(part.assignment) == set(graph.ops)
        assert all(0 <= d < n for d in part.assignment.values())
        assert part.num_devices <= n

    @settings(max_examples=40, deadline=None)
    @given(seed=graph_seeds, n=device_counts)
    def test_costs_add_up(self, seed, n):
        graph, group, order, part = _setup(seed, n)
        cost = CostModel(group[0])
        total = sum(modeled_op_cost(graph, o, cost) for o in graph.ops)
        assert abs(sum(part.device_costs) - total) < 1e-9 * max(total, 1.0)
        assert part.imbalance >= 1.0 - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(seed=graph_seeds, n=device_counts)
    def test_no_device_starves(self, seed, n):
        graph, group, order, part = _setup(seed, n)
        if len(graph.ops) >= n:
            for dev in range(n):
                assert part.ops_on(dev), f"device {dev} got no operators"


class TestResidency:
    @settings(max_examples=40, deadline=None)
    @given(seed=graph_seeds, n=device_counts, policy=policies, mode=modes)
    def test_replay_and_validate(self, seed, n, policy, mode):
        graph, group, order, part = _setup(seed, n)
        plan = schedule_multi_transfers(
            graph, order, group, part, policy=policy, transfer_mode=mode
        )
        caps = group.usable_memory_floats
        validate_plan(plan, graph, caps)
        peaks = _replay(plan, graph, n)
        for dev, peak in enumerate(peaks):
            assert peak <= caps[dev], (
                f"gpu{dev} peak {peak} floats exceeds capacity {caps[dev]}"
            )
        if mode == "staged":
            assert not any(isinstance(s, PeerCopy) for s in plan.steps)

    @settings(max_examples=20, deadline=None)
    @given(seed=graph_seeds, n=st.integers(min_value=2, max_value=4))
    def test_lazy_free_still_valid(self, seed, n):
        graph, group, order, part = _setup(seed, n)
        plan = schedule_multi_transfers(
            graph, order, group, part, eager_free=False
        )
        validate_plan(plan, graph, group.usable_memory_floats)
        _replay(plan, graph, n)


def _check_belady(plan: ExecutionPlan, graph, part, num_devices: int) -> int:
    """Assert every Belady eviction is furthest-next-use; count them.

    The plan's notes mark forced evictions; at each one we recompute
    every evictable buffer's next use on that device and require the
    victim to be maximal — so the buffer the device needs next is never
    the one thrown out.
    """
    launches = [
        (i, s.op) for i, s in enumerate(plan.steps) if isinstance(s, Launch)
    ]
    pos_of_step = {}  # step index -> upcoming launch position
    t = 0
    for i, _step in enumerate(plan.steps):
        pos_of_step[i] = t
        if t < len(launches) and launches[t][0] == i:
            t += 1

    def next_use_on(dev: int, data: str, t0: int) -> float:
        for tt in range(t0, len(launches)):
            op = graph.ops[launches[tt][1]]
            if part.device_of(launches[tt][1]) == dev and data in op.inputs:
                return tt
        return float("inf")

    resident = [set() for _ in range(num_devices)]
    checked = 0
    for i, step in enumerate(plan.steps):
        dev = plan.device_of(i)
        if isinstance(step, (CopyToGPU, PeerCopy)):
            resident[dev].add(step.data)
        elif isinstance(step, Launch):
            resident[dev].update(graph.ops[step.op].outputs)
        elif isinstance(step, Free):
            note = plan.notes[i] if i < len(plan.notes) else ""
            t0 = pos_of_step[i]
            if note.startswith("evicted: policy=belady") and t0 < len(launches):
                up = graph.ops[launches[t0][1]]
                pinned = set(up.inputs) | set(up.outputs)
                victim_nxt = next_use_on(dev, step.data, t0)
                for other in resident[dev] - {step.data} - pinned:
                    assert victim_nxt >= next_use_on(dev, other, t0), (
                        f"step {i}: belady evicted {step.data!r} "
                        f"(next use {victim_nxt}) over {other!r} "
                        f"(next use {next_use_on(dev, other, t0)})"
                    )
                checked += 1
            resident[dev].discard(step.data)
    return checked


class TestBelady:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=graph_seeds,
        n=device_counts,
        mode=modes,
        headroom=st.floats(min_value=1.05, max_value=1.6),
    )
    def test_never_evicts_next_used(self, seed, n, mode, headroom):
        """Random graphs: tight headroom forces occasional evictions."""
        graph, group, order, part = _setup(seed, n, headroom=headroom)
        sched = MultiTransferScheduler(
            graph, group, part, policy="belady", transfer_mode=mode
        )
        _check_belady(sched.schedule(order), graph, part, n)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_under_heavy_pressure(self, n):
        """The split edge template at tight capacity evicts constantly."""
        from repro.core.splitting import make_feasible
        from repro.templates import find_edges_graph

        graph = find_edges_graph(64, 64, 5, 4)
        footprint = graph.total_data_size()
        cap = footprint // 6
        make_feasible(graph, cap // 2)
        dev = GpuDevice(name="prop-dev", memory_bytes=64 * KB)
        dev = dev.with_memory(int(cap * 4 / dev.memory_reserve) + 4 * KB)
        group = homogeneous_group(dev, n)
        order = dfs_schedule(graph)
        part = partition_graph(graph, order, group)
        plan = schedule_multi_transfers(graph, order, group, part)
        validate_plan(plan, graph, group.usable_memory_floats)
        checked = _check_belady(plan, graph, part, n)
        assert checked > 0, "expected real eviction pressure in this config"
