"""Tests for OPB interchange (export/parse/solve)."""

import itertools
import random

import pytest

from repro.core.pbopt import export_opb
from repro.pb import (
    PBInstance,
    PBSolver,
    dumps_opb,
    evaluate_terms,
    read_opb,
    solve_instance,
)

from .test_transfers import fig3_graph


class TestInstance:
    def test_add_tracks_vars(self):
        inst = PBInstance()
        inst.add([(1, 3), (2, -7)], ">=", 1)
        assert inst.num_vars == 7

    def test_bad_relation(self):
        with pytest.raises(ValueError):
            PBInstance().add([(1, 1)], ">", 0)


class TestRoundTrip:
    def test_dumps_and_read(self):
        inst = PBInstance()
        inst.objective = [(2, 1), (3, -2)]
        inst.add([(1, 1), (1, 2), (1, 3)], ">=", 2)
        inst.add([(2, 1), (-1, 3)], "<=", 1)
        inst.add([(1, 2)], "=", 1)
        text = dumps_opb(inst)
        parsed = read_opb(text.splitlines())
        assert parsed.num_vars == inst.num_vars
        assert len(parsed.constraints) == 3
        # Semantics must survive the round trip.
        for bits in itertools.product([False, True], repeat=3):
            model = {v: bits[v - 1] for v in (1, 2, 3)}

            def feasible(i):
                ok = True
                for terms, rel, bound in i.constraints:
                    val = evaluate_terms(terms, model)
                    if rel == ">=":
                        ok &= val >= bound
                    elif rel == "<=":
                        ok &= val <= bound
                    else:
                        ok &= val == bound
                return ok

            assert feasible(inst) == feasible(parsed), bits

    def test_random_semantics_preserved(self):
        rng = random.Random(5)
        for _ in range(50):
            n = rng.randint(2, 5)
            inst = PBInstance()
            for _ in range(rng.randint(1, 4)):
                terms = [
                    (rng.randint(-4, 4), rng.choice([1, -1]) * rng.randint(1, n))
                    for _ in range(rng.randint(1, 4))
                ]
                inst.add(terms, rng.choice([">=", "<=", "="]), rng.randint(-4, 6))
            inst.num_vars = max(inst.num_vars, n)
            r1 = solve_instance(inst)
            r2 = solve_instance(read_opb(dumps_opb(inst).splitlines()))
            assert r1.status == r2.status

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="';'"):
            read_opb(["+1 x1 >= 1"])
        with pytest.raises(ValueError, match="relation"):
            read_opb(["+1 x1 1 ;"])
        with pytest.raises(ValueError, match="variable"):
            read_opb(["+1 y1 >= 1 ;"])


class TestSolveInstance:
    def test_minimisation(self):
        inst = PBInstance()
        inst.objective = [(5, 1), (1, 2)]
        inst.add([(1, 1), (1, 2)], ">=", 1)
        res = solve_instance(inst)
        assert res.value == 1

    def test_satisfiability_only(self):
        inst = PBInstance()
        inst.add([(1, 1), (1, 2)], "=", 1)
        res = solve_instance(inst)
        assert res.status == "optimal"
        assert sum(res.model[v] for v in (1, 2)) == 1

    def test_unsat(self):
        inst = PBInstance()
        inst.add([(1, 1)], ">=", 1)
        inst.add([(1, 1)], "<=", 0)
        assert solve_instance(inst).status == "unsat"


class TestRecording:
    def test_requires_record_flag(self):
        p = PBSolver()
        with pytest.raises(RuntimeError, match="record"):
            p.to_instance()

    def test_recorded_mirror_is_equisatisfiable(self):
        rng = random.Random(11)
        for _ in range(30):
            n = rng.randint(2, 5)
            p = PBSolver(record=True)
            p.new_vars(n)
            for _ in range(rng.randint(1, 4)):
                terms = [
                    (rng.randint(-3, 3), rng.choice([1, -1]) * rng.randint(1, n))
                    for _ in range(rng.randint(1, 3))
                ]
                kind = rng.choice(["leq", "geq"])
                getattr(p, "add_" + kind)(terms, rng.randint(-3, 5))
            direct = p.solve()
            mirrored = solve_instance(p.to_instance())
            assert direct == (mirrored.status == "optimal")


class TestFigure5Export:
    def test_export_and_cross_check(self):
        g = fig3_graph()
        text = export_opb(g, 5)
        assert text.startswith("* Figure-5 formulation")
        inst = read_opb(text.splitlines())
        res = solve_instance(inst)
        # Unit sizes: scaled units == floats; the known optimum is 6.
        assert res.value == 6
