"""Tests for the code generators (Python + CUDA C)."""

import numpy as np

from repro.codegen import generate_cuda, generate_python
from repro.core import (
    CopyToCPU,
    CopyToGPU,
    Framework,
    Free,
    Launch,
    dfs_schedule,
    make_feasible,
    schedule_transfers,
)
from repro.gpusim import GpuDevice, TESLA_C870
from repro.runtime import reference_execute
from repro.templates import (
    SMALL_CNN,
    cnn_graph,
    cnn_inputs,
    find_edges_graph,
    find_edges_inputs,
)

DEV = GpuDevice(name="codegen-dev", memory_bytes=256 * 1024)


def compile_edge(cap_frac=0.5):
    g = find_edges_graph(48, 40, 5, 4)
    cap = int(g.max_footprint() * cap_frac)
    make_feasible(g, cap)
    plan = schedule_transfers(g, dfs_schedule(g), cap)
    return g, plan


def run_generated(src, inputs):
    ns: dict = {}
    exec(compile(src, "<generated>", "exec"), ns)
    return ns["run"](inputs)


class TestPythonCodegen:
    def test_generated_program_matches_reference(self):
        inputs = find_edges_inputs(48, 40, 5, 4, seed=11)
        ref = reference_execute(find_edges_graph(48, 40, 5, 4), inputs)["Edg"]
        g, plan = compile_edge()
        src = generate_python(plan, g, DEV)
        out = run_generated(src, inputs)
        np.testing.assert_allclose(out["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_unsplit_program(self):
        g = find_edges_graph(32, 24, 3, 2)
        inputs = find_edges_inputs(32, 24, 3, 2, seed=3)
        ref = reference_execute(g, inputs)["Edg"]
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        src = generate_python(plan, g, GpuDevice(name="big", memory_bytes=1 << 24))
        out = run_generated(src, inputs)
        np.testing.assert_allclose(out["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_profile_exposed(self):
        g, plan = compile_edge()
        src = generate_python(plan, g, DEV)
        out = run_generated(src, find_edges_inputs(48, 40, 5, 4))
        assert out["__elapsed__"] > 0
        assert out["__profile__"].transfer_time > 0

    def test_device_override(self):
        g, plan = compile_edge()
        src = generate_python(plan, g, DEV)
        ns: dict = {}
        exec(compile(src, "<generated>", "exec"), ns)
        big = GpuDevice(name="big", memory_bytes=1 << 26)
        out = ns["run"](find_edges_inputs(48, 40, 5, 4), device=big)
        assert "Edg" in out

    def test_cnn_program(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        inputs = cnn_inputs(SMALL_CNN, 48, 48, seed=4)
        ref = reference_execute(cnn_graph(SMALL_CNN, 48, 48), inputs)
        dev = GpuDevice(name="t", memory_bytes=64 * 1024)
        fw = Framework(dev)
        compiled = fw.compile(g)
        src = generate_python(compiled.plan, compiled.graph, dev)
        out = run_generated(src, inputs)
        for k in ref:
            np.testing.assert_allclose(out[k], ref[k], rtol=1e-4, atol=1e-5)

    def test_header_documents_plan(self):
        g, plan = compile_edge()
        src = generate_python(plan, g, DEV)
        assert "Generated hybrid CPU/GPU program" in src
        assert str(plan.transfer_floats(g)) in src


class TestCudaCodegen:
    def test_structure(self):
        g, plan = compile_edge()
        src = generate_cuda(plan, g, TESLA_C870)
        assert "#include <cuda_runtime.h>" in src
        assert "__global__ void k_conv2d" in src
        assert "__global__ void k_remap" in src
        assert "int run_template(" in src

    def test_malloc_free_balanced(self):
        g, plan = compile_edge()
        src = generate_cuda(plan, g, TESLA_C870)
        n_h2d = sum(1 for s in plan.steps if isinstance(s, CopyToGPU))
        n_launch_outs = sum(
            len(dict.fromkeys(g.ops[s.op].outputs))
            for s in plan.steps
            if isinstance(s, Launch)
        )
        n_free = sum(1 for s in plan.steps if isinstance(s, Free))
        assert src.count("cudaMalloc(") == n_h2d + n_launch_outs
        assert src.count("cudaFree(") == n_free

    def test_memcpy_directions(self):
        g, plan = compile_edge()
        src = generate_cuda(plan, g, TESLA_C870)
        n_h2d = sum(1 for s in plan.steps if isinstance(s, CopyToGPU))
        n_d2h = sum(1 for s in plan.steps if isinstance(s, CopyToCPU))
        assert src.count("cudaMemcpyHostToDevice") == n_h2d
        assert src.count("cudaMemcpyDeviceToHost") == n_d2h

    def test_one_sync_per_launch(self):
        g, plan = compile_edge()
        src = generate_cuda(plan, g, TESLA_C870)
        n_launch = len(plan.launches())
        assert src.count("cudaDeviceSynchronize()") == n_launch

    def test_kernels_only_for_used_kinds(self):
        g = find_edges_graph(32, 24, 3, 2)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        src = generate_cuda(plan, g, TESLA_C870)
        assert "k_conv2d" in src
        assert "k_matmul" not in src

    def test_byte_sizes_match_graph(self):
        g = find_edges_graph(32, 24, 3, 2)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        src = generate_cuda(plan, g, TESLA_C870)
        assert str(32 * 24 * 4) in src  # image bytes appear in mallocs
