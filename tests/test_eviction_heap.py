"""Heap-based eviction must be plan-identical to the linear reference.

The transfer scheduler's ``belady``/``cost`` eviction used to pick the
furthest-next-use victim with a linear scan of the resident set; the
optimized path keeps a lazily-invalidated max-heap.  ``use_heap=False``
preserves the reference scan, and this suite drives both over the same
schedules — random layered DAGs (hypothesis), split out-of-core graphs,
and a capacity sweep — asserting the *full plan* (every upload, victim
choice, free, and provenance note) is identical, not just the victim
sequence.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .differential import random_operator_graph
from repro.core import plan_to_dict
from repro.core.scheduling import get_scheduler
from repro.core.transfers import TransferScheduler
from repro.templates import find_edges_graph

POLICIES = ["belady", "cost", "ltu", "lru", "fifo"]


def plans_for(graph, capacity, policy, eager_free=True, scheduler="dfs"):
    order = get_scheduler(scheduler)(graph)
    heap = TransferScheduler(
        graph, capacity, policy=policy, eager_free=eager_free, use_heap=True
    ).schedule(order)
    linear = TransferScheduler(
        graph, capacity, policy=policy, eager_free=eager_free, use_heap=False
    ).schedule(order)
    return heap, linear


def assert_identical(heap, linear):
    assert json.dumps(plan_to_dict(heap), sort_keys=True) == json.dumps(
        plan_to_dict(linear), sort_keys=True
    )
    assert heap.notes == linear.notes  # eviction provenance, victim order


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_layers=st.integers(2, 5),
    width=st.integers(2, 4),
    policy=st.sampled_from(POLICIES),
    eager_free=st.booleans(),
    cap_frac=st.floats(0.3, 1.2),
)
def test_heap_matches_linear_on_random_graphs(
    seed, n_layers, width, policy, eager_free, cap_frac
):
    graph = random_operator_graph(seed, n_layers=n_layers, width=width)
    # A tight capacity forces evictions (the interesting regime) while
    # staying above the largest single working set so plans exist.
    worst = max(
        sum(
            graph.data[d].size
            for d in dict.fromkeys(list(op.inputs) + list(op.outputs))
        )
        for op in graph.ops.values()
    )
    capacity = max(worst, int(graph.total_data_size() * cap_frac))
    heap, linear = plans_for(graph, capacity, policy, eager_free=eager_free)
    assert_identical(heap, linear)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("eager_free", [True, False])
def test_heap_matches_linear_on_split_graph(policy, eager_free):
    from repro.core.splitting import make_feasible

    graph = find_edges_graph(512, 512, 5, 4)
    capacity = (256 * 1024 // 4) * 9 // 10
    make_feasible(graph, capacity)
    heap, linear = plans_for(
        graph, capacity, policy, eager_free=eager_free
    )
    assert_identical(heap, linear)
    assert any(s.__class__.__name__ == "Free" for s in heap.steps)


@pytest.mark.parametrize("divisor", [1, 2, 3, 5])
def test_heap_matches_linear_across_capacities(divisor):
    graph = random_operator_graph(7, n_layers=4, width=4)
    capacity = max(
        graph.total_data_size() // divisor,
        max(
            sum(
                graph.data[d].size
                for d in dict.fromkeys(list(op.inputs) + list(op.outputs))
            )
            for op in graph.ops.values()
        ),
    )
    for policy in ("belady", "cost"):
        heap, linear = plans_for(graph, capacity, policy)
        assert_identical(heap, linear)
