"""Differential tests: every executor must match the reference bitwise.

Drives tests/differential.py across (template x device x planner x
executor) and across seeded random operator graphs.  See
docs/TESTING.md for the rationale: all executors share the numpy
operator library, so equality is exact, and any mismatch localises the
bug to plan interpretation rather than numerics.
"""

import numpy as np
import pytest

from repro.gpusim import GpuDevice
from repro.runtime import reference_execute
from repro.templates import (
    SMALL_CNN,
    cnn_graph,
    cnn_inputs,
    find_edges_graph,
    find_edges_inputs,
)

from .differential import (
    EXECUTORS,
    PLANNERS,
    assert_bitwise_equal,
    assert_columnar_equivalent,
    differential_check,
    random_inputs,
    random_operator_graph,
)

KB = 1024

DEVICES = {
    "tight": GpuDevice(name="diff-tight", memory_bytes=128 * KB),
    "roomy": GpuDevice(name="diff-roomy", memory_bytes=2048 * KB),
}


def _edge_case():
    g = find_edges_graph(48, 40, 5, 4)
    return g, find_edges_inputs(48, 40, 5, 4, seed=11)


def _cnn_case():
    g = cnn_graph(SMALL_CNN, 48, 48)
    return g, cnn_inputs(SMALL_CNN, 48, 48, seed=11)


TEMPLATES = {"edge": _edge_case, "cnn": _cnn_case}


@pytest.fixture(scope="module")
def cases():
    out = {}
    for name, make in TEMPLATES.items():
        graph, inputs = make()
        out[name] = (graph, inputs, reference_execute(graph.copy(), inputs))
    return out


@pytest.mark.parametrize("executor", sorted(EXECUTORS))
@pytest.mark.parametrize("planner", sorted(PLANNERS))
@pytest.mark.parametrize("device", sorted(DEVICES))
@pytest.mark.parametrize("template", sorted(TEMPLATES))
def test_matrix(cases, template, device, planner, executor):
    """Every (template, device, planner, executor) combo is bit-exact."""
    graph, inputs, reference = cases[template]
    runner = EXECUTORS[executor]
    got = runner(graph.copy(), inputs, DEVICES[device], PLANNERS[planner])
    assert_bitwise_equal(reference, got, f"{template}/{device}/{planner}/{executor}")


@pytest.mark.parametrize("seed", range(6))
def test_random_graphs(seed):
    """Seeded random operator DAGs agree across all executors."""
    graph = random_operator_graph(seed)
    inputs = random_inputs(graph, seed)
    # Tight enough to force splitting and eviction on most draws.
    device = GpuDevice(name="diff-rand", memory_bytes=16 * KB)
    differential_check(graph, inputs, device, PLANNERS["default"])


@pytest.mark.parametrize("seed", [7, 8])
def test_random_graphs_alt_planner(seed):
    """Random graphs stay exact under the non-default planner too."""
    graph = random_operator_graph(seed, n_layers=4, width=2)
    inputs = random_inputs(graph, seed)
    device = GpuDevice(name="diff-rand", memory_bytes=16 * KB)
    differential_check(graph, inputs, device, PLANNERS["bfs-lru"])


# ---------------------------------------------------------------------------
# Columnar planner equivalence
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("template", sorted(TEMPLATES))
def test_columnar_equivalent_templates(template):
    """The columnar planner is byte-identical on the real templates."""
    graph, _ = TEMPLATES[template]()
    assert_columnar_equivalent(graph)


def test_columnar_equivalent_split_graph():
    """Byte identity holds on a graph after operator splitting too."""
    from repro.core import make_feasible

    graph = find_edges_graph(96, 64, 5, 4)
    make_feasible(graph, 8 * KB // 4)
    assert_columnar_equivalent(graph)


def test_columnar_property_random_graphs():
    """Hypothesis: columnar lowering round-trips byte-identical plans.

    Random layered DAGs (drawn through the same seeded generator the
    executor matrix uses) must plan identically through the flat-table
    and per-object paths, across every covered scheduler and policy.
    """
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import strategies as st

    @hypothesis.given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_layers=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=4),
    )
    @hypothesis.settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[hypothesis.HealthCheck.too_slow],
    )
    def check(seed, n_layers, width):
        graph = random_operator_graph(seed, n_layers=n_layers, width=width)
        assert_columnar_equivalent(graph)

    check()


def test_reference_is_deterministic():
    """Same seed, same graph: the harness itself must be reproducible."""
    g1, g2 = random_operator_graph(3), random_operator_graph(3)
    i1, i2 = random_inputs(g1, 3), random_inputs(g2, 3)
    r1 = reference_execute(g1, i1)
    r2 = reference_execute(g2, i2)
    for name in r1:
        assert np.array_equal(r1[name], r2[name])
