"""Tests for the observability layer (repro.obs)."""

import json
import os

import pytest

from repro.core import Framework, schedule_transfers, dfs_schedule
from repro.core.plan import CopyToGPU, ExecutionPlan, Free, Launch
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.gpusim import GpuDevice, XEON_WORKSTATION
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    explain_plan,
    explain_to_dicts,
    provenance_summary,
    render_explain,
    spans_to_events,
    write_chrome_trace,
)
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="obs-dev", memory_bytes=64 * 1024)


def compile_edge():
    g = find_edges_graph(40, 32, 5, 4)
    return Framework(DEV).compile(g)


# ---------------------------------------------------------------------------
# Tracer / spans
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_timing_and_attrs(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        tracer = Tracer(clock=clock)
        with tracer.span("phase", foo=1) as sp:
            sp.set(bar=2)
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "phase"
        assert span.attrs == {"foo": 1, "bar": 2}
        assert span.duration > 0

    def test_nested_spans_record_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = tracer.find("inner")[0]
        outer = tracer.find("outer")[0]
        assert inner.parent == "outer"
        assert outer.parent is None
        assert outer.end >= inner.end

    def test_event_is_instant(self):
        tracer = Tracer()
        sp = tracer.event("marker", n=3)
        assert sp.duration == 0.0
        assert tracer.total_time() >= sp.start

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.find("boom")[0].duration >= 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        m.gauge("g").set(10)
        m.gauge("g").set(3)
        m.histogram("h").observe(1)
        m.histogram("h").observe(5)
        snap = m.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == {"value": 3, "peak": 10}
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(7)
        b.histogram("h").observe(2)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"]["value"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        m = MetricsRegistry()
        m.counter("x").inc()
        m.histogram("empty")  # never observed
        json.dumps(m.snapshot())


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------
class TestProvenance:
    def test_scheduler_notes_align_with_steps(self):
        g = find_edges_graph(40, 32, 5, 4)
        plan = schedule_transfers(g, dfs_schedule(g), DEV.usable_memory_floats)
        assert len(plan.notes) == len(plan.steps)
        assert all(plan.notes)

    def test_every_step_explained(self):
        c = compile_edge()
        rows = explain_plan(c.plan)
        assert len(rows) == len(c.plan.steps)
        for row, step in zip(rows, c.plan.steps):
            assert row.step == str(step)
            assert row.reason

    def test_eviction_reasons_present_under_pressure(self):
        # A is reused by the last operator but must be evicted while op2
        # runs (capacity fits only three same-sized arrays).
        from repro.core.graph import OperatorGraph

        g = OperatorGraph("pressure")
        g.add_data("A", (8, 8), is_input=True)
        g.add_data("B", (8, 8), is_input=True)
        for t in ("C", "D"):
            g.add_data(t, (8, 8))
        g.add_data("Out", (8, 8), is_output=True)
        g.add_operator("op1", "remap", ["A"], ["C"])
        g.add_operator("op2", "max", ["C", "B"], ["D"])
        g.add_operator("op3", "max", ["A", "D"], ["Out"])
        g.validate()
        plan = schedule_transfers(g, ["op1", "op2", "op3"], 3 * 64)
        summary = provenance_summary(plan)
        assert summary.get("evicted", 0) > 0
        evict_notes = [n for n in plan.notes if n.startswith("evicted")]
        assert any("policy=belady" in n for n in evict_notes)
        assert any("d2h skipped" in n for n in evict_notes)

    def test_default_reasons_for_plans_without_notes(self):
        plan = ExecutionPlan(steps=[CopyToGPU("A"), Launch("op"), Free("A")])
        rows = explain_plan(plan)
        assert all("no provenance recorded" in r.reason for r in rows)

    def test_render_explain(self):
        c = compile_edge()
        text = render_explain(c.plan)
        lines = text.splitlines()
        assert len(lines) == len(c.plan.steps) + 2  # header + rule
        assert "reason" in lines[0]

    def test_render_empty_plan(self):
        assert render_explain(ExecutionPlan()) == "(empty plan)"

    def test_explain_to_dicts_is_json(self):
        c = compile_edge()
        rows = explain_to_dicts(c.plan)
        json.dumps(rows)
        assert rows[0]["index"] == 0

    def test_notes_round_trip_through_serialization(self):
        c = compile_edge()
        restored = plan_from_dict(plan_to_dict(c.plan))
        assert restored.notes == c.plan.notes

    def test_legacy_plan_dict_without_notes_loads(self):
        c = compile_edge()
        raw = plan_to_dict(c.plan)
        raw.pop("notes", None)
        assert plan_from_dict(raw).notes == []


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def test_compile_spans_become_complete_events(self):
        c = compile_edge()
        assert c.spans, "compile() must record phase spans"
        events = spans_to_events(c.spans)
        assert {e["ph"] for e in events} == {"X"}
        names = {e["name"] for e in events}
        assert {"splitting", "operator_scheduling",
                "transfer_scheduling", "validate"} <= names
        for e in events:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == 1 and e["tid"] == 1

    def test_profile_events_one_track_per_stream(self):
        c = compile_edge()
        fw = Framework(DEV, host=XEON_WORKSTATION)
        result = fw.execute(c, find_edges_inputs(40, 32, 5, 4))
        trace = chrome_trace(spans=c.spans, profile=result.profile)
        evs = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        # device events live on pid 2, split across stream tids
        device = [e for e in evs if e["pid"] == 2 and e["ph"] in ("X", "i")]
        tids = {e["tid"] for e in device}
        assert len(tids) >= 3  # H2D, kernel, memory at minimum
        # every event carries the required schema fields
        for e in evs:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(e)
            if e["ph"] == "X":
                assert "dur" in e

    def test_timestamps_monotonic(self):
        c = compile_edge()
        fw = Framework(DEV, host=XEON_WORKSTATION)
        result = fw.execute(c, find_edges_inputs(40, 32, 5, 4))
        evs = chrome_trace(spans=c.spans, profile=result.profile)["traceEvents"]
        ts = [e["ts"] for e in evs if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_simulated_events_export(self):
        from repro.runtime import simulate_plan

        c = compile_edge()
        sim = simulate_plan(c.plan, c.graph, DEV, record_events=True)
        trace = chrome_trace(simulated_events=sim.events)
        x = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x, "simulated run must produce duration events"
        # serialized walk: end of one event never exceeds start of next
        # on the same global clock
        ends = [(e["ts"], e["ts"] + e["dur"]) for e in x]
        for (s1, e1), (s2, _) in zip(ends, ends[1:]):
            assert s2 >= s1

    def test_write_chrome_trace_round_trip(self, tmp_path):
        c = compile_edge()
        path = os.fspath(tmp_path / "trace.json")
        write_chrome_trace(path, spans=c.spans, metadata={"k": "v"})
        raw = json.load(open(path))
        assert raw["metadata"] == {"k": "v"}
        assert raw["traceEvents"]

    def test_empty_trace(self):
        assert chrome_trace()["traceEvents"] == []


# ---------------------------------------------------------------------------
# End-to-end wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_compile_exposes_metrics_snapshot(self):
        c = compile_edge()
        counters = c.metrics["counters"]
        gauges = c.metrics["gauges"]
        assert counters["compile.candidates"] >= 1
        assert gauges["plan.transfer_floats"]["value"] == c.transfer_floats()
        assert gauges["plan.peak_device_floats"]["value"] == (
            c.peak_device_floats
        )
        assert any(k.startswith("plan.reason.") for k in counters)

    def test_baseline_compile_also_traced(self):
        g = find_edges_graph(40, 32, 5, 4)
        big = GpuDevice(name="big", memory_bytes=64 << 20)
        base = Framework(big).compile_baseline(g)
        assert base.spans and base.spans[0].name == "compile_baseline"
        assert base.metrics["counters"]["compile.candidates"] == 1

    def test_execution_result_carries_profile_and_metrics(self):
        c = compile_edge()
        fw = Framework(DEV, host=XEON_WORKSTATION)
        result = fw.execute(c, find_edges_inputs(40, 32, 5, 4))
        assert result.profile is not None
        assert result.profile.events
        counters = result.metrics["counters"]
        assert counters["gpu.bytes_h2d"] == result.h2d_floats * 4
        assert counters["gpu.bytes_d2h"] == result.d2h_floats * 4
        assert counters["gpu.kernel_launches"] == len(c.plan.launches())
        assert counters["gpu.bytes_kernel"] > 0
        assert counters["exec.steps"] == len(c.plan.steps)
        assert result.metrics["gauges"]["alloc.bytes_in_use"]["peak"] > 0

    def test_pb_optimal_plan_traced(self):
        from repro.core import pb_optimal_plan
        from repro.core.graph import OperatorGraph

        g = OperatorGraph("tiny")
        g.add_data("A", (4, 4), is_input=True)
        g.add_data("B", (4, 4), is_output=True)
        g.add_operator("op", "remap", ["A"], ["B"])
        g.validate()
        tracer = Tracer()
        result = pb_optimal_plan(g, 64, tracer=tracer)
        spans = tracer.find("pb_optimisation")
        assert spans and spans[0].attrs["num_vars"] == result.num_vars


# ---------------------------------------------------------------------------
# Histogram percentiles
# ---------------------------------------------------------------------------
class TestHistogramPercentiles:
    def test_nearest_rank_exact_population(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_bounds_checked_and_empty(self):
        h = Histogram()
        with pytest.raises(ValueError, match="empty"):
            h.percentile(50)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)
        # The empty snapshot keeps its all-zeros shape (stable JSON).
        assert h.to_dict()["count"] == 0
        assert h.to_dict()["p99"] == 0.0

    def test_snapshot_includes_percentiles(self):
        m = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.histogram("h").observe(v)
        snap = m.snapshot()["histograms"]["h"]
        assert snap["p50"] == 2.0
        assert snap["p95"] == 4.0
        assert snap["p99"] == 4.0
        empty = MetricsRegistry().histogram("e").to_dict()
        assert empty["p50"] == empty["p95"] == empty["p99"] == 0.0

    def test_decimation_bounds_memory_and_stays_deterministic(self):
        h = Histogram()
        n = Histogram.MAX_SAMPLES * 4
        for v in range(n):
            h.observe(float(v))
        assert len(h._samples) <= Histogram.MAX_SAMPLES
        assert h.count == n
        # quantiles stay approximately right after decimation
        assert abs(h.percentile(50) - n / 2) / n < 0.01
        # deterministic: a second identical stream gives identical samples
        h2 = Histogram()
        for v in range(n):
            h2.observe(float(v))
        assert h._samples == h2._samples

    def test_merge_combines_reservoirs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0):
            a.histogram("h").observe(v)
        for v in (3.0, 4.0):
            b.histogram("h").observe(v)
        a.merge(b)
        assert a.histograms["h"].percentile(100) == 4.0
        assert a.histograms["h"].percentile(0) == 1.0

    def test_extremes_survive_reservoir_decimation(self):
        """p=100 must equal the observed max (and p=0 the min) even after
        decimation may have dropped the extreme samples themselves."""
        h = Histogram()
        n = Histogram.MAX_SAMPLES * 4
        for v in range(n):
            h.observe(float(v))
        assert h._stride > 1, "test must exercise the decimated reservoir"
        assert h.percentile(100) == float(n - 1)
        assert h.percentile(0) == 0.0
        # the true max is typically no longer in the sample reservoir
        # (stride skips odd-index observations), yet p100 is exact
        assert h.max == float(n - 1)

    def test_merge_peak_gauges_take_max(self):
        """Gauges named ``*_peak``/``*.peak`` merge by max; others stay
        last-write-wins.  Regression: merging per-request registries in
        completion order must not let a later, smaller peak win."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("gpu.mem_peak").set(100.0)
        b.gauge("gpu.mem_peak").set(60.0)
        a.gauge("alloc.watermark.peak").set(10.0)
        b.gauge("alloc.watermark.peak").set(30.0)
        a.gauge("service.queue_depth").set(3.0)
        b.gauge("service.queue_depth").set(1.0)
        a.merge(b)
        # *_peak: the smaller later value must NOT overwrite the max
        assert a.gauges["gpu.mem_peak"].value == 100.0
        assert a.gauges["alloc.watermark.peak"].value == 30.0
        # ordinary gauge: the other registry's last value wins
        assert a.gauges["service.queue_depth"].value == 1.0
        # and every gauge's peak field is the max of both peaks
        assert a.gauges["gpu.mem_peak"].peak == 100.0
        assert a.gauges["service.queue_depth"].peak == 3.0


# ---------------------------------------------------------------------------
# Chrome-trace memory counters
# ---------------------------------------------------------------------------
class TestMemoryCounters:
    def _counters(self, events):
        return [e for e in events if e["ph"] == "C"]

    def test_alloc_free_drive_counter_series(self):
        c = compile_edge()
        fw = Framework(DEV, host=XEON_WORKSTATION)
        result = fw.execute(c, find_edges_inputs(40, 32, 5, 4))
        from repro.obs import profile_to_events

        counters = self._counters(profile_to_events(result.profile))
        assert counters, "alloc/free events must emit a counter series"
        for e in counters:
            assert e["name"] == "device memory"
            assert e["args"]["bytes_in_use"] >= 0
        peak = max(e["args"]["bytes_in_use"] for e in counters)
        assert peak == c.peak_device_floats * 4
        # the executor drains the device: the series ends at zero
        assert counters[-1]["args"]["bytes_in_use"] == 0

    def test_multi_profile_counters_use_distinct_pids(self):
        from repro.gpusim import homogeneous_group
        from repro.multigpu import compile_multi, execute_multi

        g = find_edges_graph(48, 40, 5, 4)
        inputs = find_edges_inputs(48, 40, 5, 4, seed=9)
        mgdev = GpuDevice(name="obs-mg", memory_bytes=256 * 1024)
        compiled = compile_multi(g, homogeneous_group(mgdev, 2))
        result = execute_multi(compiled, inputs)
        trace = chrome_trace(
            profiles=[(f"gpu{i}", p) for i, p in enumerate(result.profiles)]
        )
        pids = {e["pid"] for e in self._counters(trace["traceEvents"])}
        assert len(pids) == 2


# ---------------------------------------------------------------------------
# Multi-device provenance
# ---------------------------------------------------------------------------
class TestMultiDeviceProvenance:
    def _compiled(self, mode="peer"):
        from repro.gpusim import homogeneous_group
        from repro.multigpu import compile_multi

        g = find_edges_graph(48, 40, 5, 4)
        mgdev = GpuDevice(name="obs-mg", memory_bytes=256 * 1024)
        return compile_multi(
            g, homogeneous_group(mgdev, 2), transfer_mode=mode
        )

    def test_explanations_carry_devices(self):
        compiled = self._compiled()
        rows = explain_plan(compiled.plan)
        assert len(rows) == len(compiled.plan.steps)
        assert {r.device for r in rows} == {0, 1}

    def test_peer_steps_have_routes(self):
        compiled = self._compiled("peer")
        p2p = [r for r in explain_plan(compiled.plan) if "p2p" in r.step]
        assert p2p, "2-device peer-mode edge plan should emit PeerCopy"
        for r in p2p:
            assert r.peer_src is not None and r.peer_dst is not None
        raw = explain_to_dicts(compiled.plan)
        p2p_raw = [d for d in raw if "p2p" in d["step"]]
        assert all("peer_src" in d and "peer_dst" in d for d in p2p_raw)
        json.dumps(raw)

    def test_render_has_device_column_only_when_multi(self):
        compiled = self._compiled()
        text = render_explain(compiled.plan)
        assert "dev" in text.splitlines()[0]
        assert "gpu0" in text and "gpu1" in text
        single = compile_edge()
        assert "dev" not in render_explain(single.plan).splitlines()[0]

    def test_staged_mode_notes_survive(self):
        compiled = self._compiled("staged")
        rows = explain_plan(compiled.plan)
        stages = [r for r in rows if r.reason.startswith("stage:")]
        assert stages, "staged transfers should carry stage: provenance"
