"""Smoke tests: every example script runs to completion.

The examples are the library's front door; they must keep working.  The
quick ones run in-process; the heavier ones are compile-checked and run
with reduced sizes via their CLI arguments where supported.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *argv: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "edge_detection_micrograph.py",
            "cnn_inference.py",
            "retargeting.py",
            "dog_pyramid.py",
            "video_stream.py",
        ],
    )
    def test_compiles(self, name):
        src = (EXAMPLES / name).read_text()
        compile(src, name, "exec")


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "matches the pure-numpy reference: OK" in out
        assert "speedup" in out

    def test_micrograph_small(self):
        out = run_example("edge_detection_micrograph.py", "512")
        assert "matches reference" in out
        assert "baseline: N/A" in out

    def test_video_stream(self):
        out = run_example("video_stream.py")
        assert "1.00x the I/O bound" in out
        assert "match the reference" in out

    def test_dog_pyramid(self):
        out = run_example("dog_pyramid.py")
        assert "all octave bands match the reference" in out

    @pytest.mark.slow
    def test_cnn_inference(self):
        out = run_example("cnn_inference.py")
        assert "feature maps match the reference" in out

    @pytest.mark.slow
    def test_retargeting(self):
        out = run_example("retargeting.py")
        assert "re-verified against the reference" in out
