"""Tests for the Figure-6-style plan timeline renderer."""

from repro.analysis import plan_timeline, render_timeline
from repro.core import Framework, dfs_schedule, schedule_transfers
from repro.core.plan import CopyToGPU, Free, Launch
from repro.gpusim import GpuDevice
from repro.templates import find_edges_graph

DEV = GpuDevice(name="tl-dev", memory_bytes=64 * 1024)


def build():
    g = find_edges_graph(40, 32, 5, 4)
    fw = Framework(DEV)
    return fw.compile(g)


class TestPlanTimeline:
    def test_one_row_per_step(self):
        c = build()
        rows = plan_timeline(c.plan, c.graph)
        assert len(rows) == len(c.plan.steps)

    def test_occupancy_matches_validator_peak(self):
        c = build()
        rows = plan_timeline(c.plan, c.graph)
        assert max(r.gpu_floats for r in rows) == c.peak_device_floats

    def test_resident_sets_evolve_correctly(self):
        c = build()
        rows = plan_timeline(c.plan, c.graph)
        resident: set[str] = set()
        for row, step in zip(rows, c.plan.steps):
            if isinstance(step, CopyToGPU):
                resident.add(step.data)
            elif isinstance(step, Free):
                resident.discard(step.data)
            elif isinstance(step, Launch):
                resident.update(c.graph.ops[step.op].outputs)
            assert set(row.gpu_resident) == resident

    def test_host_copies_tracked(self):
        c = build()
        rows = plan_timeline(c.plan, c.graph)
        # At the end, every template output has a host copy.
        outputs = {
            d
            for d, ds in c.graph.data.items()
            if ds.is_output and not ds.virtual
        }
        assert outputs <= set(rows[-1].host_copies)

    def test_ends_empty_device(self):
        c = build()
        rows = plan_timeline(c.plan, c.graph)
        assert rows[-1].gpu_floats == 0


class TestRender:
    def test_render_contains_all_steps(self):
        c = build()
        text = render_timeline(c.plan, c.graph)
        lines = text.splitlines()
        assert len(lines) == len(c.plan.steps) + 2  # header + rule
        assert "exec" in text and "h2d" in text

    def test_render_bar_within_bounds(self):
        c = build()
        for line in render_timeline(c.plan, c.graph).splitlines()[2:]:
            bar = line.split("[")[1].split("]")[0]
            assert len(bar) == 10

    def test_truncates_long_resident_lists(self):
        g = find_edges_graph(20, 16, 3, 8)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        text = render_timeline(plan, g, width=10)
        assert ".." in text

    def test_unknown_capacity_renders_question_bars(self):
        # A plan without capacity_floats must not fake full occupancy.
        from repro.core.plan import ExecutionPlan

        g = find_edges_graph(20, 16, 3, 2)
        scheduled = schedule_transfers(g, dfs_schedule(g), 10**9)
        plan = ExecutionPlan(steps=list(scheduled.steps))  # capacity 0
        for line in render_timeline(plan, g).splitlines()[2:]:
            bar = line.split("[")[1].split("]")[0]
            assert bar == "?" * 10

    def test_known_capacity_keeps_hash_bars(self):
        c = build()
        text = render_timeline(c.plan, c.graph)
        assert "#" in text and "?" not in text
