"""Tests for the paper's baseline execution pattern (Section 4)."""

import pytest

from repro.core import (
    OperatorGraph,
    PlanError,
    baseline_plan,
    baseline_transfer_floats,
    validate_plan,
)
from repro.templates import find_edges_graph


class TestBaselineCounts:
    def test_edge_1000x1000_matches_table1(self):
        """Table 1 row 1: the baseline moves exactly 13,000,512 floats."""
        g = find_edges_graph(1000, 1000, 16, 4)
        assert baseline_transfer_floats(g) == 13_000_512

    def test_plan_volume_matches_analytic(self):
        g = find_edges_graph(50, 40, 5, 4)
        plan = baseline_plan(g, 10**9)
        assert plan.transfer_floats(g) == baseline_transfer_floats(g)

    def test_baseline_exceeds_io_bound(self):
        g = find_edges_graph(50, 40, 5, 4)
        assert baseline_transfer_floats(g) > g.io_size()


class TestBaselinePlan:
    def test_plan_is_valid(self):
        g = find_edges_graph(50, 40, 5, 4)
        plan = baseline_plan(g, 10**9)
        validate_plan(plan, g)

    def test_no_persistence_peak_is_single_op(self):
        """Device only ever holds one operator's working set."""
        g = find_edges_graph(50, 40, 5, 4)
        plan = baseline_plan(g, 10**9)
        assert validate_plan(plan, g) == g.max_footprint()

    def test_infeasible_when_an_op_does_not_fit(self):
        """The paper's N/A entries: a single operator exceeds the device."""
        g = find_edges_graph(50, 40, 5, 4)
        with pytest.raises(PlanError, match="infeasible"):
            baseline_plan(g, g.max_footprint() - 1)

    def test_feasible_exactly_at_max_footprint(self):
        g = find_edges_graph(50, 40, 5, 4)
        plan = baseline_plan(g, g.max_footprint())
        validate_plan(plan, g, g.max_footprint())

    def test_custom_op_order(self):
        g = find_edges_graph(50, 40, 5, 4)
        order = list(reversed(g.topological_order()))
        with pytest.raises(Exception):
            # reversed order violates dependencies during validation
            validate_plan(baseline_plan(g, 10**9, order), g)

    def test_multi_input_op_counts_each_input_once(self):
        g = OperatorGraph()
        g.add_data("a", (2, 2), is_input=True)
        g.add_data("b", (2, 2), is_output=True)
        g.add_operator("o", "max", ["a", "a"], ["b"])
        # input 'a' used twice by the op but transferred once
        assert baseline_transfer_floats(g) == 8
