"""Tests for PB constraint normalisation and CNF encodings."""

import itertools
import random

import pytest

from repro.pb import (
    CNF,
    Solver,
    build_counter,
    encode_at_most_one,
    encode_exactly_one,
    encode_geq,
    encode_leq,
    evaluate_terms,
    normalize_leq,
)


def enumerate_models(solver_factory, nvars):
    """All assignments of the first ``nvars`` variables satisfying the CNF."""
    out = []
    for bits in itertools.product([False, True], repeat=nvars):
        s = solver_factory()
        ok = True
        for v, b in enumerate(bits, start=1):
            ok = ok and s.add_clause([v if b else -v])
        if ok and s.solve():
            out.append(bits)
    return out


class TestNormalize:
    def test_positive_passthrough(self):
        terms, bound = normalize_leq([(2, 1), (3, 2)], 5)
        assert sorted(terms) == [(2, 1), (3, 2)]
        assert bound == 5

    def test_negative_coefficient_flips_literal(self):
        terms, bound = normalize_leq([(-2, 1)], 3)
        assert terms == [(2, -1)]
        assert bound == 5

    def test_zero_coefficient_dropped(self):
        terms, bound = normalize_leq([(0, 1), (1, 2)], 1)
        assert terms == [(1, 2)]

    def test_duplicate_literal_merged(self):
        terms, bound = normalize_leq([(1, 3), (2, 3)], 4)
        assert terms == [(3, 3)]
        assert bound == 4

    def test_opposite_literals_merged(self):
        # 2*x + 3*(~x) <= 4  ==  -x <= 1  ==  x >= -1 (free) after shifting
        terms, bound = normalize_leq([(2, 1), (3, -1)], 4)
        value_true = evaluate_terms(terms, {1: True})
        value_false = evaluate_terms(terms, {1: False})
        # Semantics preserved: original holds iff normalised holds.
        assert (2 <= 4) == (value_true <= bound)
        assert (3 <= 4) == (value_false <= bound)

    def test_random_semantics_preserved(self):
        rng = random.Random(7)
        for _ in range(300):
            n = rng.randint(1, 5)
            terms = [
                (rng.randint(-5, 5), rng.choice([1, -1]) * rng.randint(1, n))
                for _ in range(rng.randint(1, 6))
            ]
            bound = rng.randint(-8, 8)
            norm, nbound = normalize_leq(terms, bound)
            assert all(c > 0 for c, _ in norm)
            for bits in itertools.product([False, True], repeat=n):
                model = {v: bits[v - 1] for v in range(1, n + 1)}
                assert (evaluate_terms(terms, model) <= bound) == (
                    evaluate_terms(norm, model) <= nbound
                )


def _leq_models(terms, bound, nvars):
    """Models allowed by the encoding, projected onto original vars."""
    def make():
        s = Solver()
        s.ensure_vars(nvars)
        encode_leq(terms, bound, s.new_var, lambda c: s.add_clause(c))
        return s

    return enumerate_models(make, nvars)


class TestEncodeLeq:
    def test_simple(self):
        # x1 + x2 + x3 <= 1
        models = _leq_models([(1, 1), (1, 2), (1, 3)], 1, 3)
        assert models == [
            m
            for m in itertools.product([False, True], repeat=3)
            if sum(m) <= 1
        ]

    def test_weighted(self):
        # 3a + 2b + 2c <= 4
        models = _leq_models([(3, 1), (2, 2), (2, 3)], 4, 3)
        expect = [
            m
            for m in itertools.product([False, True], repeat=3)
            if 3 * m[0] + 2 * m[1] + 2 * m[2] <= 4
        ]
        assert models == expect

    def test_trivially_true(self):
        models = _leq_models([(1, 1), (1, 2)], 5, 2)
        assert len(models) == 4

    def test_negative_bound_unsat(self):
        models = _leq_models([(1, 1)], -1, 1)
        assert models == []

    def test_single_big_coefficient_forces_false(self):
        models = _leq_models([(10, 1), (1, 2)], 2, 2)
        assert models == [(False, False), (False, True)]

    def test_random_against_bruteforce(self):
        rng = random.Random(3)
        for _ in range(150):
            n = rng.randint(1, 5)
            terms = [
                (rng.randint(-4, 6), rng.choice([1, -1]) * rng.randint(1, n))
                for _ in range(rng.randint(1, 5))
            ]
            bound = rng.randint(-5, 12)
            models = set(_leq_models(terms, bound, n))
            for bits in itertools.product([False, True], repeat=n):
                model = {v: bits[v - 1] for v in range(1, n + 1)}
                assert (bits in models) == (
                    evaluate_terms(terms, model) <= bound
                ), (terms, bound, bits)


class TestEncodeGeq:
    def test_random_against_bruteforce(self):
        rng = random.Random(11)
        for _ in range(150):
            n = rng.randint(1, 5)
            terms = [
                (rng.randint(-4, 6), rng.choice([1, -1]) * rng.randint(1, n))
                for _ in range(rng.randint(1, 5))
            ]
            bound = rng.randint(-5, 12)

            def make():
                s = Solver()
                s.ensure_vars(n)
                encode_geq(terms, bound, s.new_var, lambda c: s.add_clause(c))
                return s

            models = set(enumerate_models(make, n))
            for bits in itertools.product([False, True], repeat=n):
                model = {v: bits[v - 1] for v in range(1, n + 1)}
                assert (bits in models) == (
                    evaluate_terms(terms, model) >= bound
                )


@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 7, 9, 12])
class TestCardinality:
    def test_at_most_one(self, n):
        def make():
            s = Solver()
            s.ensure_vars(n)
            encode_at_most_one(
                list(range(1, n + 1)), s.new_var, lambda c: s.add_clause(c)
            )
            return s

        models = enumerate_models(make, n)
        assert models == [
            m for m in itertools.product([False, True], repeat=n) if sum(m) <= 1
        ]

    def test_exactly_one(self, n):
        def make():
            s = Solver()
            s.ensure_vars(n)
            encode_exactly_one(
                list(range(1, n + 1)), s.new_var, lambda c: s.add_clause(c)
            )
            return s

        models = enumerate_models(make, n)
        assert models == [
            m for m in itertools.product([False, True], repeat=n) if sum(m) == 1
        ]


class TestBuildCounter:
    def test_outputs_track_partial_sums(self):
        # 2a + 1b + 3c: outs[j-1] must be true whenever the sum >= j.
        rng = random.Random(5)
        terms = [(2, 1), (1, 2), (3, 3)]
        k = 6
        for bits in itertools.product([False, True], repeat=3):
            s = Solver()
            s.ensure_vars(3)
            outs = build_counter(terms, k, s.new_var, lambda c: s.add_clause(c))
            for v, b in enumerate(bits, start=1):
                s.add_clause([v if b else -v])
            assert s.solve()
            total = 2 * bits[0] + 1 * bits[1] + 3 * bits[2]
            model = s.model()
            for j in range(1, k + 1):
                if total >= j:
                    assert model[outs[j - 1]], (bits, j)

    def test_asserting_output_bounds_sum(self):
        terms = [(1, v) for v in range(1, 6)]
        s = Solver()
        s.ensure_vars(5)
        outs = build_counter(terms, 5, s.new_var, lambda c: s.add_clause(c))
        s.add_clause([-outs[2]])  # sum <= 2
        count = 0
        seen = set()
        while s.solve():
            model = s.model()
            bits = tuple(model[v] for v in range(1, 6))
            assert sum(bits) <= 2
            assert bits not in seen
            seen.add(bits)
            s.add_clause([-v if model[v] else v for v in range(1, 6)])
            count += 1
        assert count == sum(1 for b in itertools.product([0, 1], repeat=5) if sum(b) <= 2)

    def test_empty(self):
        s = Solver()
        assert build_counter([], 3, s.new_var, lambda c: s.add_clause(c)) == []
        assert build_counter([(1, 1)], 0, s.new_var, lambda c: s.add_clause(c)) == []


class TestCNFContainer:
    def test_var_tracking(self):
        f = CNF()
        a, b = f.new_var(), f.new_var()
        f.add([a, -b])
        f.add([5])
        assert f.num_vars == 5
        assert len(f) == 2

    def test_rejects_zero(self):
        f = CNF()
        with pytest.raises(ValueError):
            f.add([0])
