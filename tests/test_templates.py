"""Tests for the evaluation templates (Section 4.1)."""

import numpy as np
import pytest

from repro.templates import (
    LARGE_CNN,
    SMALL_CNN,
    CNNArch,
    ConvLayerSpec,
    cnn_graph,
    cnn_inputs,
    edge_filter,
    find_edges_graph,
    find_edges_inputs,
    rotated_kernel,
    valid_cnn_shape,
)


class TestEdgeTemplate:
    def test_paper_1000x1000_float_counts(self):
        """Table 1 row 1: the exact float counts the paper reports."""
        g = find_edges_graph(1000, 1000, 16, 4)
        assert g.total_data_size() == 6_000_512
        assert g.io_size() == 2_000_512

    def test_paper_10000x10000_float_counts(self):
        """Table 1 row 2."""
        g = find_edges_graph(10_000, 10_000, 16, 4)
        assert g.total_data_size() == 600_000_512
        assert g.io_size() == 200_000_512

    def test_structure_4_orientations(self):
        """Section 4.1.1: 2 convolutions + 2 remaps + combine."""
        g = find_edges_graph(100, 100, 16, 4)
        kinds = sorted(op.kind for op in g.ops.values())
        assert kinds == ["conv2d", "conv2d", "max", "remap", "remap"]

    def test_structure_8_orientations_fig1b(self):
        """Figure 1(b): C1-C4, R1-R4, max over eight maps."""
        g = find_edges_graph(100, 100, 16, 8)
        assert sum(1 for o in g.ops.values() if o.kind == "conv2d") == 4
        assert sum(1 for o in g.ops.values() if o.kind == "remap") == 4
        assert len(g.ops["Combine"].inputs) == 8

    def test_max_footprint_is_9x_for_8_orientations(self):
        """Figure 1(c): the max operator needs ~9x the image size."""
        g = find_edges_graph(300, 300, 16, 8)
        assert g.op_footprint("Combine") == 9 * 300 * 300

    def test_conv_footprint_is_2x(self):
        g = find_edges_graph(300, 300, 16, 8)
        assert g.op_footprint("C1") == 2 * 300 * 300 + 256

    @pytest.mark.parametrize("combine", ["max", "add", "absmax"])
    def test_combine_ops(self, combine):
        g = find_edges_graph(32, 32, 5, 4, combine_op=combine)
        g.validate()

    def test_bad_combine_rejected(self):
        with pytest.raises(ValueError):
            find_edges_graph(32, 32, 5, 4, combine_op="min")

    def test_single_orientation(self):
        g = find_edges_graph(32, 32, 5, 1)
        g.validate()

    def test_zero_orientations_rejected(self):
        with pytest.raises(ValueError):
            find_edges_graph(32, 32, 5, 0)

    def test_inputs_match_graph(self):
        g = find_edges_graph(40, 30, 7, 6)
        inputs = find_edges_inputs(40, 30, 7, 6)
        for name, ds in g.data.items():
            if ds.is_input:
                assert inputs[name].shape == ds.shape

    def test_inputs_deterministic(self):
        a = find_edges_inputs(16, 16, 3, 2, seed=5)
        b = find_edges_inputs(16, 16, 3, 2, seed=5)
        np.testing.assert_array_equal(a["Img"], b["Img"])

    def test_edge_filter_and_rotation(self):
        k = edge_filter(8)
        assert k.shape == (8, 8)
        assert rotated_kernel(k, 0) is not k
        np.testing.assert_array_equal(rotated_kernel(k, 4), k)
        np.testing.assert_array_equal(
            rotated_kernel(k, 1), np.rot90(k, 1).astype(np.float32)
        )


class TestCNNTemplate:
    def test_small_cnn_matches_paper_scale(self):
        """Paper: 1600 operators, 2434 data structures (ours: within 3%)."""
        g = cnn_graph(SMALL_CNN, 480, 640)
        assert abs(len(g.ops) - 1600) / 1600 < 0.03
        assert abs(len(g.data) - 2434) / 2434 < 0.03

    def test_large_cnn_matches_paper_scale(self):
        """Paper: 7500 operators, 11334 data structures (ours: within 3%)."""
        g = cnn_graph(LARGE_CNN, 480, 640)
        assert abs(len(g.ops) - 7500) / 7500 < 0.03
        assert abs(len(g.data) - 11334) / 11334 < 0.03

    def test_eleven_layers(self):
        """4 convolutional + 2 subsampling + 5 tanh."""
        layers = SMALL_CNN.layers
        assert len(layers) == 11
        assert sum(1 for l in layers if l.startswith("conv")) == 4
        assert sum(1 for l in layers if l.startswith("sub")) == 2
        assert sum(1 for l in layers if l.startswith("tanh")) == 5

    def test_fig7_layer_expansion(self):
        """A conv layer with I inputs and O outputs expands into I*O
        convolutions and I*O additions (incl. the bias add), Figure 7."""
        arch = CNNArch(
            name="fig7",
            conv1=ConvLayerSpec(1, 3),
            conv2=ConvLayerSpec(3, 2),
            conv3=ConvLayerSpec(2, 2),
            conv4=ConvLayerSpec(2, 1),
        )
        g = cnn_graph(arch, 64, 64)
        convs = [o for o in g.ops.values() if o.kind == "conv2d" and o.name.startswith("conv2.")]
        adds = [
            o
            for o in g.ops.values()
            if o.kind in ("add", "bias_add") and o.name.startswith("conv2.")
        ]
        assert len(convs) == 3 * 2
        assert len(adds) == 3 * 2

    def test_outputs_are_final_tanh_planes(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        outs = g.template_outputs()
        assert len(outs) == SMALL_CNN.conv4.out_planes
        assert all(o.startswith("tanh5.") for o in outs)

    def test_weights_and_biases_are_inputs(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        w = [d for d in g.template_inputs() if ".W" in d]
        b = [d for d in g.template_inputs() if ".B" in d]
        expect_w = sum(
            s.in_planes * s.out_planes
            for s in (SMALL_CNN.conv1, SMALL_CNN.conv2, SMALL_CNN.conv3, SMALL_CNN.conv4)
        )
        assert len(w) == expect_w
        assert len(b) == sum(
            s.out_planes
            for s in (SMALL_CNN.conv1, SMALL_CNN.conv2, SMALL_CNN.conv3, SMALL_CNN.conv4)
        )

    def test_shape_validation(self):
        assert valid_cnn_shape(SMALL_CNN, 480, 640)
        assert valid_cnn_shape(SMALL_CNN, 48, 48)
        assert not valid_cnn_shape(SMALL_CNN, 47, 47)  # odd after conv1

    def test_bad_plane_count_rejected(self):
        arch = CNNArch(
            name="bad",
            conv1=ConvLayerSpec(2, 4),  # template has one input plane
            conv2=ConvLayerSpec(4, 4),
            conv3=ConvLayerSpec(4, 4),
            conv4=ConvLayerSpec(4, 2),
        )
        with pytest.raises(ValueError):
            cnn_graph(arch, 48, 48)

    def test_inputs_cover_graph(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        inputs = cnn_inputs(SMALL_CNN, 48, 48)
        roots = {d for d, ds in g.data.items() if ds.is_input and ds.parent is None}
        assert set(inputs) == roots

    def test_paper_input_sizes_valid(self):
        """The three evaluation input sizes all satisfy shape constraints."""
        for h, w in ((480, 640), (480, 6400), (4800, 6400)):
            assert valid_cnn_shape(SMALL_CNN, h, w), (h, w)
            assert valid_cnn_shape(LARGE_CNN, h, w), (h, w)
