"""Deterministic fault injection (repro.gpusim.faults)."""

import numpy as np
import pytest

from repro.core import Framework
from repro.gpusim import (
    FaultInjector,
    FaultSpec,
    GpuDevice,
    SimRuntime,
    TransientAllocError,
    TransientFault,
    TransientTransferError,
)
from repro.runtime import execute_plan, reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="faulty", memory_bytes=8 * 1024 * 1024)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="transfer_failure_rate"):
            FaultSpec(transfer_failure_rate=1.5)
        with pytest.raises(ValueError, match="alloc_failure_rate"):
            FaultSpec(alloc_failure_rate=-0.1)

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            FaultSpec(0.5)  # noqa: the old positional shape never existed

    def test_injector_factory(self):
        inj = FaultSpec(transfer_failure_rate=0.5, seed=3).injector()
        assert isinstance(inj, FaultInjector)
        assert inj.injected_faults == 0


class TestFaultInjector:
    def drain(self, injector, sites):
        """Run every site once; return the names that faulted."""
        faulted = []
        for name in sites:
            try:
                injector.on_transfer("h2d", name, 4096)
            except TransientTransferError:
                faulted.append(name)
        return faulted

    def test_deterministic_per_seed(self):
        sites = [f"buf{i}" for i in range(200)]
        spec = FaultSpec(transfer_failure_rate=0.3, seed=11)
        first = self.drain(spec.injector(), sites)
        second = self.drain(spec.injector(), sites)
        assert first == second
        assert first  # 200 sites at 30%: some must fault

    def test_different_seeds_differ(self):
        sites = [f"buf{i}" for i in range(200)]
        a = self.drain(FaultSpec(transfer_failure_rate=0.3, seed=1).injector(), sites)
        b = self.drain(FaultSpec(transfer_failure_rate=0.3, seed=2).injector(), sites)
        assert a != b

    def test_rate_roughly_honored(self):
        sites = [f"buf{i}" for i in range(1000)]
        faulted = self.drain(
            FaultSpec(transfer_failure_rate=0.2, seed=5).injector(), sites
        )
        assert 120 <= len(faulted) <= 280  # 200 expected, generous band

    def test_sites_heal_after_one_fault(self):
        inj = FaultSpec(transfer_failure_rate=1.0, seed=0).injector()
        with pytest.raises(TransientTransferError):
            inj.on_transfer("h2d", "X", 16)
        # the same site never faults twice: retries make progress
        inj.on_transfer("h2d", "X", 16)
        assert inj.injected_transfer_faults == 1

    def test_direction_is_part_of_the_site(self):
        inj = FaultSpec(transfer_failure_rate=1.0, seed=0).injector()
        with pytest.raises(TransientTransferError):
            inj.on_transfer("h2d", "X", 16)
        with pytest.raises(TransientTransferError):
            inj.on_transfer("d2h", "X", 16)

    def test_alloc_faults_independent_of_transfer(self):
        inj = FaultSpec(alloc_failure_rate=1.0, seed=0).injector()
        inj.on_transfer("h2d", "X", 16)  # transfer rate is 0: no fault
        with pytest.raises(TransientAllocError):
            inj.on_alloc("X", 16)
        assert inj.injected_alloc_faults == 1
        assert inj.injected_transfer_faults == 0

    def test_max_faults_cap(self):
        inj = FaultSpec(
            transfer_failure_rate=1.0, seed=0, max_faults=2
        ).injector()
        for name in ("A", "B"):
            with pytest.raises(TransientFault):
                inj.on_transfer("h2d", name, 16)
        inj.on_transfer("h2d", "C", 16)  # cap reached: no more faults
        assert inj.injected_faults == 2

    def test_fault_family(self):
        assert issubclass(TransientTransferError, TransientFault)
        assert issubclass(TransientAllocError, TransientFault)


class TestRuntimeIntegration:
    def compiled(self):
        g = find_edges_graph(64, 64, 8, 2)
        return Framework(DEV).compile(g), g

    def test_transfer_fault_surfaces_and_counts(self):
        compiled, g = self.compiled()
        injector = FaultSpec(transfer_failure_rate=1.0, seed=0).injector()
        runtime = SimRuntime(DEV, fault_injector=injector)
        with pytest.raises(TransientTransferError):
            execute_plan(
                compiled.plan, compiled.graph, runtime,
                find_edges_inputs(64, 64, 8, 2),
            )
        assert injector.injected_transfer_faults == 1
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["gpu.faults.transfer"] == 1

    def test_alloc_fault_surfaces_and_counts(self):
        compiled, g = self.compiled()
        injector = FaultSpec(alloc_failure_rate=1.0, seed=0).injector()
        runtime = SimRuntime(DEV, fault_injector=injector)
        with pytest.raises(TransientAllocError):
            execute_plan(
                compiled.plan, compiled.graph, runtime,
                find_edges_inputs(64, 64, 8, 2),
            )
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["gpu.faults.alloc"] == 1

    def test_healed_retries_reach_correct_results(self):
        """Fresh runtimes + one shared injector converge to the right answer."""
        compiled, g = self.compiled()
        inputs = find_edges_inputs(64, 64, 8, 2)
        injector = FaultSpec(transfer_failure_rate=0.25, seed=9).injector()
        result = None
        for _ in range(50):
            runtime = SimRuntime(DEV, fault_injector=injector)
            try:
                result = execute_plan(compiled.plan, compiled.graph, runtime, inputs)
                break
            except TransientFault:
                continue
        assert result is not None, "healing injector must converge"
        assert injector.injected_faults > 0, "rate 0.25 must fault at least once"
        reference = reference_execute(g, inputs)
        for name, arr in reference.items():
            np.testing.assert_allclose(result.outputs[name], arr, atol=1e-4)

    def test_no_injector_no_faults(self):
        compiled, g = self.compiled()
        runtime = SimRuntime(DEV)
        execute_plan(
            compiled.plan, compiled.graph, runtime,
            find_edges_inputs(64, 64, 8, 2),
        )
        counters = runtime.metrics.snapshot()["counters"]
        assert "gpu.faults.transfer" not in counters
