"""Columnar planner IR: lowering, schedulers, transfers, engine wiring.

The byte-identity contract (columnar plans == per-object plans, steps
and provenance notes alike) is pinned by tests/test_differential.py;
this file covers the tables themselves and the Framework wiring.
"""

import json

import pytest

from repro.core import (
    COLUMNAR_SCHEDULERS,
    CompileOptions,
    Framework,
    dfs_naive_schedule,
    dfs_naive_schedule_columnar,
    dfs_schedule,
    dfs_schedule_columnar,
    lower,
    plan_to_dict,
    planner_engine,
    schedule_transfers,
    schedule_transfers_columnar,
)
from repro.core.plan import PlanError
from repro.gpusim import GpuDevice
from repro.templates import cnn_graph, find_edges_graph, SMALL_CNN

KB = 1024
DEV = GpuDevice(name="col-dev", memory_bytes=256 * KB)


def edge():
    return find_edges_graph(48, 40, 5, 4)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------
class TestLowering:
    def test_ids_are_insertion_order(self):
        g = edge()
        col = lower(g)
        assert col.data_names == list(g.data)
        assert col.op_names == list(g.ops)
        assert all(col.data_id[d] == i for i, d in enumerate(col.data_names))
        assert all(col.op_id[o] == i for i, o in enumerate(col.op_names))

    def test_data_columns(self):
        g = edge()
        col = lower(g)
        for i, (d, ds) in enumerate(g.data.items()):
            assert col.data_size[i] == ds.size
            assert col.data_is_output[i] == (ds.is_output and not ds.virtual)

    def test_band_start_column(self):
        g = edge()
        col = lower(g)
        for i, op in enumerate(g.ops.values()):
            rng = op.params.get("out_range")
            assert col.band_start[i] == (rng[0] if rng else 0)

    def test_csr_adjacency_matches_object_graph(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        col = lower(g)
        for i, (o, op) in enumerate(g.ops.items()):
            ins = [col.data_names[d]
                   for d in col.in_ids[col.in_ptr[i]:col.in_ptr[i + 1]]]
            assert ins == list(op.inputs)
            uins = [col.data_names[d]
                    for d in col.uin_ids[col.uin_ptr[i]:col.uin_ptr[i + 1]]]
            assert uins == list(dict.fromkeys(op.inputs))
            succs = [col.op_names[s]
                     for s in col.succ_ids[col.succ_ptr[i]:col.succ_ptr[i + 1]]]
            assert succs == g.op_successors(o)
            assert col.pred_counts[i] == len(g.op_predecessors(o))

    def test_counts(self):
        g = edge()
        col = lower(g)
        assert col.n_data == len(g.data)
        assert col.n_ops == len(g.ops)


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------
class TestColumnarSchedulers:
    def test_dfs_matches_reference(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        assert dfs_schedule_columnar(g) == dfs_schedule(g)

    def test_dfs_naive_matches_reference(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        assert dfs_naive_schedule_columnar(g) == dfs_naive_schedule(g)

    def test_registry_covers_both_dfs_variants(self):
        assert set(COLUMNAR_SCHEDULERS) == {"dfs", "dfs_naive"}

    def test_reuses_prelowered_tables(self):
        g = edge()
        col = lower(g)
        assert dfs_schedule_columnar(g, col) == dfs_schedule(g)


# ---------------------------------------------------------------------------
# Transfers
# ---------------------------------------------------------------------------
class TestColumnarTransfers:
    def test_rejects_unknown_policy(self):
        g = edge()
        with pytest.raises(ValueError, match="unknown eviction policy"):
            schedule_transfers_columnar(g, dfs_schedule(g), 10**6, policy="mru")

    def test_rejects_partial_op_order(self):
        g = edge()
        order = dfs_schedule(g)[:-1]
        with pytest.raises(ValueError, match="op_order must cover"):
            schedule_transfers_columnar(g, order, 10**6)

    def test_infeasible_footprint_raises_plan_error(self):
        g = edge()
        with pytest.raises(PlanError, match="footprint"):
            schedule_transfers_columnar(g, dfs_schedule(g), 16)

    def test_plan_matches_reference_bytes(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        order = dfs_schedule(g)
        cap = max(g.max_footprint(), 1) * 2
        ref = schedule_transfers(g, order, cap)
        got = schedule_transfers_columnar(g, order, cap)
        assert json.dumps(plan_to_dict(ref), sort_keys=True) == json.dumps(
            plan_to_dict(got), sort_keys=True
        )


# ---------------------------------------------------------------------------
# Framework wiring
# ---------------------------------------------------------------------------
class TestEngineWiring:
    def test_default_engine_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        assert planner_engine() == "columnar"

    def test_invalid_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER", "turbo")
        with pytest.raises(ValueError, match="REPRO_PLANNER"):
            planner_engine()

    def test_engines_compile_byte_identical(self, monkeypatch):
        g = find_edges_graph(96, 64, 5, 4)
        opts = CompileOptions(split_headroom=1.0)
        dev = GpuDevice(name="col-tight", memory_bytes=32 * KB)
        monkeypatch.setenv("REPRO_PLANNER", "object")
        ref = Framework(dev, options=opts, plan_cache=False).compile(g)
        monkeypatch.setenv("REPRO_PLANNER", "columnar")
        got = Framework(dev, options=opts, plan_cache=False).compile(g)
        assert got.op_order == ref.op_order
        assert json.dumps(plan_to_dict(got.plan), sort_keys=True) == json.dumps(
            plan_to_dict(ref.plan), sort_keys=True
        )

    def test_lowering_span_recorded(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        c = Framework(DEV, plan_cache=False).compile(edge())
        names = {sp.name for sp in c.spans}
        assert "lowering" in names
        sched = [sp for sp in c.spans if sp.name == "operator_scheduling"]
        assert sched and sched[0].attrs["engine"] == "columnar"

    def test_object_engine_records_no_lowering(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER", "object")
        c = Framework(DEV, plan_cache=False).compile(edge())
        assert "lowering" not in {sp.name for sp in c.spans}

    def test_object_scheduler_with_columnar_transfers(self, monkeypatch):
        """greedy/bfs/topo schedulers keep the per-object order but still
        benefit from columnar transfer scheduling."""
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        opts = CompileOptions(scheduler="bfs", split_headroom=1.0)
        c = Framework(DEV, options=opts, plan_cache=False).compile(edge())
        sched = [sp for sp in c.spans if sp.name == "operator_scheduling"]
        xfer = [sp for sp in c.spans if sp.name == "transfer_scheduling"]
        assert sched[0].attrs["engine"] == "object"
        assert xfer[0].attrs["engine"] == "columnar"


# ---------------------------------------------------------------------------
# Plan accounting memoization
# ---------------------------------------------------------------------------
class TestPlanAccounting:
    def test_sums_stable_across_calls(self):
        g = edge()
        cap = max(g.max_footprint(), 1) * 2
        plan = schedule_transfers(g, dfs_schedule(g), cap)
        first = (plan.h2d_floats(g), plan.d2h_floats(g), plan.transfer_floats(g))
        again = (plan.h2d_floats(g), plan.d2h_floats(g), plan.transfer_floats(g))
        assert first == again
        assert plan.summary(g)["transfer_floats"] == first[2]

    def test_cache_invalidates_on_append(self):
        from repro.core import CopyToGPU

        g = edge()
        cap = max(g.max_footprint(), 1) * 2
        plan = schedule_transfers(g, dfs_schedule(g), cap)
        before = plan.h2d_floats(g)
        extra = next(iter(g.data))
        plan.steps.append(CopyToGPU(extra))
        assert plan.h2d_floats(g) == before + g.data[extra].size
