"""Tests for the DoG pyramid template and the extra elementwise ops."""

import numpy as np
import pytest

from repro.core import Framework, Operator
from repro.gpusim import GpuDevice
from repro.ops import get_impl
from repro.runtime import reference_execute
from repro.templates import (
    dog_pyramid_graph,
    dog_pyramid_inputs,
    dog_pyramid_reference,
    gaussian_kernel,
)

rng = np.random.default_rng(77)


def make_op(kind, **params):
    return Operator("t", kind, ("a", "b"), ("o",), params)


class TestNewElementwiseOps:
    def test_sub(self):
        a = rng.standard_normal((5, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)
        (out,) = get_impl("sub").execute(make_op("sub"), [a, b])
        np.testing.assert_allclose(out, a - b)

    def test_mul(self):
        a = rng.standard_normal((5, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)
        (out,) = get_impl("mul").execute(make_op("mul"), [a, b])
        np.testing.assert_allclose(out, a * b)

    def test_relu(self):
        a = rng.standard_normal((5, 4)).astype(np.float32)
        op = Operator("t", "relu", ("a",), ("o",), {})
        (out,) = get_impl("relu").execute(op, [a])
        np.testing.assert_allclose(out, np.maximum(a, 0))

    def test_split_rules_are_elementwise(self):
        from repro.core import OperatorGraph

        g = OperatorGraph()
        g.add_data("a", (8, 4), is_input=True)
        g.add_data("b", (8, 4), is_input=True)
        g.add_data("o", (8, 4), is_output=True)
        op = g.add_operator("s", "sub", ["a", "b"], ["o"])
        assert get_impl("sub").input_rows(op, g, (2, 5)) == [(2, 5), (2, 5)]


class TestGaussianKernel:
    def test_normalised(self):
        k = gaussian_kernel(7, 1.5)
        assert k.sum() == pytest.approx(1.0, rel=1e-5)
        assert k.shape == (7, 7)

    def test_symmetric(self):
        k = gaussian_kernel(5, 1.0)
        np.testing.assert_allclose(k, k.T)
        np.testing.assert_allclose(k, k[::-1, ::-1])

    def test_bad_size(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0, 1.0)


class TestPyramidGraph:
    def test_structure(self):
        g = dog_pyramid_graph(128, 96, octaves=3)
        # Per octave: 2 convs + sub + relu (+ subsample except last).
        assert len(g.ops) == 3 * 4 + 2
        assert len(g.template_outputs()) == 3
        g.validate()

    def test_octave_shapes_halve(self):
        g = dog_pyramid_graph(128, 96, octaves=3)
        assert g.data["DoG0"].shape == (128, 96)
        assert g.data["DoG1"].shape == (64, 48)
        assert g.data["DoG2"].shape == (32, 24)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            dog_pyramid_graph(16, 16, octaves=4)

    def test_zero_octaves_rejected(self):
        with pytest.raises(ValueError):
            dog_pyramid_graph(128, 96, octaves=0)

    def test_reference_matches_graph_execution(self):
        g = dog_pyramid_graph(64, 64, octaves=2)
        inputs = dog_pyramid_inputs(64, 64, seed=4)
        ref = dog_pyramid_reference(inputs, 2)
        out = reference_execute(g, inputs)
        assert set(out) == set(ref)
        for k in ref:
            np.testing.assert_allclose(out[k], ref[k], rtol=1e-3, atol=1e-4)


class TestPyramidUnderPressure:
    @pytest.mark.parametrize("mem_kb", [256, 96, 60])
    def test_split_execution_matches(self, mem_kb):
        g = dog_pyramid_graph(128, 96, octaves=3)
        inputs = dog_pyramid_inputs(128, 96, seed=6)
        ref = dog_pyramid_reference(inputs, 3)
        fw = Framework(GpuDevice(name=f"m{mem_kb}", memory_bytes=mem_kb * 1024))
        compiled = fw.compile(g)
        res = fw.execute(compiled, inputs)
        for k in ref:
            np.testing.assert_allclose(
                res.outputs[k], ref[k], rtol=1e-3, atol=1e-4
            )

    def test_transfers_reach_io_bound(self):
        g = dog_pyramid_graph(128, 96, octaves=3)
        fw = Framework(GpuDevice(name="m60", memory_bytes=60 * 1024))
        compiled = fw.compile(g)
        assert compiled.transfer_floats() == g.io_size()


class TestCompaction:
    def test_defragmentation_event_recorded(self):
        """The fragmented pyramid run triggers runtime compaction."""
        from repro.gpusim import SimRuntime

        g = dog_pyramid_graph(128, 96, octaves=3)
        inputs = dog_pyramid_inputs(128, 96, seed=2)
        fw = Framework(GpuDevice(name="m60", memory_bytes=60 * 1024))
        compiled = fw.compile(g)
        rt = SimRuntime(fw.device)
        from repro.runtime import execute_plan

        execute_plan(compiled.plan, compiled.graph, rt, inputs)
        names = [e.name for e in rt.profile.events]
        assert "defragment" in names

    def test_true_oom_still_raises(self):
        from repro.gpusim import OutOfDeviceMemoryError, SimRuntime

        rt = SimRuntime(GpuDevice(name="t", memory_bytes=1024))
        rt.malloc("a", 800)
        with pytest.raises(OutOfDeviceMemoryError):
            rt.malloc("b", 800)

    def test_compaction_preserves_contents(self):
        from repro.gpusim import SimRuntime

        rt = SimRuntime(GpuDevice(name="t", memory_bytes=4096))
        rt.malloc("a", 1024)
        rt.write_device("a", np.arange(256, dtype=np.float32))
        rt.malloc("b", 1024)
        rt.write_device("b", np.arange(256, dtype=np.float32) * 2)
        rt.free("a")
        rt.malloc("c", 2048)  # needs the hole left by a + tail: compacts
        np.testing.assert_array_equal(
            rt.read_device("b"), np.arange(256, dtype=np.float32) * 2
        )
