"""Test-suite configuration.

Each test gets a fresh process-default plan cache so compiles inside a
test always run the full pipeline (phase spans, split reports) and no
test observes a cache hit caused by an earlier test compiling the same
template.  The disk tier is likewise disabled so a developer's
``REPRO_PLAN_CACHE`` setting cannot leak state between test runs.
Caching behaviour itself is exercised explicitly in
``tests/test_plancache.py`` with private :class:`PlanCache` instances.

Tests that drive the concurrent execution service carry a
``@pytest.mark.timeout(...)`` so a worker-pool deadlock fails the run
instead of hanging it.  CI installs ``pytest-timeout`` (see the
``[test]`` extra), which enforces the marker natively; when the plugin
is absent locally, the ``_timeout_watchdog`` fixture below provides a
best-effort SIGALRM fallback, so the marker never silently degrades to
a no-op.
"""

import os
import re
import signal
import threading

import pytest

from repro.core import reset_default_cache

try:
    import pytest_timeout  # noqa: F401

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False


@pytest.fixture(autouse=True)
def _fresh_plan_cache(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


@pytest.fixture
def flight_dir(request, tmp_path):
    """Directory for flight-recorder journals written by a test.

    Defaults to the test's ``tmp_path``.  When
    ``REPRO_FLIGHT_ARTIFACT_DIR`` is set (CI does this), journals land
    in a per-test subdirectory of that path instead, so a failing run's
    segments and ``postmortem.json`` reports survive the test session
    and get uploaded as build artifacts.
    """
    root = os.environ.get("REPRO_FLIGHT_ARTIFACT_DIR")
    if not root:
        return os.fspath(tmp_path)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", request.node.nodeid)
    path = os.path.join(root, safe)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(autouse=True)
def _timeout_watchdog(request):
    marker = request.node.get_closest_marker("timeout")
    if (
        marker is None
        or HAVE_PYTEST_TIMEOUT
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = float(marker.args[0] if marker.args else marker.kwargs["seconds"])

    def _expired(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds:g}s timeout (fallback watchdog; "
            f"install pytest-timeout for full enforcement)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
