"""Test-suite configuration.

Each test gets a fresh process-default plan cache so compiles inside a
test always run the full pipeline (phase spans, split reports) and no
test observes a cache hit caused by an earlier test compiling the same
template.  The disk tier is likewise disabled so a developer's
``REPRO_PLAN_CACHE`` setting cannot leak state between test runs.
Caching behaviour itself is exercised explicitly in
``tests/test_plancache.py`` with private :class:`PlanCache` instances.
"""

import pytest

from repro.core import reset_default_cache


@pytest.fixture(autouse=True)
def _fresh_plan_cache(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()
