"""Tests for data-transfer scheduling (Section 3.3.1)."""

import pytest

from repro.core import (
    OperatorGraph,
    OutSpec,
    PlanError,
    Slot,
    bfs_schedule,
    dfs_schedule,
    make_feasible,
    schedule_transfers,
    validate_plan,
)
from repro.templates import find_edges_graph

POLICIES = ("belady", "cost", "ltu", "lru", "fifo")


def fig3_graph():
    """The paper's Figure 3/6 illustration (unit sizes, capacity 5)."""
    g = OperatorGraph("fig3")
    g.add_data("Im", (2, 1), is_input=True)
    g.add_data("E1", (2, 1), virtual=True)
    g.add_data("E2", (2, 1), virtual=True)
    g.add_data("E1p", (1, 1), parent="E1", row_range=(0, 1))
    g.add_data("E1q", (1, 1), parent="E1", row_range=(1, 2))
    g.add_data("E2p", (1, 1), parent="E2", row_range=(0, 1))
    g.add_data("E2q", (1, 1), parent="E2", row_range=(1, 2))
    for s in ("E5p", "E5q", "E6p", "E6q"):
        g.add_data(s, (1, 1))
    g.add_data("Ep", (1, 1), is_output=True)
    g.add_data("Eq", (1, 1), is_output=True)
    g.add_operator(
        "C1", "remap", ["Im"], ["E1p", "E1q"],
        slots=[Slot("Im", None, ["Im"])],
        out_specs=[OutSpec("E1", (0, 2), [("E1p", (0, 1)), ("E1q", (1, 2))])],
    )
    g.add_operator(
        "C2", "remap", ["Im"], ["E2p", "E2q"],
        slots=[Slot("Im", None, ["Im"])],
        out_specs=[OutSpec("E2", (0, 2), [("E2p", (0, 1)), ("E2q", (1, 2))])],
    )
    g.add_operator("R1p", "remap", ["E1p"], ["E5p"])
    g.add_operator("R1q", "remap", ["E1q"], ["E5q"])
    g.add_operator("R2p", "remap", ["E2p"], ["E6p"])
    g.add_operator("R2q", "remap", ["E2q"], ["E6q"])
    g.add_operator("max1", "max", ["E5p", "E6p"], ["Ep"])
    g.add_operator("max2", "max", ["E5q", "E6q"], ["Eq"])
    g.validate()
    return g


GOOD_ORDER = ["C1", "C2", "R1p", "R2p", "max1", "R1q", "R2q", "max2"]
BAD_ORDER = ["C1", "C2", "R1p", "R1q", "R2p", "R2q", "max1", "max2"]


class TestFigure3:
    """The paper's schedule-impact illustration."""

    def test_paper_good_schedule_costs_8_without_eager_free(self):
        """Figure 3(b)'s 8 transfer units, reproduced with the paper's
        illustrated discipline (no eager deletion, recency eviction)."""
        g = fig3_graph()
        plan = schedule_transfers(
            g, GOOD_ORDER, 5, policy="lru", eager_free=False
        )
        assert plan.transfer_floats(g) == 8

    def test_paper_bad_schedule_costs_more(self):
        """Figure 3(a): the sibling-first order transfers substantially
        more (paper: 15 vs 8) under the same discipline."""
        g = fig3_graph()
        bad = schedule_transfers(
            g, BAD_ORDER, 5, policy="lru", eager_free=False
        ).transfer_floats(g)
        good = schedule_transfers(
            g, GOOD_ORDER, 5, policy="lru", eager_free=False
        ).transfer_floats(g)
        assert bad > good
        assert bad >= 12

    def test_full_heuristic_reaches_joint_optimum(self):
        """Belady + eager free achieves 6 units — the exact joint optimum
        (verified against the PB formulation) — under either order."""
        g = fig3_graph()
        for order in (GOOD_ORDER, BAD_ORDER):
            plan = schedule_transfers(g, order, 5)
            assert plan.transfer_floats(g) == 6

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("eager", [True, False])
    def test_all_configurations_valid(self, policy, eager):
        g = fig3_graph()
        for order in (GOOD_ORDER, BAD_ORDER, dfs_schedule(g)):
            plan = schedule_transfers(
                g, order, 5, policy=policy, eager_free=eager
            )
            peak = validate_plan(plan, g, 5)
            assert peak <= 5


class TestGeneralProperties:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_edge_template_plans_valid(self, policy):
        g = find_edges_graph(40, 30, 5, 4)
        cap = g.max_footprint() + 10
        order = dfs_schedule(g)
        plan = schedule_transfers(g, order, cap, policy=policy)
        assert validate_plan(plan, g, cap) <= cap

    def test_split_graph_plans_valid(self):
        g = find_edges_graph(60, 40, 7, 8)
        cap = g.max_footprint() // 3
        make_feasible(g, cap)
        for order_fn in (dfs_schedule, bfs_schedule):
            plan = schedule_transfers(g, order_fn(g), cap)
            assert validate_plan(plan, g, cap) <= cap

    def test_everything_fits_transfers_io_only(self):
        """With ample memory the plan moves exactly inputs + outputs."""
        g = find_edges_graph(32, 32, 5, 4)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        assert plan.transfer_floats(g) == g.io_size()

    def test_op_exceeding_capacity_rejected(self):
        g = find_edges_graph(32, 32, 5, 4)
        with pytest.raises(PlanError, match="splitting"):
            schedule_transfers(g, dfs_schedule(g), 100)

    def test_wrong_op_cover_rejected(self):
        g = find_edges_graph(32, 32, 5, 4)
        with pytest.raises(ValueError):
            schedule_transfers(g, ["C1"], 10**9)

    def test_unknown_policy_rejected(self):
        g = find_edges_graph(32, 32, 5, 4)
        with pytest.raises(ValueError):
            schedule_transfers(g, dfs_schedule(g), 10**9, policy="belody")

    def test_tight_capacity_more_transfers(self):
        """Transfer volume decreases monotonically with memory (spot check)."""
        g = find_edges_graph(64, 48, 5, 8)
        order = dfs_schedule(g)
        caps = [g.max_footprint() + 1, g.total_data_size(), 10**9]
        vols = [
            schedule_transfers(g, order, c).transfer_floats(g) for c in caps
        ]
        assert vols[0] >= vols[1] >= vols[2]
        assert vols[2] == g.io_size()

    def test_belady_never_worse_than_fifo_on_edge(self):
        g = find_edges_graph(64, 48, 5, 8)
        cap = g.max_footprint() + 10
        order = dfs_schedule(g)
        belady = schedule_transfers(g, order, cap, policy="belady")
        fifo = schedule_transfers(g, order, cap, policy="fifo")
        assert belady.transfer_floats(g) <= fifo.transfer_floats(g)

    def test_label_records_configuration(self):
        g = find_edges_graph(32, 32, 5, 4)
        plan = schedule_transfers(
            g, dfs_schedule(g), 10**9, policy="lru", eager_free=False
        )
        assert plan.label == "lru+lazy"
