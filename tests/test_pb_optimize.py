"""Tests for the PB optimisation driver (PBSolver.minimize)."""

import itertools
import random

from repro.pb import PBSolver, evaluate_terms


def brute_force_min(nvars, constraints, objective):
    """(feasible, best) over all assignments."""
    best = None
    for bits in itertools.product([False, True], repeat=nvars):
        model = {v: bits[v - 1] for v in range(1, nvars + 1)}
        ok = True
        for kind, terms, bound in constraints:
            val = evaluate_terms(terms, model)
            if kind == "leq" and val > bound:
                ok = False
            elif kind == "geq" and val < bound:
                ok = False
            elif kind == "eq" and val != bound:
                ok = False
            if not ok:
                break
        if ok:
            v = evaluate_terms(objective, model)
            best = v if best is None else min(best, v)
    return best


def random_instance(rng, n):
    constraints = []
    for _ in range(rng.randint(1, 5)):
        terms = [
            (rng.randint(-4, 4), rng.choice([1, -1]) * rng.randint(1, n))
            for _ in range(rng.randint(1, n))
        ]
        constraints.append(
            (rng.choice(["leq", "geq", "eq"]), terms, rng.randint(-6, 10))
        )
    objective = [(rng.randint(0, 5), v) for v in range(1, n + 1)]
    return constraints, objective


def solve_with(constraints, objective, n, upper_bound=None):
    p = PBSolver()
    p.new_vars(n)
    for kind, terms, bound in constraints:
        getattr(p, "add_" + kind)(terms, bound)
    return p.minimize(objective, upper_bound=upper_bound)


class TestMinimize:
    def test_simple_cover(self):
        # pick at least 3 of 5, minimise weights
        p = PBSolver()
        x = p.new_vars(5)
        p.add_geq([(1, v) for v in x], 3)
        r = p.minimize([(2, x[0]), (1, x[1]), (5, x[2]), (1, x[3]), (1, x[4])])
        assert r.status == "optimal"
        assert r.value == 3

    def test_zero_optimum(self):
        p = PBSolver()
        x = p.new_vars(3)
        p.add_clause([x[0], x[1]])
        r = p.minimize([(4, x[2])])
        assert r.value == 0
        assert r.model[x[2]] is False

    def test_unsat(self):
        p = PBSolver()
        x = p.new_vars(2)
        p.add_leq([(1, x[0]), (1, x[1])], 0)
        p.add_geq([(1, x[0])], 1)
        r = p.minimize([(1, x[0])])
        assert r.status == "unsat"
        assert not r.satisfiable

    def test_objective_with_negative_coefficients(self):
        # minimise x0 - 2*x1 subject to x0 + x1 >= 1 -> pick x1: value -2
        p = PBSolver()
        x = p.new_vars(2)
        p.add_geq([(1, x[0]), (1, x[1])], 1)
        r = p.minimize([(1, x[0]), (-2, x[1])])
        assert r.value == -2

    def test_objective_on_negative_literals(self):
        # minimise (~x0): force x0 true for free
        p = PBSolver()
        x = p.new_vars(1)
        r = p.minimize([(3, -x[0])])
        assert r.value == 0
        assert r.model[x[0]] is True

    def test_gcd_scaled_objective(self):
        p = PBSolver()
        x = p.new_vars(4)
        p.add_geq([(1, v) for v in x], 2)
        r = p.minimize([(10, v) for v in x])
        assert r.value == 20

    def test_upper_bound_respected(self):
        constraints = [("geq", [(1, 1), (1, 2), (1, 3)], 2)]
        objective = [(3, 1), (5, 2), (7, 3)]
        r = solve_with(constraints, objective, 3, upper_bound=12)
        assert r.value == 8

    def test_tight_upper_bound_still_optimal(self):
        constraints = [("geq", [(1, 1), (1, 2)], 1)]
        objective = [(2, 1), (3, 2)]
        r = solve_with(constraints, objective, 2, upper_bound=2)
        assert r.value == 2

    def test_infeasible_upper_bound_reports_unsat(self):
        constraints = [("geq", [(1, 1), (1, 2)], 2)]
        objective = [(2, 1), (3, 2)]
        r = solve_with(constraints, objective, 2, upper_bound=4)
        assert r.status == "unsat"

    def test_exactly_one_helper(self):
        p = PBSolver()
        x = p.new_vars(5)
        p.exactly_one(x)
        r = p.minimize([(i + 1, v) for i, v in enumerate(x)])
        assert r.value == 1

    def test_at_most_one_helper(self):
        p = PBSolver()
        x = p.new_vars(8)
        p.at_most_one(x)
        p.add_geq([(1, v) for v in x], 1)
        assert p.solve()
        assert sum(p.model()[v] for v in x) == 1

    def test_implies_helper(self):
        p = PBSolver()
        a, b, c = p.new_vars(3)
        p.implies([a, b], c)
        p.add_clause([a])
        p.add_clause([b])
        assert p.solve()
        assert p.model()[c] is True

    def test_empty_clause_makes_unsat(self):
        p = PBSolver()
        p.new_vars(1)
        p.add_clause([])
        assert not p.solve()


class TestRandomMinimize:
    def test_matches_bruteforce(self):
        rng = random.Random(99)
        for trial in range(120):
            n = rng.randint(2, 7)
            constraints, objective = random_instance(rng, n)
            expected = brute_force_min(n, constraints, objective)
            r = solve_with(constraints, objective, n)
            if expected is None:
                assert r.status == "unsat", trial
            else:
                assert r.status == "optimal", trial
                assert r.value == expected, (trial, r.value, expected)

    def test_matches_bruteforce_with_upper_bound(self):
        rng = random.Random(17)
        for trial in range(60):
            n = rng.randint(2, 6)
            constraints, objective = random_instance(rng, n)
            expected = brute_force_min(n, constraints, objective)
            if expected is None:
                continue
            slack = rng.randint(0, 3)
            r = solve_with(constraints, objective, n, upper_bound=expected + slack)
            assert r.status == "optimal"
            assert r.value == expected, (trial, r.value, expected)
