"""Profile aggregate semantics + Chrome-trace export of the timeline.

Satellite coverage from the observability PR: empty profiles, breakdown
normalisation, bytes_transferred excluding kernel/alloc traffic (kernel
events now carry their bytes_accessed), and the trace-event export.
"""

import json

from repro.gpusim import Event, EventKind, GpuDevice, Profile, SimRuntime
from repro.obs import chrome_trace

DEV = GpuDevice(name="agg-dev", memory_bytes=1 << 20)


def sample_profile() -> Profile:
    p = Profile()
    p.record(Event(EventKind.ALLOC, "A", 0.0, 0.0, 400))
    p.record(Event(EventKind.H2D, "A", 0.0, 1.0, 400))
    p.record(Event(EventKind.KERNEL, "k", 1.0, 2.0, 1200))
    p.record(Event(EventKind.D2H, "B", 3.0, 0.5, 160))
    p.record(Event(EventKind.HOST, "stage", 3.5, 0.25, 80))
    p.record(Event(EventKind.FREE, "A", 3.75, 0.0, 400))
    return p


class TestAggregates:
    def test_empty_profile(self):
        p = Profile()
        assert p.total_time() == 0.0
        assert p.transfer_time == 0.0
        assert p.bytes_transferred() == 0
        assert p.breakdown() == {
            "transfer": 0.0, "compute": 0.0, "host": 0.0,
        }
        assert p.counts() == {}
        assert p.bytes_by_kind() == {}

    def test_breakdown_sums_to_one(self):
        b = sample_profile().breakdown()
        assert abs(sum(b.values()) - 1.0) < 1e-12
        assert b["compute"] > b["host"]

    def test_bytes_transferred_excludes_kernel_and_alloc(self):
        p = sample_profile()
        # only H2D + D2H, even though kernel/alloc/free carry nbytes
        assert p.bytes_transferred() == 400 + 160

    def test_bytes_by_kind(self):
        by_kind = sample_profile().bytes_by_kind()
        assert by_kind["kernel"] == 1200
        assert by_kind["memcpy_h2d"] == 400
        assert by_kind["alloc"] == 400

    def test_total_time_is_last_end(self):
        assert sample_profile().total_time() == 3.75


class TestKernelBytesRecorded:
    def test_launch_records_bytes_accessed(self):
        rt = SimRuntime(DEV)
        rt.launch("k1", flops=1000.0, bytes_accessed=4096.0)
        [ev] = rt.profile.events
        assert ev.kind is EventKind.KERNEL
        assert ev.nbytes == 4096
        assert rt.profile.bytes_by_kind()["kernel"] == 4096
        # and the metrics registry saw the same traffic
        assert rt.metrics.snapshot()["counters"]["gpu.bytes_kernel"] == 4096

    def test_kernel_bytes_not_in_transfer_totals(self):
        rt = SimRuntime(DEV)
        rt.launch("k1", flops=10.0, bytes_accessed=512.0)
        assert rt.profile.bytes_transferred() == 0


class TestChromeExportRoundTrip:
    def test_valid_json_and_ordered_ts(self, tmp_path):
        trace = chrome_trace(profile=sample_profile())
        text = json.dumps(trace)
        raw = json.loads(text)
        evs = raw["traceEvents"]
        assert evs
        for e in evs:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(e)
        ts = [e["ts"] for e in evs if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_durations_match_profile(self):
        p = sample_profile()
        evs = chrome_trace(profile=p)["traceEvents"]
        xs = [e for e in evs if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in xs)
        expected = (p.transfer_time + p.compute_time + p.host_time) * 1e6
        assert abs(total_us - expected) < 1e-6

    def test_zero_duration_events_become_instants(self):
        evs = chrome_trace(profile=sample_profile())["traceEvents"]
        instants = [e for e in evs if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"A"}  # alloc + free
        assert all(e["s"] == "t" for e in instants)
