"""Concurrent execution service (repro.service)."""

import threading
import time

import numpy as np
import pytest

from repro.core.framework import Framework
from repro.gpusim import TESLA_C870, XEON_WORKSTATION, FaultSpec, GpuDevice
from repro.runtime import reference_execute
from repro.service import (
    ExecutionService,
    QueueFullError,
    RequestStatus,
    RetryPolicy,
    ServiceClosedError,
    ServiceConfig,
    ServiceRequest,
)
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="svc-dev", memory_bytes=8 * 1024 * 1024)


def edge_request(size=64, kernel=8, **kwargs):
    kwargs.setdefault("label", f"edge{size}")
    return ServiceRequest(
        template=find_edges_graph(size, size, kernel, 2),
        device=DEV,
        host=XEON_WORKSTATION,
        **kwargs,
    )


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestRequestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            edge_request(mode="transmogrify")

    def test_bad_planner(self):
        with pytest.raises(ValueError, match="planner"):
            edge_request(planner="oracle")

    def test_execute_requires_inputs(self):
        with pytest.raises(ValueError, match="inputs"):
            edge_request(mode="execute")

    def test_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            edge_request(deadline=-1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


@pytest.mark.timeout(60)
class TestSingleFlight:
    def test_concurrent_identical_requests_compile_once(self, monkeypatch):
        """The leader blocks mid-compile; followers must join its flight."""
        release = threading.Event()
        calls = []
        original = Framework.compile

        def blocking_compile(self, template, **kwargs):
            calls.append(template.name)
            assert release.wait(30), "test forgot to release the leader"
            return original(self, template, **kwargs)

        monkeypatch.setattr(Framework, "compile", blocking_compile)
        with ExecutionService(ServiceConfig(workers=4)) as svc:
            tickets = [svc.submit(edge_request()) for _ in range(4)]
            joined = wait_until(
                lambda: svc.metrics_snapshot()["counters"].get(
                    "service.singleflight_joins", 0
                ) == 3
            )
            assert joined, "3 of 4 identical requests must join the flight"
            release.set()
            responses = [t.result(timeout=30) for t in tickets]
        assert len(calls) == 1, "single-flight must compile exactly once"
        assert all(r.ok for r in responses)
        assert sum(r.deduped for r in responses) == 3

    def test_leader_failure_propagates_to_followers(self, monkeypatch):
        release = threading.Event()

        def exploding_compile(self, template, **kwargs):
            release.wait(30)
            raise RuntimeError("boom in the leader")

        monkeypatch.setattr(Framework, "compile", exploding_compile)
        with ExecutionService(ServiceConfig(workers=4)) as svc:
            tickets = [svc.submit(edge_request()) for _ in range(4)]
            wait_until(
                lambda: svc.metrics_snapshot()["counters"].get(
                    "service.singleflight_joins", 0
                ) == 3
            )
            release.set()
            responses = [t.result(timeout=30) for t in tickets]
        assert all(r.status is RequestStatus.FAILED for r in responses)
        assert all("boom" in (r.error or "") for r in responses)

    def test_sixteen_of_four_distinct(self):
        """The acceptance demo: 16 submissions of 4 distinct requests
        yield exactly 4 compiles and a dedupe counter of 12."""
        sizes = (48, 64, 80, 96)
        with ExecutionService(ServiceConfig(workers=8)) as svc:
            tickets = [
                svc.submit(edge_request(size=sizes[i % 4])) for i in range(16)
            ]
            responses = [t.result(timeout=60) for t in tickets]
            counters = svc.metrics_snapshot()["counters"]
            timelines = {t.id: svc.request_timeline(t.id) for t in tickets}
        assert all(r.ok for r in responses)
        assert counters["service.compiles"] == 4
        assert counters["service.dedupe_hits"] == 12
        assert (
            counters.get("service.singleflight_joins", 0)
            + counters.get("service.plan_cache_hits", 0)
        ) == 12
        # Every one of the 16 requests — leaders, single-flight
        # followers, and plan-cache hits alike — has a complete, ordered
        # admission -> completion telemetry timeline of its own.
        for ticket in tickets:
            timeline = timelines[ticket.id]
            assert timeline, f"request {ticket.id} has no timeline"
            assert all(e.request_id == ticket.id for e in timeline)
            kinds = [e.kind for e in timeline]
            assert kinds[0] == "service.admit"
            assert "service.start" in kinds
            assert kinds[-1] == "service.done"
            # the compile stage is visible either as this request's own
            # compile or as a join referencing the leader's
            assert (
                "service.compile_done" in kinds
                or "service.dedupe_join" in kinds
            )
            seqs = [e.seq for e in timeline]
            assert seqs == sorted(seqs)

    def test_pb_requests_dedupe_via_memo(self):
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            first = svc.submit(edge_request(planner="pb")).result(timeout=60)
            second = svc.submit(edge_request(planner="pb")).result(timeout=60)
        assert first.ok and second.ok
        assert first.planner_used.startswith("pb")
        assert second.deduped


@pytest.mark.timeout(60)
class TestDeadlines:
    def test_expired_heuristic_request_is_rejected_loudly(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            resp = svc.submit(
                edge_request(planner="heuristic", deadline=0.0)
            ).result(timeout=30)
        assert resp.status is RequestStatus.EXPIRED
        assert "deadline expired" in resp.error
        assert resp.value is None

    def test_expired_pb_request_degrades_to_heuristic(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            resp = svc.submit(
                edge_request(planner="pb", deadline=0.0)
            ).result(timeout=30)
            counters = svc.metrics_snapshot()["counters"]
        assert resp.ok
        assert resp.degraded
        assert resp.planner_used == "heuristic-degraded"
        assert counters["service.degraded"] == 1

    def test_degradation_disabled_expires_instead(self):
        cfg = ServiceConfig(workers=1, degrade_on_deadline=False)
        with ExecutionService(cfg) as svc:
            resp = svc.submit(
                edge_request(planner="pb", deadline=0.0)
            ).result(timeout=30)
        assert resp.status is RequestStatus.EXPIRED

    def test_deadline_pressure_mid_retry_expires_heuristic(self):
        # Backoff (1s) cannot fit in the 50 ms deadline, and a heuristic
        # request has nothing to degrade to: explicit expiry.
        sleeps = []
        cfg = ServiceConfig(
            workers=1,
            retry=RetryPolicy(max_attempts=5, backoff_base=1.0),
            fault_spec=FaultSpec(transfer_failure_rate=1.0, seed=1, max_faults=4),
        )
        with ExecutionService(cfg, sleep=sleeps.append) as svc:
            resp = svc.submit(
                edge_request(
                    mode="execute",
                    inputs=find_edges_inputs(64, 64, 8, 2),
                    deadline=0.05,
                )
            ).result(timeout=30)
        assert resp.status is RequestStatus.EXPIRED
        assert "backoff" in resp.error
        assert sleeps == []  # expired instead of sleeping past the deadline

    def test_deadline_pressure_mid_retry_degrades_pb(self):
        cfg = ServiceConfig(
            workers=1,
            retry=RetryPolicy(max_attempts=5, backoff_base=1.0),
            fault_spec=FaultSpec(transfer_failure_rate=1.0, seed=1, max_faults=1),
        )
        with ExecutionService(cfg, sleep=lambda s: None) as svc:
            resp = svc.submit(
                edge_request(
                    mode="execute",
                    planner="pb",
                    inputs=find_edges_inputs(64, 64, 8, 2),
                    deadline=0.05,
                )
            ).result(timeout=60)
        assert resp.ok
        assert resp.degraded
        assert resp.planner_used.endswith("-degraded")

    def test_default_deadline_from_config(self):
        cfg = ServiceConfig(workers=1, default_deadline=1e-9,
                            degrade_on_deadline=False)
        with ExecutionService(cfg) as svc:
            resp = svc.submit(edge_request()).result(timeout=30)
        assert resp.status is RequestStatus.EXPIRED


@pytest.mark.timeout(60)
class TestAdmissionAndCancellation:
    def blocked_service(self, monkeypatch, **cfg):
        release = threading.Event()
        original = Framework.compile

        def blocking_compile(self, template, **kwargs):
            release.wait(30)
            return original(self, template, **kwargs)

        monkeypatch.setattr(Framework, "compile", blocking_compile)
        return ExecutionService(ServiceConfig(**cfg)), release

    def test_queue_full_is_explicit(self, monkeypatch):
        svc, release = self.blocked_service(
            monkeypatch, workers=1, max_queue_depth=1
        )
        with svc:
            running = svc.submit(edge_request(size=48))
            assert wait_until(lambda: svc.queue_depth() == 0)
            queued = svc.submit(edge_request(size=64))
            with pytest.raises(QueueFullError, match="queue depth"):
                svc.submit(edge_request(size=80))
            counters = svc.metrics_snapshot()["counters"]
            assert counters["service.rejected"] == 1
            release.set()
            assert running.result(timeout=30).ok
            assert queued.result(timeout=30).ok

    def test_cancel_queued_request(self, monkeypatch):
        svc, release = self.blocked_service(
            monkeypatch, workers=1, max_queue_depth=8
        )
        with svc:
            running = svc.submit(edge_request(size=48))
            assert wait_until(lambda: svc.queue_depth() == 0)
            queued = svc.submit(edge_request(size=64))
            assert queued.cancel() is True
            resp = queued.result(timeout=5)
            assert resp.status is RequestStatus.CANCELLED
            # cancelling a running (or finished) request is a no-op
            assert running.cancel() is False
            release.set()
            assert running.result(timeout=30).ok

    def test_submit_after_close_raises(self):
        svc = ExecutionService(ServiceConfig(workers=1))
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(edge_request())

    def test_close_drains_queue(self):
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            tickets = svc.submit_all([edge_request(size=s) for s in (48, 64, 80)])
        # context exit closes + joins: everything must have finished
        assert all(t.result(timeout=1).ok for t in tickets)

    def test_close_cancel_pending(self, monkeypatch):
        svc, release = self.blocked_service(
            monkeypatch, workers=1, max_queue_depth=8
        )
        running = svc.submit(edge_request(size=48))
        assert wait_until(lambda: svc.queue_depth() == 0)
        queued = svc.submit(edge_request(size=64))
        release.set()
        svc.close(cancel_pending=True)
        assert running.result(timeout=5).ok
        assert queued.result(timeout=5).status is RequestStatus.CANCELLED

    def test_result_timeout(self, monkeypatch):
        svc, release = self.blocked_service(monkeypatch, workers=1)
        with svc:
            ticket = svc.submit(edge_request())
            with pytest.raises(TimeoutError, match="not done"):
                ticket.result(timeout=0.01)
            release.set()
            assert ticket.result(timeout=30).ok


@pytest.mark.timeout(60)
class TestRetries:
    def test_seeded_faults_retry_to_completion(self):
        """The acceptance demo: 20% seeded transfer faults, every request
        completes via retries, counters visible."""
        cfg = ServiceConfig(
            workers=4,
            retry=RetryPolicy(max_attempts=8, backoff_base=1e-4),
            fault_spec=FaultSpec(transfer_failure_rate=0.2, seed=7),
        )
        inputs = find_edges_inputs(64, 64, 8, 2)
        with ExecutionService(cfg) as svc:
            tickets = [
                svc.submit(edge_request(mode="execute", inputs=inputs))
                for _ in range(8)
            ]
            responses = [t.result(timeout=120) for t in tickets]
            counters = svc.metrics_snapshot()["counters"]
        assert all(r.ok for r in responses)
        assert counters["service.retries"] > 0
        assert counters["service.faults"] == counters["service.retries"]
        assert counters["gpu.faults.transfer"] == counters["service.faults"]

    def test_retry_is_deterministic_per_seed(self):
        def attempts_for(seed):
            cfg = ServiceConfig(
                workers=1,
                retry=RetryPolicy(max_attempts=8, backoff_base=1e-4),
                fault_spec=FaultSpec(transfer_failure_rate=0.3, seed=seed),
            )
            with ExecutionService(cfg) as svc:
                resp = svc.submit(
                    edge_request(
                        mode="execute",
                        inputs=find_edges_inputs(64, 64, 8, 2),
                    )
                ).result(timeout=60)
            assert resp.ok
            return resp.attempts

        assert attempts_for(3) == attempts_for(3)

    def test_backoff_schedule_and_injectable_sleep(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.01, backoff_multiplier=2.0,
            backoff_max=1.0,
        )
        cfg = ServiceConfig(
            workers=1,
            retry=policy,
            fault_spec=FaultSpec(
                transfer_failure_rate=1.0, seed=0, max_faults=2
            ),
        )
        with ExecutionService(cfg, sleep=sleeps.append) as svc:
            resp = svc.submit(
                edge_request(
                    mode="execute", inputs=find_edges_inputs(64, 64, 8, 2)
                )
            ).result(timeout=60)
        assert resp.ok
        assert resp.attempts == 3 and resp.retries == 2
        assert sleeps == [policy.backoff(1), policy.backoff(2)]

    def test_exhausted_retries_fail_with_last_fault(self):
        cfg = ServiceConfig(
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_base=1e-4),
            fault_spec=FaultSpec(transfer_failure_rate=1.0, seed=0),
        )
        with ExecutionService(cfg) as svc:
            resp = svc.submit(
                edge_request(
                    mode="execute", inputs=find_edges_inputs(64, 64, 8, 2)
                )
            ).result(timeout=60)
        assert resp.status is RequestStatus.FAILED
        assert "gave up after 2 attempts" in resp.error
        assert "injected" in resp.error

    def test_results_correct_despite_faults(self):
        g = find_edges_graph(64, 64, 8, 2)
        inputs = find_edges_inputs(64, 64, 8, 2)
        cfg = ServiceConfig(
            workers=2,
            retry=RetryPolicy(max_attempts=8, backoff_base=1e-4),
            fault_spec=FaultSpec(transfer_failure_rate=0.25, seed=5),
        )
        with ExecutionService(cfg) as svc:
            resp = svc.submit(
                ServiceRequest(
                    template=g, device=DEV, host=XEON_WORKSTATION,
                    mode="execute", inputs=inputs,
                )
            ).result(timeout=120)
        assert resp.ok and resp.retries > 0
        reference = reference_execute(g, inputs)
        for name, arr in reference.items():
            np.testing.assert_allclose(
                resp.value.outputs[name], arr, atol=1e-4
            )


@pytest.mark.timeout(60)
class TestModesAndPlanners:
    def test_simulate_mode(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            resp = svc.submit(edge_request(mode="simulate")).result(timeout=30)
        assert resp.ok
        assert resp.value.total_time > 0

    def test_auto_planner_picks_pb_for_small_templates(self):
        cfg = ServiceConfig(workers=1, pb_max_ops=64)
        with ExecutionService(cfg) as svc:
            resp = svc.submit(edge_request(planner="auto")).result(timeout=60)
        assert resp.ok
        assert resp.planner_used.startswith("pb")

    def test_auto_planner_falls_back_for_large_templates(self):
        cfg = ServiceConfig(workers=1, pb_max_ops=1)
        with ExecutionService(cfg) as svc:
            resp = svc.submit(edge_request(planner="auto")).result(timeout=30)
        assert resp.ok
        assert resp.planner_used == "heuristic"

    def test_compile_on_full_size_device(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            resp = svc.submit(
                ServiceRequest(
                    template=find_edges_graph(64, 64, 8, 2),
                    device=TESLA_C870,
                    host=XEON_WORKSTATION,
                )
            ).result(timeout=30)
        assert resp.ok
        assert resp.value.plan.launches()


@pytest.mark.timeout(60)
class TestObservability:
    def test_metrics_snapshot_shape(self):
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            tickets = [svc.submit(edge_request()) for _ in range(3)]
            [t.result(timeout=30) for t in tickets]
            snap = svc.metrics_snapshot()
        counters, gauges = snap["counters"], snap["gauges"]
        histograms = snap["histograms"]
        assert counters["service.submitted"] == 3
        assert counters["service.completed"] == 3
        assert counters["service.ok"] == 3
        assert gauges["service.queue_depth"]["value"] == 0
        assert gauges["service.in_flight"]["value"] == 0
        assert histograms["service.wait_seconds"]["count"] == 3
        assert histograms["service.service_seconds"]["count"] == 3

    def test_traces_collected_per_request(self):
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            svc.submit(edge_request()).result(timeout=30)
            svc.submit(edge_request()).result(timeout=30)
            spans = svc.tracer.find("service.request")
        assert len(spans) == 2
        assert {sp.attrs["status"] for sp in spans} == {"ok"}

    def test_response_to_dict_is_json_ready(self):
        import json

        with ExecutionService(ServiceConfig(workers=1)) as svc:
            resp = svc.submit(edge_request()).result(timeout=30)
        payload = json.loads(json.dumps(resp.to_dict()))
        assert payload["status"] == "ok"
        assert payload["attempts"] == 1
