"""Tests for the benchmark-trajectory schema and regression gate."""

import json
import math

import pytest

from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    SCHEMA_VERSION,
    BenchRecorder,
    BenchResult,
    compare_dirs,
    compare_results,
    load_bench,
    render_comparisons,
    validate_bench_dict,
)


def result(name="t", **metrics):
    return BenchResult(name=name, metrics=metrics)


class TestSchema:
    def test_round_trip(self, tmp_path):
        rec = BenchRecorder(str(tmp_path))
        path = rec.record(
            "fig9", {"transfer_floats": 123, "wall_seconds": 0.5},
            config={"template": "edge"},
        )
        assert path.endswith("BENCH_fig9.json")
        loaded = load_bench(path)
        assert loaded.name == "fig9"
        assert loaded.metrics == {"transfer_floats": 123, "wall_seconds": 0.5}
        assert loaded.config == {"template": "edge"}
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.env["python"]

    def test_validate_accepts_recorder_output(self):
        validate_bench_dict(result(x=1.5).to_dict())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("name"),
            lambda d: d.update(name=""),
            lambda d: d.update(schema_version=99),
            lambda d: d.pop("metrics"),
            lambda d: d["metrics"].update(bad="nope"),
            lambda d: d["metrics"].update(bad=True),
            lambda d: d["metrics"].update(bad=math.nan),
            lambda d: d["metrics"].update(bad=math.inf),
            lambda d: d.update(config=[1, 2]),
        ],
    )
    def test_validate_rejects_malformed(self, mutate):
        raw = result(x=1.0).to_dict()
        mutate(raw)
        with pytest.raises(ValueError):
            validate_bench_dict(raw)

    def test_load_names_the_offending_file(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema_version": 2, "name": "x"}))
        with pytest.raises(ValueError, match="BENCH_bad.json"):
            load_bench(str(bad))


class TestComparator:
    def test_identical_results_ok(self):
        a = result(transfer_floats=1000, seconds=2.0)
        comp = compare_results(a, result(transfer_floats=1000, seconds=2.0))
        assert not comp.regressed
        assert all(d.verdict == "ok" for d in comp.deltas)

    def test_exactly_ten_percent_regresses(self):
        comp = compare_results(
            result(transfer_floats=1000), result(transfer_floats=1100)
        )
        assert comp.regressed
        assert comp.regressions[0].metric == "transfer_floats"
        assert comp.regressions[0].rel_change == pytest.approx(0.10)

    def test_just_under_threshold_passes(self):
        comp = compare_results(
            result(transfer_floats=1000), result(transfer_floats=1099)
        )
        assert not comp.regressed

    def test_improvement_reported_not_gated(self):
        comp = compare_results(result(seconds=2.0), result(seconds=1.0))
        assert not comp.regressed
        assert comp.deltas[0].verdict == "improvement"

    def test_wall_metrics_are_informational(self):
        comp = compare_results(
            result(wall_seconds=1.0), result(wall_seconds=100.0)
        )
        assert not comp.regressed
        assert comp.deltas[0].verdict == "info"

    def test_speedup_direction_inverted(self):
        worse = compare_results(result(speedup_max=2.0), result(speedup_max=1.5))
        assert worse.regressed
        better = compare_results(result(speedup_max=2.0), result(speedup_max=3.0))
        assert not better.regressed

    def test_zero_baseline(self):
        same = compare_results(result(oom_events=0), result(oom_events=0))
        assert not same.regressed
        grew = compare_results(result(oom_events=0), result(oom_events=3))
        assert grew.regressed
        assert math.isinf(grew.regressions[0].rel_change)

    def test_new_and_missing_metrics_never_gate(self):
        comp = compare_results(result(a=1.0), result(b=2.0))
        assert not comp.regressed
        verdicts = {d.metric: d.verdict for d in comp.deltas}
        assert verdicts == {"a": "missing", "b": "new"}

    def test_custom_threshold(self):
        comp = compare_results(
            result(seconds=100.0), result(seconds=104.0), threshold=0.03
        )
        assert comp.regressed


class TestCompareDirs:
    def _dirs(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        return BenchRecorder(str(base)), BenchRecorder(str(cand)), base, cand

    def test_pairs_by_filename(self, tmp_path):
        brec, crec, base, cand = self._dirs(tmp_path)
        brec.record("t1", {"x": 1.0})
        crec.record("t1", {"x": 1.0})
        brec.record("only_base", {"x": 1.0})
        crec.record("only_cand", {"x": 1.0})
        comps, base_only, cand_only = compare_dirs(str(base), str(cand))
        assert [c.name for c in comps] == ["t1"]
        assert base_only == ["BENCH_only_base.json"]
        assert cand_only == ["BENCH_only_cand.json"]
        assert not any(c.regressed for c in comps)

    def test_regression_detected_across_dirs(self, tmp_path):
        brec, crec, base, cand = self._dirs(tmp_path)
        brec.record("t1", {"transfer_floats": 1000})
        crec.record("t1", {"transfer_floats": 1100})
        comps, _, _ = compare_dirs(
            str(base), str(cand), threshold=DEFAULT_THRESHOLD
        )
        assert comps[0].regressed

    def test_render_mentions_verdicts(self, tmp_path):
        brec, crec, base, cand = self._dirs(tmp_path)
        brec.record("t1", {"transfer_floats": 1000, "wall_seconds": 1.0})
        crec.record("t1", {"transfer_floats": 1200, "wall_seconds": 9.0})
        comps, bo, co = compare_dirs(str(base), str(cand))
        text = render_comparisons(comps, bo, co)
        assert "REGRESSED" in text
        assert "info" in text
        assert "+20.00%" in text

    def test_render_empty(self):
        assert "no benchmark pairs" in render_comparisons([])
