"""Unit tests for the multi-GPU execution planning subsystem.

Covers the pieces end to end: device groups and the shared-bus model,
cost-balanced partitioning, the multi-device transfer scheduler in both
transfer modes, plan serialization with a device dimension, the
coordinated runtime, the analytic simulator, the scaling report, the
per-device Chrome-trace export, and the CLI surface.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import CompileOptions
from repro.core.plan import Free, Launch, PeerCopy, PlanError, validate_plan
from repro.core.scheduling import dfs_schedule, row_band
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.gpusim import (
    DeviceGroup,
    GpuDevice,
    SharedBus,
    homogeneous_group,
)
from repro.multigpu import (
    compile_multi,
    execute_multi,
    partition_graph,
    schedule_multi_transfers,
    simulate_multi,
)
from repro.obs.chrometrace import chrome_trace
from repro.runtime import reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

KB = 1024
DEV = GpuDevice(name="mg-dev", memory_bytes=256 * KB)


def _edge():
    g = find_edges_graph(48, 40, 5, 4)
    return g, find_edges_inputs(48, 40, 5, 4, seed=9)


class TestDeviceGroup:
    def test_basic_properties(self):
        group = homogeneous_group(DEV, 3)
        assert len(group) == 3
        assert group[1].name == DEV.name
        assert group.usable_memory_floats == [DEV.usable_memory_floats] * 3

    def test_requires_a_device(self):
        with pytest.raises(ValueError):
            DeviceGroup(devices=())

    def test_peer_time_scales_with_size(self):
        group = homogeneous_group(DEV, 2)
        assert group.peer_time(0) == 0.0
        small, big = group.peer_time(4 * KB), group.peer_time(4 * KB * KB)
        assert 0.0 < small < big

    def test_shared_bus_serializes(self):
        bus = SharedBus()
        b1, e1 = bus.acquire(0.0, 1.0)
        b2, e2 = bus.acquire(0.5, 1.0)  # ready before the bus frees
        assert (b1, e1) == (0.0, 1.0)
        assert b2 == pytest.approx(1.0)
        assert e2 == pytest.approx(2.0)
        assert bus.total_busy == pytest.approx(2.0)


class TestPartition:
    def test_single_device_fast_path(self):
        g, _ = _edge()
        order = dfs_schedule(g)
        part = partition_graph(g, order, homogeneous_group(DEV, 1))
        assert set(part.assignment.values()) == {0}
        assert part.imbalance == pytest.approx(1.0)

    def test_band_contiguity(self):
        """Parts of the same row band land on the same device."""
        g, _ = _edge()
        from repro.core.splitting import make_feasible

        make_feasible(g, g.total_data_size() // 4)
        order = dfs_schedule(g)
        group = homogeneous_group(DEV, 2)
        part = partition_graph(g, order, group)
        # Band-major order means each device owns a contiguous range of
        # band-start rows; the maximum band start on device 0 is at most
        # the minimum on device 1 (ties allowed at the boundary).
        starts = [[], []]
        for op in g.ops:
            band = row_band(g, op)
            if band is not None:
                starts[part.device_of(op)].append(band[0])
        if starts[0] and starts[1]:
            assert max(starts[0]) <= min(starts[1]) or (
                part.imbalance < 1.5
            )

    def test_rejects_wrong_order(self):
        g, _ = _edge()
        with pytest.raises(ValueError):
            partition_graph(g, ["nope"], homogeneous_group(DEV, 2))


class TestScheduler:
    def _parts(self, n):
        g, _ = _edge()
        order = dfs_schedule(g)
        group = homogeneous_group(DEV, n)
        return g, order, group, partition_graph(g, order, group)

    def test_peer_mode_emits_peer_copies(self):
        g, order, group, part = self._parts(2)
        plan = schedule_multi_transfers(g, order, group, part)
        assert plan.num_devices == 2
        assert len(plan.devices) == len(plan.steps)
        validate_plan(plan, g, group.usable_memory_floats)

    def test_staged_mode_never_peers(self):
        g, order, group, part = self._parts(2)
        plan = schedule_multi_transfers(
            g, order, group, part, transfer_mode="staged"
        )
        assert not any(isinstance(s, PeerCopy) for s in plan.steps)
        validate_plan(plan, g, group.usable_memory_floats)

    def test_peer_floats_accounting(self):
        g, order, group, part = self._parts(2)
        peer = schedule_multi_transfers(g, order, group, part)
        staged = schedule_multi_transfers(
            g, order, group, part, transfer_mode="staged"
        )
        if any(isinstance(s, PeerCopy) for s in peer.steps):
            assert peer.peer_floats(g) > 0
            # Staging routes the same bytes through the host instead.
            assert staged.transfer_floats(g) > peer.transfer_floats(g)

    def test_rejects_unknown_policy_and_mode(self):
        g, order, group, part = self._parts(2)
        from repro.multigpu import MultiTransferScheduler

        with pytest.raises(ValueError):
            MultiTransferScheduler(g, group, part, policy="magic")
        with pytest.raises(ValueError):
            MultiTransferScheduler(g, group, part, transfer_mode="wires")

    def test_capacity_overflow_raises(self):
        g, order, group, part = self._parts(2)
        from repro.multigpu import MultiTransferScheduler

        with pytest.raises(PlanError):
            MultiTransferScheduler(
                g, group, part, capacities=[64, 64]
            ).schedule(order)


class TestSerialization:
    def test_device_dimension_round_trips(self):
        g, _ = _edge()
        order = dfs_schedule(g)
        group = homogeneous_group(DEV, 2)
        part = partition_graph(g, order, group)
        plan = schedule_multi_transfers(g, order, group, part)
        raw = plan_to_dict(plan)
        back = plan_from_dict(raw)
        assert back.devices == plan.devices
        assert [type(s) for s in back.steps] == [type(s) for s in plan.steps]
        for a, b in zip(plan.steps, back.steps):
            if isinstance(a, PeerCopy):
                assert (a.data, a.src, a.dst) == (b.data, b.src, b.dst)

    def test_validate_rejects_length_mismatch(self):
        g, _ = _edge()
        order = dfs_schedule(g)
        group = homogeneous_group(DEV, 2)
        part = partition_graph(g, order, group)
        plan = schedule_multi_transfers(g, order, group, part)
        plan.devices.append(0)
        with pytest.raises(PlanError):
            validate_plan(plan, g, group.usable_memory_floats)


class TestExecution:
    @pytest.mark.parametrize("n", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["peer", "staged"])
    def test_outputs_match_reference(self, n, mode):
        g, inputs = _edge()
        ref = reference_execute(g.copy(), inputs)
        compiled = compile_multi(
            g.copy(), homogeneous_group(DEV, n), transfer_mode=mode
        )
        result = execute_multi(compiled, inputs)
        assert result.num_devices == n
        for name, arr in ref.items():
            assert np.array_equal(result.outputs[name], arr)

    def test_per_device_profiles_and_clocks(self):
        g, inputs = _edge()
        compiled = compile_multi(g.copy(), homogeneous_group(DEV, 2))
        result = execute_multi(compiled, inputs)
        assert len(result.profiles) == 2
        assert len(result.device_clocks) == 2
        assert result.elapsed == pytest.approx(max(result.device_clocks))
        assert result.transfer_floats == result.h2d_floats + result.d2h_floats

    def test_shared_bus_never_faster(self):
        g, inputs = _edge()
        free = compile_multi(g.copy(), homogeneous_group(DEV, 2))
        shared = compile_multi(
            g.copy(), homogeneous_group(DEV, 2, shared_bus=True)
        )
        t_free = execute_multi(free, inputs).elapsed
        t_shared = execute_multi(shared, inputs).elapsed
        assert t_shared >= t_free - 1e-12

    def test_simulate_respects_capacity(self):
        g, _ = _edge()
        compiled = compile_multi(g.copy(), homogeneous_group(DEV, 2))
        sim = simulate_multi(compiled)
        assert sim.total_time > 0
        assert len(sim.device_times) == 2
        assert sim.total_time == pytest.approx(max(sim.device_times))
        for peak in sim.peak_device_floats:
            assert peak <= DEV.usable_memory_floats


class TestScalingReport:
    def test_report_rows(self):
        from repro.analysis import render_scaling, scaling_report

        report = scaling_report(
            find_edges_graph(64, 64, 5, 4), DEV, device_counts=(1, 2)
        )
        assert [r.num_devices for r in report.rows] == [1, 2]
        assert report.rows[0].total_time > 0
        assert report.rows[0].speedup == pytest.approx(1.0)
        assert report.transfer_ratio() >= 0.0
        text = render_scaling(report)
        assert "gpus" in text and "speedup" in text


class TestChromeTrace:
    def test_per_device_tracks(self, tmp_path):
        g, inputs = _edge()
        compiled = compile_multi(g.copy(), homogeneous_group(DEV, 2))
        result = execute_multi(compiled, inputs)
        trace = chrome_trace(
            profiles=[(f"gpu{i}", p) for i, p in enumerate(result.profiles)]
        )
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert len(pids) == 2, "expected one track group per device"
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        assert json.loads(path.read_text())["traceEvents"]


class TestCli:
    def test_compile_multi(self, capsys):
        assert (
            main(
                [
                    "compile",
                    "--template", "edge",
                    "--size", "64x64",
                    "--num-devices", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "devices" in out

    def test_run_multi_verify(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--template", "edge",
                    "--size", "64x64",
                    "--num-devices", "2",
                    "--verify",
                ]
            )
            == 0
        )

    def test_run_multi_staged_bus(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--template", "edge",
                    "--size", "48x48",
                    "--num-devices", "3",
                    "--transfer-mode", "staged",
                    "--shared-bus",
                ]
            )
            == 0
        )
