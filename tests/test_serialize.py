"""Tests for plan/graph JSON serialization."""

import json
import os

import numpy as np
import pytest

from repro.core import (
    Framework,
    graph_from_dict,
    graph_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    validate_plan,
)
from repro.core.offload import identify_offload_units
from repro.gpusim import GpuDevice, SimRuntime
from repro.runtime import execute_plan, reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="ser-dev", memory_bytes=96 * 1024)


@pytest.fixture()
def compiled():
    g = find_edges_graph(48, 40, 5, 4)
    return Framework(DEV).compile(g)


class TestGraphRoundTrip:
    def test_unsplit(self):
        g = find_edges_graph(32, 24, 3, 2)
        h = graph_from_dict(graph_to_dict(g))
        assert set(h.ops) == set(g.ops)
        assert set(h.data) == set(g.data)
        assert h.io_size() == g.io_size()
        h.validate()

    def test_split_graph_with_slots(self, compiled):
        g = compiled.graph
        h = graph_from_dict(graph_to_dict(g))
        h.validate()
        assert {d for d, x in h.data.items() if x.virtual} == {
            d for d, x in g.data.items() if x.virtual
        }
        for name, op in g.ops.items():
            assert h.ops[name].kind == op.kind
            assert h.ops[name].inputs == op.inputs
            if "slots" in op.params:
                hs = h.ops[name].params["slots"]
                gs = op.params["slots"]
                assert [(s.root, s.rows, s.chunks) for s in hs] == [
                    (s.root, s.rows, s.chunks) for s in gs
                ]

    def test_fused_subgraph(self):
        g = find_edges_graph(16, 16, 3, 2)
        # Build a chain to fuse.
        from repro.core.graph import OperatorGraph

        chain = OperatorGraph("c")
        chain.add_data("x", (8, 8), is_input=True)
        chain.add_data("y", (8, 8))
        chain.add_data("z", (8, 8), is_output=True)
        chain.add_operator("a", "tanh", ["x"], ["y"])
        chain.add_operator("b", "remap", ["y"], ["z"])
        identify_offload_units(chain, 10**9)
        restored = graph_from_dict(graph_to_dict(chain))
        restored.validate()
        (op,) = restored.ops.values()
        assert op.kind == "fused"
        sub = op.params["subgraph"]
        assert set(sub.ops) == {"a", "b"}

    def test_json_clean(self, compiled):
        text = json.dumps(graph_to_dict(compiled.graph))
        assert isinstance(text, str)


class TestPlanRoundTrip:
    def test_steps_preserved(self, compiled):
        plan2 = plan_from_dict(plan_to_dict(compiled.plan))
        assert plan2.steps == compiled.plan.steps
        assert plan2.capacity_floats == compiled.plan.capacity_floats
        assert plan2.label == compiled.plan.label

    def test_file_round_trip_executes(self, compiled, tmp_path):
        path = os.fspath(tmp_path / "plan.json")
        save_plan(compiled, path)
        graph, plan = load_plan(path)
        validate_plan(plan, graph, compiled.plan.capacity_floats)
        inputs = find_edges_inputs(48, 40, 5, 4, seed=9)
        ref = reference_execute(find_edges_graph(48, 40, 5, 4), inputs)["Edg"]
        res = execute_plan(plan, graph, SimRuntime(DEV), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_transfer_accounting_preserved(self, compiled, tmp_path):
        path = os.fspath(tmp_path / "plan.json")
        save_plan(compiled, path)
        graph, plan = load_plan(path)
        assert plan.transfer_floats(graph) == compiled.transfer_floats()

    def test_version_check(self, compiled, tmp_path):
        path = os.fspath(tmp_path / "plan.json")
        save_plan(compiled, path)
        raw = json.load(open(path))
        raw["format_version"] = 99
        json.dump(raw, open(path, "w"))
        with pytest.raises(ValueError, match="format"):
            load_plan(path)


class TestSchemaVersioning:
    """plan dicts carry schema_version; readers accept same-major,
    reject other majors with an actionable message."""

    def plan_dict(self, compiled):
        return plan_to_dict(compiled.plan)

    def test_current_version_is_written(self, compiled):
        from repro.core import SCHEMA_VERSION

        raw = self.plan_dict(compiled)
        assert raw["schema_version"] == SCHEMA_VERSION
        assert next(iter(raw)) == "schema_version"

    def test_round_trip_accepts_current(self, compiled):
        plan = plan_from_dict(self.plan_dict(compiled))
        assert [type(s).__name__ for s in plan.steps] == [
            type(s).__name__ for s in compiled.plan.steps
        ]

    def test_prior_minor_accepted(self, compiled):
        raw = self.plan_dict(compiled)
        raw["schema_version"] = "1.0"
        plan_from_dict(raw)

    def test_future_minor_of_same_major_accepted(self, compiled):
        raw = self.plan_dict(compiled)
        raw["schema_version"] = "1.99"
        plan_from_dict(raw)

    def test_missing_version_read_as_1_0(self, compiled):
        raw = self.plan_dict(compiled)
        del raw["schema_version"]
        plan_from_dict(raw)

    def test_unknown_major_rejected_actionably(self, compiled):
        raw = self.plan_dict(compiled)
        raw["schema_version"] = "2.0"
        with pytest.raises(ValueError) as err:
            plan_from_dict(raw)
        message = str(err.value)
        assert "schema version 2.0" in message
        assert "re-compile" in message

    def test_malformed_version_rejected(self, compiled):
        raw = self.plan_dict(compiled)
        raw["schema_version"] = "latest"
        with pytest.raises(ValueError, match="malformed"):
            plan_from_dict(raw)

    def test_saved_file_carries_version(self, compiled, tmp_path):
        from repro.core import SCHEMA_VERSION

        path = str(tmp_path / "plan.json")
        save_plan(compiled, path)
        with open(path) as fh:
            assert json.load(fh)["plan"]["schema_version"] == SCHEMA_VERSION
        load_plan(path)
