"""Tests for the paper's parametrized template APIs."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro.gpusim import GpuDevice
from repro.runtime import reference_execute
from repro.templates import (
    SMALL_CNN,
    cnn_forward,
    cnn_graph,
    cnn_inputs,
    edge_filter,
    find_edges,
    rotated_kernel,
)

DEV = GpuDevice(name="api-dev", memory_bytes=128 * 1024)
rng = np.random.default_rng(42)


class TestFindEdges:
    def test_matches_direct_computation(self):
        image = rng.random((40, 32), dtype=np.float32)
        kernel = edge_filter(5)
        out = find_edges(image, kernel, num_orientations=2, device=DEV)
        e1 = correlate2d(image, kernel, mode="same")
        e2 = np.abs(e1)
        np.testing.assert_allclose(
            out, np.maximum(e1, e2), rtol=1e-4, atol=1e-5
        )

    def test_add_combine(self):
        image = rng.random((32, 32), dtype=np.float32)
        kernel = edge_filter(3)
        out = find_edges(image, kernel, 2, combine_op="add", device=DEV)
        e1 = correlate2d(image, kernel, mode="same")
        np.testing.assert_allclose(out, e1 + np.abs(e1), rtol=1e-4, atol=1e-5)

    def test_four_orientations_uses_rotations(self):
        image = rng.random((32, 32), dtype=np.float32)
        kernel = edge_filter(4)
        out = find_edges(image, kernel, 4, device=DEV)
        maps = [
            correlate2d(image, rotated_kernel(kernel, i), mode="same")
            for i in range(2)
        ]
        maps += [np.abs(m) for m in maps]
        np.testing.assert_allclose(
            out, np.maximum.reduce(maps), rtol=1e-4, atol=1e-5
        )

    def test_works_on_memory_starved_device(self):
        tiny = GpuDevice(name="tiny", memory_bytes=24 * 1024)
        image = rng.random((48, 40), dtype=np.float32)
        kernel = edge_filter(5)
        big = find_edges(image, kernel, 4, device=DEV)
        small = find_edges(image, kernel, 4, device=tiny)
        np.testing.assert_allclose(small, big, rtol=1e-5, atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            find_edges(np.zeros((4, 4, 3), np.float32), edge_filter(3))
        with pytest.raises(ValueError):
            find_edges(np.zeros((4, 4), np.float32), np.zeros((2, 3), np.float32))


class TestCNNForward:
    def test_matches_reference(self):
        h = w = 48
        weights = cnn_inputs(SMALL_CNN, h, w, seed=7)
        image = weights.pop("In0")
        out = cnn_forward(SMALL_CNN, image, weights, device=DEV)
        g = cnn_graph(SMALL_CNN, h, w)
        ref = reference_execute(g, {**weights, "In0": image})
        assert set(out) == set(ref)
        for k in ref:
            np.testing.assert_allclose(out[k], ref[k], rtol=1e-4, atol=1e-5)

    def test_missing_weights_rejected(self):
        with pytest.raises(ValueError, match="missing weights"):
            cnn_forward(
                SMALL_CNN, np.zeros((48, 48), np.float32), {}, device=DEV
            )

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            cnn_forward(SMALL_CNN, np.zeros((3, 48, 48), np.float32), {})
