"""Flight recorder (repro.obs.flight): crash-safe journal + post-mortems.

Three layers under test, bottom-up:

* **framing** — CRC-protected records survive a round trip, and every
  corruption mode a crash can produce (truncated header, truncated
  payload, flipped bits, garbage tail) degrades to a *warning*, never
  an exception, with every record before the damage recovered;
* **the recorder** — segment rotation at the byte bound, oldest-first
  eviction that never touches the active segment, restart continuing
  the numbering, and the EventLog sink tee preserving seq order;
* **post-mortem synthesis** — in-flight detection (admitted but never
  ``service.done``), window reconstruction from ``service.done``
  events, alert firing/resolved folding, exit-code phrasing, and the
  ``repro postmortem`` CLI reading all of it purely from disk.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.flight import (
    HEADER_SIZE,
    POSTMORTEM_BASENAME,
    FlightRecorder,
    build_postmortem,
    decode_records,
    describe_exit,
    encode_record,
    harvest_postmortem,
    journal_dir,
    list_segments,
    read_journal,
    segment_name,
)
from repro.obs.live import EventLog


def write_events(directory, events, **recorder_kwargs):
    """Publish ``events`` (kind, request_id, fields) through a real
    EventLog teed into a recorder, like a shard process would."""
    log = EventLog(capacity=1024, clock=lambda: 100.0)
    with FlightRecorder(directory, **recorder_kwargs) as rec:
        rec.attach(log)
        for kind, rid, fields in events:
            log.emit(kind, request_id=rid, **fields)
        return rec.stats()


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        payloads = [
            {"seq": i, "ts": 1.5 * i, "kind": "service.admit",
             "request_id": i, "fields": {"queue_depth": i}}
            for i in range(5)
        ]
        data = b"".join(encode_record(p) for p in payloads)
        records, warning = decode_records(data)
        assert warning is None
        assert records == payloads

    def test_empty_is_clean(self):
        assert decode_records(b"") == ([], None)

    def test_truncated_header_keeps_prefix(self):
        good = encode_record({"seq": 0})
        records, warning = decode_records(good + b"\x01\x02")
        assert records == [{"seq": 0}]
        assert "truncated header" in warning

    def test_truncated_payload_keeps_prefix(self):
        good = encode_record({"seq": 0})
        cut = encode_record({"seq": 1, "pad": "x" * 100})[:-10]
        records, warning = decode_records(good + cut)
        assert records == [{"seq": 0}]
        assert "truncated record" in warning

    def test_flipped_payload_bit_fails_crc(self):
        frame = bytearray(encode_record({"seq": 7, "kind": "tick"}))
        frame[-1] ^= 0xFF
        records, warning = decode_records(bytes(frame))
        assert records == []
        assert "CRC mismatch" in warning

    def test_garbage_reports_bad_magic(self):
        records, warning = decode_records(b"Z" * 64)
        assert records == []
        assert "bad magic" in warning

    def test_unknown_version_stops_decode(self):
        frame = bytearray(encode_record({"seq": 0}))
        frame[4] = 99  # version byte follows the 4-byte magic
        _, warning = decode_records(bytes(frame))
        assert "version 99" in warning

    def test_header_size_matches_ipc_discipline(self):
        # magic(4) + version(1) + flags(1) + crc32(4) + length(4)
        assert HEADER_SIZE == 14


# ---------------------------------------------------------------------------
# Recorder: rotation, eviction, restart
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_appends_readable_records(self, tmp_path):
        d = os.fspath(tmp_path)
        stats = write_events(d, [
            ("service.admit", 1, {"queue_depth": 1}),
            ("service.done", 1, {"status": "ok", "seconds": 0.25}),
        ])
        assert stats["appended"] == 2 and stats["errors"] == 0
        result = read_journal(d)
        assert result.ok
        assert [r["kind"] for r in result.records] == [
            "service.admit", "service.done",
        ]
        assert [r["seq"] for r in result.records] == [0, 1]
        assert result.records[1]["fields"]["seconds"] == 0.25

    def test_rotation_at_segment_bound(self, tmp_path):
        d = os.fspath(tmp_path)
        stats = write_events(
            d, [("tick", i, {}) for i in range(40)],
            segment_bytes=256, max_bytes=1 << 20,
        )
        segments = list_segments(d)
        assert len(segments) > 1
        assert stats["rotated"] == len(segments) - 1
        for path in segments:
            assert os.path.getsize(path) <= 256
        result = read_journal(d)
        assert result.ok and len(result.records) == 40
        # seq order is preserved across the segment boundary
        assert [r["seq"] for r in result.records] == list(range(40))

    def test_eviction_bounds_total_size_keeps_newest(self, tmp_path):
        d = os.fspath(tmp_path)
        stats = write_events(
            d, [("tick", i, {"pad": "x" * 40}) for i in range(60)],
            segment_bytes=256, max_bytes=1024,
        )
        assert stats["evicted"] > 0
        total = sum(os.path.getsize(p) for p in list_segments(d))
        assert total <= 1024 + 256  # bound + one active segment of slack
        records = read_journal(d).records
        assert records, "eviction must never empty the journal"
        # newest data wins: the final record always survives
        assert records[-1]["request_id"] == 59
        # and what survives is a contiguous tail
        rids = [r["request_id"] for r in records]
        assert rids == list(range(rids[0], 60))

    def test_restart_continues_segment_numbering(self, tmp_path):
        d = os.fspath(tmp_path)
        write_events(d, [("tick", 0, {})])
        write_events(d, [("tick", 1, {})])
        names = [os.path.basename(p) for p in list_segments(d)]
        assert names == [segment_name(0), segment_name(1)]
        # both lifetimes' records are recovered, in seq-then-ts order
        assert len(read_journal(d).records) == 2

    def test_corrupt_tail_is_warning_not_error(self, tmp_path):
        d = os.fspath(tmp_path)
        write_events(d, [("tick", i, {}) for i in range(3)])
        last = list_segments(d)[-1]
        with open(last, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef" * 8)
        result = read_journal(d)
        assert len(result.records) == 3
        assert not result.ok
        assert any("bad magic" in w for w in result.warnings)

    def test_missing_directory_is_warning(self, tmp_path):
        result = read_journal(os.fspath(tmp_path / "never-created"))
        assert result.records == []
        assert any("no journal directory" in w for w in result.warnings)

    def test_record_never_raises_after_close(self, tmp_path):
        log = EventLog(capacity=16)
        rec = FlightRecorder(os.fspath(tmp_path))
        rec.attach(log)
        rec.close()
        log.emit("tick")  # sink fires into a closed recorder: no error
        assert log.sink_errors == 0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="segment_bytes"):
            FlightRecorder(os.fspath(tmp_path), segment_bytes=4)
        with pytest.raises(ValueError, match="max_bytes"):
            FlightRecorder(
                os.fspath(tmp_path), segment_bytes=1024, max_bytes=512
            )

    def test_journal_dir_flattens_shard_labels(self):
        assert journal_dir("/flight", "proc/0") == "/flight/proc-0"
        assert journal_dir("/flight", "") == "/flight/shard"


# ---------------------------------------------------------------------------
# Post-mortem synthesis
# ---------------------------------------------------------------------------
def _rec(seq, ts, kind, rid=None, **fields):
    return {"seq": seq, "ts": ts, "kind": kind, "request_id": rid,
            "fields": fields}


class TestPostmortem:
    def test_describe_exit(self):
        assert describe_exit(None) == "exit status unknown"
        assert describe_exit(0) == "exit code 0"
        assert describe_exit(3) == "exit code 3"
        assert describe_exit(-9) == "killed by SIGKILL (-9)"
        assert describe_exit(-15) == "killed by SIGTERM (-15)"

    def test_in_flight_and_window(self):
        records = [
            _rec(0, 10.0, "service.admit", 1),
            _rec(1, 10.1, "service.done", 1, status="ok", seconds=0.1),
            _rec(2, 10.2, "service.admit", 2),
            _rec(3, 10.3, "compile.start", 2),
            _rec(4, 10.4, "service.admit", 3),
            _rec(5, 10.5, "service.done", 3, status="failed", seconds=0.2),
        ]
        pm = build_postmortem(records, shard="proc/0", exit_code=-9)
        assert pm["shard"] == "proc/0"
        assert pm["exit_detail"] == "killed by SIGKILL (-9)"
        assert not pm["clean_shutdown"]
        # request 2 reached compile.start but never service.done
        assert pm["in_flight"] == [
            {"request_id": 2, "last_kind": "compile.start"}
        ]
        assert pm["window"]["count"] == 2
        assert pm["window"]["ok"] == 1 and pm["window"]["failed"] == 1
        assert pm["window"]["p50"] == pytest.approx(0.1)
        assert pm["first_seq"] == 0 and pm["last_seq"] == 5

    def test_clean_shutdown_detected(self):
        records = [
            _rec(0, 1.0, "service.admit", 1),
            _rec(1, 1.1, "service.done", 1, status="ok", seconds=0.1),
            _rec(2, 1.2, "service.close"),
        ]
        pm = build_postmortem(records, exit_code=0)
        assert pm["clean_shutdown"]
        assert pm["in_flight"] == []

    def test_alerts_fold_firing_minus_resolved(self):
        records = [
            _rec(0, 1.0, "alert.firing", None, rule="a", rule_kind="threshold"),
            _rec(1, 1.1, "alert.firing", None, rule="b",
                 rule_kind="budget_burn"),
            _rec(2, 1.2, "alert.resolved", None, rule="a",
                 rule_kind="threshold"),
        ]
        pm = build_postmortem(records)
        assert [a["rule"] for a in pm["alerts_active"]] == ["b"]

    def test_timeline_windowed_and_limited(self):
        records = [_rec(i, float(i), "tick", i) for i in range(100)]
        pm = build_postmortem(records, window_seconds=30.0, timeline_limit=10)
        assert len(pm["timeline"]) == 10
        assert pm["timeline"][-1]["seq"] == 99  # newest always kept
        assert all(r["ts"] >= 99.0 - 30.0 for r in pm["timeline"])

    def test_empty_journal(self):
        pm = build_postmortem([], exit_code=1)
        assert pm["records"] == 0
        assert pm["in_flight"] == [] and pm["window"]["count"] == 0

    def test_harvest_writes_artifact(self, tmp_path):
        d = os.fspath(tmp_path)
        write_events(d, [
            ("service.admit", 1, {}),
            ("compile.start", 1, {}),
        ])
        pm = harvest_postmortem(d, shard="proc/0", exit_code=-9)
        assert pm["in_flight"] == [
            {"request_id": 1, "last_kind": "compile.start"}
        ]
        artifact = os.path.join(d, POSTMORTEM_BASENAME)
        with open(artifact, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk["exit_detail"] == "killed by SIGKILL (-9)"
        assert on_disk["segments"] == [segment_name(0)]


# ---------------------------------------------------------------------------
# repro postmortem CLI, purely from disk
# ---------------------------------------------------------------------------
class TestPostmortemCli:
    def journal(self, tmp_path):
        d = os.fspath(tmp_path / "proc-0")
        write_events(d, [
            ("service.admit", 1, {"label": "r0"}),
            ("service.start", 1, {}),
            ("service.admit", 2, {"label": "r1"}),
        ])
        return d

    def test_json_output(self, tmp_path, capsys):
        d = self.journal(tmp_path)
        assert main(["postmortem", d, "--json", "--exit-code", "-9"]) == 0
        pm = json.loads(capsys.readouterr().out)
        assert pm["exit_detail"] == "killed by SIGKILL (-9)"
        assert [e["request_id"] for e in pm["in_flight"]] == [1, 2]
        assert [r["kind"] for r in pm["timeline"]] == [
            "service.admit", "service.start", "service.admit",
        ]

    def test_text_output(self, tmp_path, capsys):
        assert main(["postmortem", self.journal(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "post-mortem" in out
        assert "in flight at death: 1, 2" in out
        assert "service.start" in out

    def test_markdown_output(self, tmp_path, capsys):
        d = self.journal(tmp_path)
        assert main(["postmortem", d, "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "# Post-mortem" in out
        assert "service.admit" in out
        assert "| field | value |" in out

    def test_fleet_root_covers_every_shard(self, tmp_path, capsys):
        for shard in ("proc-0", "proc-1"):
            write_events(os.fspath(tmp_path / shard), [("tick", 0, {})])
        assert main(["postmortem", os.fspath(tmp_path), "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert isinstance(reports, list) and len(reports) == 2
        assert {pm["shard"] for pm in reports} == {"proc-0", "proc-1"}

    def test_corrupt_tail_warns_but_exits_zero(self, tmp_path, capsys):
        d = self.journal(tmp_path)
        with open(list_segments(d)[-1], "ab") as fh:
            fh.write(b"torn-page-garbage")
        assert main(["postmortem", d, "--json"]) == 0
        captured = capsys.readouterr()
        assert "bad magic" in captured.err
        pm = json.loads(captured.out)
        assert pm["records"] == 3  # everything before the damage recovered
        assert pm["warnings"]

    def test_missing_journal_is_usage_error(self, tmp_path, capsys):
        rc = main(["postmortem", os.fspath(tmp_path / "nope")])
        assert rc == 2

    def test_prefers_harvested_exit_code(self, tmp_path, capsys):
        d = self.journal(tmp_path)
        harvest_postmortem(d, shard="proc/0", exit_code=-15)
        assert main(["postmortem", d, "--json"]) == 0
        pm = json.loads(capsys.readouterr().out)
        assert pm["exit_detail"] == "killed by SIGTERM (-15)"
        assert pm["shard"] == "proc/0"
