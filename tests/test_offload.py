"""Tests for offload-unit identification (chain fusion)."""

import numpy as np

from repro.core import (
    Framework,
    CompileOptions,
    OperatorGraph,
    dfs_schedule,
    identify_offload_units,
    schedule_transfers,
    validate_plan,
)
from repro.gpusim import GpuDevice
from repro.runtime import reference_execute


def chain_graph(n=4, size=(8, 8)):
    g = OperatorGraph("chain")
    g.add_data("d0", size, is_input=True)
    for i in range(n):
        g.add_data(f"d{i + 1}", size, is_output=(i == n - 1))
        g.add_operator(f"o{i}", "tanh", [f"d{i}"], [f"d{i + 1}"])
    return g


def branchy_graph():
    g = OperatorGraph("branchy")
    g.add_data("in", (8, 8), is_input=True)
    g.add_data("mid", (8, 8))
    g.add_data("a", (8, 8), is_output=True)
    g.add_data("b", (8, 8), is_output=True)
    g.add_operator("pre", "tanh", ["in"], ["mid"])
    g.add_operator("left", "remap", ["mid"], ["a"])
    g.add_operator("right", "scale", ["mid"], ["b"], factor=2.0)
    return g


class TestFusion:
    def test_whole_chain_fuses(self):
        g = chain_graph(4)
        n = identify_offload_units(g, 10**9)
        assert n == 3
        assert len(g.ops) == 1
        (op,) = g.ops.values()
        assert op.kind == "fused"
        g.validate()

    def test_fused_numerics(self):
        g = chain_graph(4)
        x = np.random.default_rng(0).standard_normal((8, 8)).astype(np.float32)
        ref = reference_execute(chain_graph(4), {"d0": x})["d4"]
        identify_offload_units(g, 10**9)
        out = reference_execute(g, {"d0": x})["d4"]
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)

    def test_memory_cap_limits_fusion(self):
        g = chain_graph(4)
        # Footprint of a fused pair = 3 arrays of 64; cap below blocks all.
        n = identify_offload_units(g, 64 * 3 - 1)
        assert n == 0
        assert len(g.ops) == 4

    def test_multi_consumer_not_fused(self):
        g = branchy_graph()
        n = identify_offload_units(g, 10**9)
        # 'pre' feeds two consumers: cannot fuse into either.
        assert "pre" in " ".join(g.ops)
        assert all(op.kind != "fused" or "pre" not in op.name for op in g.ops.values()) or n == 0

    def test_template_output_not_internalised(self):
        g = chain_graph(2)
        g.data["d1"].is_output = True  # intermediate is also an output
        n = identify_offload_units(g, 10**9)
        assert n == 0

    def test_split_ops_not_fused(self):
        from repro.core import make_feasible

        g = chain_graph(3, size=(16, 8))
        make_feasible(g, 16 * 8 * 2)  # forces splitting
        before = len(g.ops)
        identify_offload_units(g, 16 * 8 * 2)
        assert len(g.ops) == before  # split parts carry slots: untouched

    def test_fused_plan_schedules_and_validates(self):
        g = chain_graph(5)
        identify_offload_units(g, 10**9)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        validate_plan(plan, g)
        # One offload unit -> IO-only transfers and a single launch.
        assert len(plan.launches()) == 1
        assert plan.transfer_floats(g) == 128

    def test_framework_option(self):
        g = chain_graph(4)
        x = np.random.default_rng(1).standard_normal((8, 8)).astype(np.float32)
        ref = reference_execute(chain_graph(4), {"d0": x})["d4"]
        fw = Framework(
            GpuDevice(name="t", memory_bytes=1 << 20),
            options=CompileOptions(fuse_offload_units=True),
        )
        compiled = fw.compile(g)
        assert compiled.fused_units > 0
        res = fw.execute(compiled, {"d0": x})
        np.testing.assert_allclose(res.outputs["d4"], ref, rtol=1e-5, atol=1e-6)

    def test_fusion_reduces_launches_and_transfers(self):
        g1 = chain_graph(6)
        g2 = chain_graph(6)
        identify_offload_units(g2, 10**9)
        cap = 10**9
        p1 = schedule_transfers(g1, dfs_schedule(g1), cap)
        p2 = schedule_transfers(g2, dfs_schedule(g2), cap)
        assert len(p2.launches()) < len(p1.launches())
        assert p2.transfer_floats(g2) <= p1.transfer_floats(g1)
