"""Content-addressed plan cache (repro.core.plancache).

Covers the cache contract end to end: keys are stable across processes
and sensitive to every compile input; warm compiles return byte-identical
plans with hit counters set; the disk tier survives restarts and recovers
from corruption; caching off produces the same plans as caching on.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core import (
    CachedPlan,
    CompileOptions,
    Framework,
    PlanCache,
    plan_key,
    plan_to_dict,
)
from repro.gpusim import GpuDevice, homogeneous_group
from repro.multigpu import compile_multi
from repro.templates import find_edges_graph

KB = 1024
DEVICE = GpuDevice(name="pc-dev", memory_bytes=256 * KB)
OPTIONS = CompileOptions(split_headroom=1.0)


def small_graph():
    return find_edges_graph(200, 200, 5, 4)


def split_graph():
    # Out-of-core on the 256 KB device: exercises splitting + eviction.
    return find_edges_graph(512, 512, 5, 4)


def plan_bytes(compiled) -> str:
    return json.dumps(plan_to_dict(compiled.plan), sort_keys=True)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
class TestPlanKey:
    def test_deterministic_within_process(self):
        k1 = plan_key(small_graph(), DEVICE, OPTIONS)
        k2 = plan_key(small_graph(), DEVICE, OPTIONS)
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_stable_across_process_restarts(self):
        # A fresh interpreter (fresh PYTHONHASHSEED) must derive the
        # same key: content addressing cannot depend on hash order.
        code = (
            "from repro.core import plan_key, CompileOptions\n"
            "from repro.gpusim import GpuDevice\n"
            "from repro.templates import find_edges_graph\n"
            "print(plan_key(find_edges_graph(200, 200, 5, 4),\n"
            "      GpuDevice(name='pc-dev', memory_bytes=262144),\n"
            "      CompileOptions(split_headroom=1.0)))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == plan_key(small_graph(), DEVICE, OPTIONS)

    def test_changes_with_graph(self):
        assert plan_key(small_graph(), DEVICE, OPTIONS) != plan_key(
            find_edges_graph(201, 200, 5, 4), DEVICE, OPTIONS
        )

    def test_changes_with_options(self):
        for other in (
            CompileOptions(split_headroom=2.0),
            CompileOptions(split_headroom=1.0, scheduler="bfs"),
            CompileOptions(split_headroom=1.0, eviction_policy="lru"),
            CompileOptions(split_headroom=1.0, eager_free=False),
        ):
            assert plan_key(small_graph(), DEVICE, OPTIONS) != plan_key(
                small_graph(), DEVICE, other
            )

    def test_changes_with_device(self):
        other = GpuDevice(name="pc-dev", memory_bytes=512 * KB)
        assert plan_key(small_graph(), DEVICE, OPTIONS) != plan_key(
            small_graph(), other, OPTIONS
        )

    def test_changes_with_kind_and_extra(self):
        g = small_graph()
        base = plan_key(g, DEVICE, OPTIONS)
        assert base != plan_key(g, DEVICE, OPTIONS, kind="multi")
        assert plan_key(
            g, DEVICE, OPTIONS, extra={"transfer_mode": "peer"}
        ) != plan_key(g, DEVICE, OPTIONS, extra={"transfer_mode": "staged"})


# ---------------------------------------------------------------------------
# Framework integration
# ---------------------------------------------------------------------------
class TestFrameworkCaching:
    def test_warm_compile_is_identical_and_counted(self):
        cache = PlanCache()
        fw = Framework(DEVICE, options=OPTIONS, plan_cache=cache)
        g = split_graph()
        cold = fw.compile(g)
        warm = fw.compile(g)
        assert plan_bytes(cold) == plan_bytes(warm)
        assert warm.op_order == cold.op_order
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cold.metrics["counters"]["plan_cache.miss"] == 1
        assert cold.metrics["counters"]["plan_cache.hit"] == 0
        assert warm.metrics["counters"]["plan_cache.hit"] == 1
        assert warm.metrics["counters"]["plan_cache.miss"] == 0
        # Plan gauges survive the hit path (snapshot reuse).
        assert (
            warm.metrics["gauges"]["plan.transfer_floats"]
            == cold.metrics["gauges"]["plan.transfer_floats"]
        )

    def test_cache_off_produces_identical_plans(self):
        g = split_graph()
        on = Framework(DEVICE, options=OPTIONS, plan_cache=PlanCache())
        off = Framework(DEVICE, options=OPTIONS, plan_cache=False)
        assert plan_bytes(on.compile(g)) == plan_bytes(off.compile(g))
        assert off.plan_cache is None
        assert "plan_cache.hit" not in off.compile(g).metrics["counters"]

    def test_option_change_misses(self):
        cache = PlanCache()
        g = split_graph()
        Framework(DEVICE, options=OPTIONS, plan_cache=cache).compile(g)
        Framework(
            DEVICE,
            options=CompileOptions(split_headroom=1.0, eviction_policy="lru"),
            plan_cache=cache,
        ).compile(g)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_device_change_misses(self):
        cache = PlanCache()
        g = split_graph()
        Framework(DEVICE, options=OPTIONS, plan_cache=cache).compile(g)
        Framework(
            GpuDevice(name="pc-dev", memory_bytes=512 * KB),
            options=OPTIONS,
            plan_cache=cache,
        ).compile(g)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_multi_gpu_hit_restores_partition(self):
        cache = PlanCache()
        g = find_edges_graph(256, 256, 5, 4)
        grp = homogeneous_group(DEVICE, 2)
        cold = compile_multi(g, grp, options=OPTIONS, plan_cache=cache)
        warm = compile_multi(g, grp, options=OPTIONS, plan_cache=cache)
        assert plan_bytes(cold) == plan_bytes(warm)
        assert warm.partition.assignment == cold.partition.assignment
        assert warm.partition.device_costs == cold.partition.device_costs
        assert cache.stats()["hits"] == 1
        # A different transfer mode is a different compilation.
        compile_multi(
            g, grp, options=OPTIONS, plan_cache=cache, transfer_mode="staged"
        )
        assert cache.stats()["misses"] == 2


# ---------------------------------------------------------------------------
# LRU + disk tier
# ---------------------------------------------------------------------------
class TestCacheTiers:
    def test_lru_evicts_oldest(self):
        cache = PlanCache(max_entries=2)
        fw = Framework(DEVICE, options=OPTIONS, plan_cache=cache)
        graphs = [find_edges_graph(n, n, 5, 4) for n in (96, 128, 160)]
        for g in graphs:
            fw.compile(g)
        assert len(cache) == 2
        fw.compile(graphs[0])  # evicted -> miss again
        assert cache.stats()["misses"] == 4

    def test_disk_tier_survives_new_cache_instance(self, tmp_path):
        g = split_graph()
        d = str(tmp_path / "plans")
        c1 = PlanCache(disk_dir=d)
        cold = Framework(DEVICE, options=OPTIONS, plan_cache=c1).compile(g)
        assert c1.stats()["disk_writes"] == 1
        c2 = PlanCache(disk_dir=d)  # fresh process simulation
        warm = Framework(DEVICE, options=OPTIONS, plan_cache=c2).compile(g)
        assert c2.stats()["disk_hits"] == 1
        assert plan_bytes(cold) == plan_bytes(warm)
        assert warm.split_report.split_ops == cold.split_report.split_ops

    def test_corrupt_disk_entry_recovers(self, tmp_path):
        g = split_graph()
        d = str(tmp_path / "plans")
        c1 = PlanCache(disk_dir=d)
        cold = Framework(DEVICE, options=OPTIONS, plan_cache=c1).compile(g)
        (path,) = [
            os.path.join(d, f) for f in os.listdir(d) if f.endswith(".json")
        ]
        with open(path, "w") as fh:
            fh.write("{ not json")
        c2 = PlanCache(disk_dir=d)
        warm = Framework(DEVICE, options=OPTIONS, plan_cache=c2).compile(g)
        assert plan_bytes(cold) == plan_bytes(warm)
        assert c2.stats()["corrupt_entries"] == 1
        assert c2.stats()["misses"] == 1
        # The broken file is gone and the recompile re-wrote a good one.
        with open(path) as fh:
            CachedPlan.from_dict(json.load(fh))

    def test_stale_version_treated_as_corrupt(self, tmp_path):
        g = small_graph()
        d = str(tmp_path / "plans")
        c1 = PlanCache(disk_dir=d)
        Framework(DEVICE, options=OPTIONS, plan_cache=c1).compile(g)
        (path,) = [
            os.path.join(d, f) for f in os.listdir(d) if f.endswith(".json")
        ]
        raw = json.load(open(path))
        raw["version"] = 999
        json.dump(raw, open(path, "w"))
        c2 = PlanCache(disk_dir=d)
        Framework(DEVICE, options=OPTIONS, plan_cache=c2).compile(g)
        assert c2.stats()["corrupt_entries"] == 1

    def test_round_trip_serialization(self):
        cache = PlanCache()
        fw = Framework(DEVICE, options=OPTIONS, plan_cache=cache)
        fw.compile(split_graph())
        (entry,) = cache._mem.values()
        restored = CachedPlan.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        )
        assert plan_to_dict(restored.plan) == plan_to_dict(entry.plan)
        assert restored.op_order == entry.op_order
        assert restored.split_report == entry.split_report

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)
