"""Sharded multi-process serving tier (repro.service.shard) + batching.

The acceptance spine of the sharded tier: plan-key routing lands
identical templates on one shard (16 submissions over 4 templates =
exactly 4 compiles fleet-wide), results are byte-identical to the
single-process tier (the differential harness gains a shard
dimension), telemetry aggregates across every shard's event stream,
and batching records per-request provenance (``batched_with`` /
``deduped_from``) with fleet-global ids.
"""

import json
import os
import time

import pytest

from .differential import (
    EXECUTORS,
    differential_check,
    make_service_runner,
    random_inputs,
    random_operator_graph,
)
from repro.cli import main
from repro.core.framework import CompileOptions
from repro.gpusim import XEON_WORKSTATION, GpuDevice
from repro.obs.flight import (
    POSTMORTEM_BASENAME,
    harvest_postmortem,
    journal_dir,
    list_segments,
)
from repro.obs.live import merge_slo_snapshots, merge_window_samples
from repro.service import (
    ExecutionService,
    RequestStatus,
    ServiceConfig,
    ServiceRequest,
    ShardDiedError,
    ShardedExecutionService,
)
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="shard-dev", memory_bytes=8 * 1024 * 1024)


def edge_request(size=64, kernel=8, **kwargs):
    kwargs.setdefault("label", f"edge{size}")
    return ServiceRequest(
        template=find_edges_graph(size, size, kernel, 2),
        device=DEV,
        host=XEON_WORKSTATION,
        **kwargs,
    )


def fleet(shards=3, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("max_queue_depth", 256)
    return ShardedExecutionService(
        ServiceConfig(**config_kwargs), shards=shards
    )


class TestRoutingAndDedupe:
    def test_16_requests_4_templates_4_compiles(self):
        """The headline invariant: identical templates route to one
        shard, so the fleet compiles each template exactly once."""
        with fleet(shards=3) as svc:
            tickets = [
                svc.submit(edge_request(size=32 + 8 * (i % 4)))
                for i in range(16)
            ]
            responses = [t.result(timeout=120) for t in tickets]
            snap = svc.live_snapshot()
        assert all(r.ok for r in responses)
        assert snap["counters"]["service.compiles"] == 4
        assert snap["counters"]["service.dedupe_hits"] == 12
        assert snap["plan_cache"]["misses"] == 4

    def test_identical_requests_share_one_shard(self):
        with fleet(shards=4) as svc:
            owners = {svc.route(edge_request(size=48)) for _ in range(8)}
            assert len(owners) == 1

    def test_global_ids_are_unique_and_provenance_is_global(self):
        """deduped_from must reference the *fleet-global* leader id, not
        the winning shard's local counter.  A plug request holds the
        single worker while identical requests pile up, so the join is
        deterministic (they coalesce into one batch behind the plug)."""
        with fleet(shards=1, workers=1, batch_window=0.05) as svc:
            svc.submit(edge_request(size=96, label="plug"))
            tickets = [svc.submit(edge_request(size=40)) for _ in range(4)]
            ids = [t.id for t in tickets]
            assert len(set(ids)) == len(ids)
            responses = [t.result(timeout=120) for t in tickets]
        deduped = [r for r in responses if r.deduped_from is not None]
        assert deduped, "expected at least one dedupe join in the batch"
        for r in deduped:
            assert r.deduped_from in ids, (
                f"deduped_from={r.deduped_from} is not a fleet-global id "
                f"({ids})"
            )
            assert r.deduped_from != r.request_id

    def test_single_shard_fleet_works(self):
        with fleet(shards=1) as svc:
            assert svc.submit(edge_request()).result(timeout=120).ok

    def test_submit_after_close_raises(self):
        svc = fleet(shards=1)
        svc.close()
        from repro.service import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            svc.submit(edge_request())


class TestByteIdentity:
    """The shard dimension of the differential matrix: any executor
    disagreement with the reference interpreter is a routing/IPC bug."""

    def test_edge_template_identical_across_tiers(self):
        graph = find_edges_graph(48, 48, 8, 2)
        inputs = find_edges_inputs(48, 48, seed=7)
        differential_check(
            graph, inputs, DEV, CompileOptions(),
            executors={
                "static": EXECUTORS["static"],
                "service": make_service_runner(shards=0),
                "service-sharded": make_service_runner(shards=2),
            },
        )

    def test_random_graph_identical_with_batching(self):
        graph = random_operator_graph(1234)
        inputs = random_inputs(graph, 1234)
        differential_check(
            graph, inputs, DEV, CompileOptions(),
            executors={
                "service-sharded-batched": make_service_runner(
                    shards=2, batch_window=0.02
                ),
            },
        )


class TestAggregatedTelemetry:
    def test_snapshot_lists_every_shard(self):
        with fleet(shards=3) as svc:
            for i in range(6):
                svc.submit(edge_request(size=32 + 8 * i)).result(timeout=120)
            snap = svc.live_snapshot()
        labels = [s["shard"] for s in snap["shards"]]
        assert sorted(labels) == ["proc/0", "proc/1", "proc/2"]
        assert snap["shard_count"] == 3
        assert snap["live_shards"] == 3
        # The fleet window covers every completed request even though no
        # single shard saw them all.
        assert snap["window"]["count"] == 6
        per_shard = sum(s["window"]["count"] for s in snap["shards"])
        assert per_shard == 6
        assert snap["counters"]["service.ok"] == 6
        for obj in snap["slo"]["objectives"]:
            assert obj["total"] == 6

    def test_fleet_percentiles_merge_raw_samples(self):
        """p99 must come from the union of samples, not shard averages:
        one slow shard dominates the fleet tail."""
        fast = [(0.0, 0.010)] * 99
        slow = [(0.0, 1.0)] * 99
        merged = merge_window_samples([fast, slow], 60.0)
        assert merged["count"] == 198
        assert merged["p99"] == 1.0  # the tail survives the merge
        assert merged["p50"] == 0.010
        # Averaging per-shard p99s would have reported ~0.5 for p50.

    def test_slo_merge_sums_budgets(self):
        a = {"window_seconds": 60.0, "objectives": [{
            "name": "availability", "target": 0.9,
            "latency_threshold": None, "total": 100, "good": 100, "bad": 0,
        }]}
        b = {"window_seconds": 60.0, "objectives": [{
            "name": "availability", "target": 0.9,
            "latency_threshold": None, "total": 100, "good": 70, "bad": 30,
        }]}
        merged = merge_slo_snapshots([a, b])
        obj = merged["objectives"][0]
        assert obj["total"] == 200 and obj["bad"] == 30
        assert obj["compliance"] == pytest.approx(170 / 200)
        assert obj["breached"]  # 30 bad > (1-0.9)*200 = 20 budget

    def test_request_timeline_reaches_the_owning_shard(self):
        with fleet(shards=2) as svc:
            ticket = svc.submit(edge_request())
            assert ticket.result(timeout=120).ok
            timeline = svc.request_timeline(ticket.id)
        kinds = [e.kind for e in timeline]
        assert "service.admit" in kinds
        assert "service.done" in kinds

    def test_prom_text_exposes_fleet_series(self):
        with fleet(shards=2) as svc:
            svc.submit(edge_request()).result(timeout=120)
            text = svc.prom_text()
        assert "repro_service_submitted_total 1" in text
        assert "repro_service_latency_seconds_count 1" in text
        assert "repro_service_shards_live 2" in text

    def test_status_endpoint_serves_aggregate(self):
        import json as _json
        import urllib.request

        with fleet(shards=2) as svc:
            svc.submit(edge_request()).result(timeout=120)
            server = svc.serve_status(port=0)
            with urllib.request.urlopen(
                f"{server.url}/slo", timeout=10
            ) as resp:
                snap = _json.load(resp)
        assert snap["shard_count"] == 2
        assert len(snap["shards"]) == 2


class TestShardFailure:
    def test_dead_shard_fails_fast_and_fleet_survives(self):
        with fleet(shards=2) as svc:
            # Find two templates owned by different shards.
            by_owner = {}
            for size in range(32, 257, 8):
                by_owner.setdefault(svc.route(edge_request(size=size)), size)
                if len(by_owner) == 2:
                    break
            assert len(by_owner) == 2, "2-shard ring left one shard idle"
            (dead_name, dead_size), (live_name, live_size) = by_owner.items()
            svc._shards[dead_name].process.terminate()
            deadline = time.monotonic() + 30
            while svc._shards[dead_name].alive:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ShardDiedError):
                svc.submit(edge_request(size=dead_size))
            assert svc.submit(
                edge_request(size=live_size)
            ).result(timeout=120).ok
            snap = svc.live_snapshot()
            assert snap["live_shards"] == 1
            assert snap["shard_count"] == 2
            live_rows = [s for s in snap["shards"] if s.get("alive", True)]
            dead_rows = [s for s in snap["shards"] if not s.get("alive", True)]
            assert [s["shard"] for s in live_rows] == [live_name]
            assert [s["shard"] for s in dead_rows] == [dead_name]
            assert "SIGTERM" in dead_rows[0]["exit_detail"]

    def test_inflight_requests_fail_with_explicit_error(self):
        with fleet(shards=1, workers=1) as svc:
            # Queue slow work, then kill the only shard mid-flight.
            tickets = [
                svc.submit(edge_request(size=128 + 32 * i, mode="simulate"))
                for i in range(3)
            ]
            svc._shards["proc/0"].process.kill()
            responses = [t.result(timeout=60) for t in tickets]
        failed = [r for r in responses if not r.ok]
        assert failed, "killing the shard should fail queued requests"
        for r in failed:
            assert r.status is RequestStatus.FAILED
            assert "died" in (r.error or "")
            assert "SIGKILL" in (r.error or "")


@pytest.mark.timeout(180)
class TestFlightRecorderPostmortem:
    """The PR's acceptance spine: SIGKILL a shard mid-request, then
    reconstruct its final moments *purely from the on-disk journal* —
    the shard process is dead and the supervisor may be too."""

    def killed_fleet(self, flight_dir):
        """One shard, one worker, flight recorder on; three big
        simulate requests submitted and the shard killed immediately,
        so every request is genuinely mid-flight when it dies."""
        cfg = ServiceConfig(workers=1, flight_dir=flight_dir)
        svc = ShardedExecutionService(cfg, shards=1)
        big = find_edges_graph(2048, 2048, 16, 4)
        tickets = [
            svc.submit(ServiceRequest(
                template=big, device=DEV, host=XEON_WORKSTATION,
                mode="simulate", label=f"r{i}",
            ))
            for i in range(3)
        ]
        svc._shards["proc/0"].process.kill()
        responses = [t.result(timeout=60) for t in tickets]
        return svc, tickets, responses

    def test_kill_harvest_and_reconstruct_from_disk(self, flight_dir, capsys):
        svc, tickets, responses = self.killed_fleet(flight_dir)
        try:
            # 1. every in-flight request failed with the exit detail
            for r in responses:
                assert not r.ok
                assert "SIGKILL" in (r.error or ""), r.error
            # 2. the supervisor harvested a post-mortem
            pm = svc.postmortem("proc/0")
            assert pm is not None
            assert pm["exit_code"] == -9
            assert pm["exit_detail"] == "killed by SIGKILL (-9)"
            assert not pm["clean_shutdown"]
            in_flight_ids = {e["request_id"] for e in pm["in_flight"]}
            assert in_flight_ids == {t.id for t in tickets}
            assert sorted(pm["orphaned_global_ids"]) == sorted(
                t.id for t in tickets
            )
            # 3. the artifact is on disk next to the segments
            jdir = journal_dir(flight_dir, "proc/0")
            assert os.path.exists(
                os.path.join(jdir, POSTMORTEM_BASENAME)
            )
            # 4. the dead shard surfaces in the fleet snapshot
            snap = svc.live_snapshot()
            dead = [s for s in snap["shards"] if not s.get("alive", True)]
            assert len(dead) == 1
            assert dead[0]["exit_code"] == -9
            assert dead[0]["in_flight_at_death"] == 3
            assert dead[0]["postmortem"] == jdir
        finally:
            svc.close()

        # 5. with every process gone, `repro postmortem` rebuilds the
        # timeline from nothing but the journal files
        assert main(["postmortem", jdir, "--json"]) == 0
        pm = json.loads(capsys.readouterr().out)
        assert pm["exit_detail"] == "killed by SIGKILL (-9)"
        timeline_ids = {
            r["request_id"] for r in pm["timeline"]
            if r.get("request_id") is not None
        }
        # the correlated ids in the reconstructed timeline are the
        # fleet-global ticket ids, intact across kill + harvest + CLI
        assert {t.id for t in tickets} <= timeline_ids
        kinds = [r["kind"] for r in pm["timeline"]]
        assert kinds[0] == "worker.start"
        assert "service.admit" in kinds
        assert {e["request_id"] for e in pm["in_flight"]} == {
            t.id for t in tickets
        }

    def test_corrupt_tail_segment_skipped_with_warning(
        self, flight_dir, capsys
    ):
        svc, tickets, _ = self.killed_fleet(flight_dir)
        svc.close()
        jdir = journal_dir(flight_dir, "proc/0")
        # simulate a torn page at the tail of the newest segment
        with open(list_segments(jdir)[-1], "ab") as fh:
            fh.write(b"\x00\xff" * 32)
        assert main(["postmortem", jdir, "--json"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        pm = json.loads(captured.out)
        assert pm["warnings"], "tail damage must be reported"
        # ...but everything before the damage is still reconstructed
        assert {t.id for t in tickets} <= {
            r["request_id"] for r in pm["timeline"]
            if r.get("request_id") is not None
        }

    def test_clean_shutdown_journal_says_so(self, flight_dir):
        cfg = ServiceConfig(workers=1, flight_dir=flight_dir)
        with ShardedExecutionService(cfg, shards=1) as svc:
            assert svc.submit(edge_request()).result(timeout=120).ok
            snap = svc.live_snapshot()
            assert snap["shards"][0]["alive"] is True
        jdir = journal_dir(flight_dir, "proc/0")
        pm = harvest_postmortem(jdir, shard="proc/0", exit_code=0,
                                write_artifact=False)
        assert pm["clean_shutdown"]
        assert pm["in_flight"] == []
        assert pm["window"]["count"] == 1 and pm["window"]["ok"] == 1


class TestBatching:
    def plugged_service(self, **kwargs):
        """One worker, batching on: a plug request occupies the worker
        while compatible requests pile up behind it."""
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("batch_window", 0.05)
        kwargs.setdefault("max_queue_depth", 256)
        return ExecutionService(ServiceConfig(**kwargs))

    def test_batch_shares_one_compile_and_records_peers(self):
        with self.plugged_service() as svc:
            plug = svc.submit(edge_request(size=96, label="plug"))
            batch = [
                svc.submit(edge_request(size=64, label=f"b{i}"))
                for i in range(4)
            ]
            responses = [t.result(timeout=120) for t in batch]
            assert plug.result(timeout=120).ok
            counters = svc.metrics_snapshot()["counters"]
        assert all(r.ok for r in responses)
        batch_ids = {t.id for t in batch}
        batched = [r for r in responses if r.batched]
        assert len(batched) == len(responses), (
            f"all 4 queued requests should coalesce, got "
            f"{[r.to_dict() for r in responses]}"
        )
        for r in batched:
            # peers = the batch minus the request itself
            assert set(r.batched_with) == batch_ids - {r.request_id}
        # One compile for the whole batch; followers joined in-process.
        assert counters["service.batches"] == 1
        assert sum(1 for r in responses if not r.deduped) == 1
        leader = next(r for r in responses if not r.deduped)
        for r in responses:
            if r.deduped:
                assert r.deduped_from == leader.request_id
        assert counters["service.compiles"] == 2  # plug + batch leader

    def test_batch_respects_batch_max(self):
        with self.plugged_service(batch_max=3) as svc:
            svc.submit(edge_request(size=96, label="plug"))
            batch = [
                svc.submit(edge_request(size=64)) for _ in range(5)
            ]
            responses = [t.result(timeout=120) for t in batch]
        assert all(r.ok for r in responses)
        assert max(len(r.batched_with) for r in responses) <= 2

    def test_incompatible_requests_never_batch(self):
        with self.plugged_service() as svc:
            svc.submit(edge_request(size=96, label="plug"))
            a = svc.submit(edge_request(size=48))
            b = svc.submit(edge_request(size=56))
            ra, rb = a.result(timeout=120), b.result(timeout=120)
        assert ra.ok and rb.ok
        assert not ra.batched and not rb.batched

    def test_batch_window_zero_disables_batching(self):
        with ExecutionService(ServiceConfig(
            workers=1, batch_window=0.0, max_queue_depth=256
        )) as svc:
            svc.submit(edge_request(size=96, label="plug"))
            batch = [svc.submit(edge_request(size=64)) for _ in range(3)]
            responses = [t.result(timeout=120) for t in batch]
        assert all(not r.batched for r in responses)

    def test_sharded_batching_rewrites_global_ids(self):
        with ShardedExecutionService(
            ServiceConfig(
                workers=1, batch_window=0.05, max_queue_depth=256
            ),
            shards=2,
        ) as svc:
            plug_size = 96
            batch_size_px = 64
            # Make sure plug and batch share a shard so the plug blocks.
            if svc.route(edge_request(size=plug_size)) != svc.route(
                edge_request(size=batch_size_px)
            ):
                for candidate in range(104, 257, 8):
                    if svc.route(edge_request(size=candidate)) == svc.route(
                        edge_request(size=batch_size_px)
                    ):
                        plug_size = candidate
                        break
            svc.submit(edge_request(size=plug_size, label="plug"))
            batch = [
                svc.submit(edge_request(size=batch_size_px))
                for _ in range(4)
            ]
            ids = {t.id for t in batch}
            responses = [t.result(timeout=120) for t in batch]
        batched = [r for r in responses if r.batched]
        assert batched, "expected the queued requests to coalesce"
        for r in batched:
            assert set(r.batched_with) <= ids, (
                f"batched_with={r.batched_with} leaked shard-local ids "
                f"(global ids: {sorted(ids)})"
            )
