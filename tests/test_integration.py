"""Cross-module integration and failure-injection tests.

The end-to-end invariant of the whole system: *any* template, compiled
with *any* option combination for *any* device capacity, must (a) pass
plan validation, (b) execute within the simulated device's physical
memory, and (c) reproduce the host-reference numerics exactly.  Plus:
corrupted plans must be rejected by the validator, not silently
mis-execute.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompileOptions,
    CopyToGPU,
    Framework,
    Free,
    Launch,
    OperatorGraph,
    PlanError,
    validate_plan,
)
from repro.gpusim import GpuDevice
from repro.runtime import reference_execute
from repro.templates import (
    dog_pyramid_graph,
    dog_pyramid_inputs,
    find_edges_graph,
    find_edges_inputs,
)


def random_template(rng: random.Random) -> tuple[OperatorGraph, dict]:
    """A random mixed-operator template with real inputs."""
    h = rng.choice([16, 24, 32]) * 2
    w = rng.choice([16, 24, 32]) * 2
    g = OperatorGraph("itest")
    g.add_data("X", (h, w), is_input=True)
    inputs = {
        "X": np.random.default_rng(rng.randint(0, 999))
        .standard_normal((h, w))
        .astype(np.float32)
    }
    avail = [("X", (h, w))]
    n_ops = rng.randint(3, 10)
    for i in range(n_ops):
        src, shape = rng.choice(avail)
        kind = rng.choice(
            ["tanh", "remap", "scale", "relu", "conv", "sub2", "max2"]
        )
        name = f"d{i}"
        if kind == "conv":
            k = rng.choice([3, 5])
            kn = f"k{i}"
            g.add_data(kn, (k, k), is_input=True)
            inputs[kn] = (
                np.random.default_rng(i).standard_normal((k, k)).astype(np.float32)
            )
            g.add_data(name, shape)
            g.add_operator(f"o{i}", "conv2d", [src, kn], [name], mode="same")
        elif kind in ("sub2", "max2"):
            pool = [a for a in avail if a[1] == shape]
            if len(pool) < 2:
                g.add_data(name, shape)
                g.add_operator(f"o{i}", "tanh", [src], [name])
            else:
                a, b = rng.sample(pool, 2)
                g.add_data(name, shape)
                g.add_operator(
                    f"o{i}",
                    "sub" if kind == "sub2" else "max",
                    [a[0], b[0]],
                    [name],
                )
        else:
            g.add_data(name, shape)
            params = {"factor": 0.5} if kind == "scale" else {}
            g.add_operator(f"o{i}", kind, [src], [name], **params)
        avail.append((name, shape))
    # Mark sinks as outputs.
    for d, ds in g.data.items():
        if not ds.is_input and not g.consumers.get(d):
            ds.is_output = True
    g.validate()
    return g, inputs


class TestRandomTemplatesEndToEnd:
    @pytest.mark.parametrize("seed", range(12))
    def test_compile_execute_matches_reference(self, seed):
        rng = random.Random(seed)
        graph, inputs = random_template(rng)
        ref = reference_execute(graph, inputs)
        cap_frac = rng.choice([0.2, 0.4, 0.8, 2.0])
        mem = max(int(graph.max_footprint() * 4 * cap_frac), 6000)
        dev = GpuDevice(name=f"it{seed}", memory_bytes=mem)
        opts = CompileOptions(
            scheduler=rng.choice(["dfs", "bfs", "topo"]),
            eviction_policy=rng.choice(["belady", "lru", "fifo", "ltu"]),
            eager_free=rng.choice([True, False]),
        )
        fw = Framework(dev, options=opts)
        compiled = fw.compile(graph)
        res = fw.execute(compiled, inputs)
        assert set(res.outputs) == set(ref)
        for k in ref:
            np.testing.assert_allclose(
                res.outputs[k], ref[k], rtol=1e-3, atol=1e-4, err_msg=k
            )


class TestFailureInjection:
    def make(self):
        # Device small enough that the plan must evict: dropping frees
        # then provably overflows capacity.
        g = find_edges_graph(40, 32, 5, 4)
        fw = Framework(GpuDevice(name="fi", memory_bytes=24 * 1024))
        return g, fw.compile(g)

    def test_dropped_upload_caught(self):
        g, compiled = self.make()
        steps = [
            s
            for s in compiled.plan.steps
            if not isinstance(s, CopyToGPU)
            or s.data != compiled.plan.steps[0].data
        ]
        bad = type(compiled.plan)(steps, compiled.plan.capacity_floats)
        with pytest.raises(PlanError):
            validate_plan(bad, compiled.graph)

    def test_dropped_free_caught_by_capacity(self):
        g, compiled = self.make()
        steps = [s for s in compiled.plan.steps if not isinstance(s, Free)]
        bad = type(compiled.plan)(steps, compiled.plan.capacity_floats)
        with pytest.raises(PlanError):
            validate_plan(bad, compiled.graph, compiled.plan.capacity_floats)

    def test_reordered_launch_caught(self):
        g, compiled = self.make()
        launches = [i for i, s in enumerate(compiled.plan.steps) if isinstance(s, Launch)]
        steps = list(compiled.plan.steps)
        steps[launches[0]], steps[launches[-1]] = (
            steps[launches[-1]],
            steps[launches[0]],
        )
        bad = type(compiled.plan)(steps, compiled.plan.capacity_floats)
        with pytest.raises(PlanError):
            validate_plan(bad, compiled.graph)

    def test_duplicated_launch_caught(self):
        g, compiled = self.make()
        steps = list(compiled.plan.steps)
        launch = next(s for s in steps if isinstance(s, Launch))
        steps.append(launch)
        bad = type(compiled.plan)(steps, compiled.plan.capacity_floats)
        with pytest.raises(PlanError):
            validate_plan(bad, compiled.graph)

    def test_executor_rejects_missing_buffer(self):
        """Execution of a plan referencing an unallocated buffer fails
        loudly in the simulated runtime, not silently."""
        from repro.core.plan import CopyToCPU, ExecutionPlan
        from repro.gpusim import SimRuntime
        from repro.runtime import execute_plan

        g = find_edges_graph(16, 16, 3, 2)
        plan = ExecutionPlan([CopyToCPU("Edg")], 10**9)
        rt = SimRuntime(GpuDevice(name="x", memory_bytes=1 << 20))
        with pytest.raises(KeyError):
            execute_plan(plan, g, rt, find_edges_inputs(16, 16, 3, 2))


class TestMultiTemplateSession:
    def test_three_templates_one_device(self):
        """A session compiling all three domain templates for one card."""
        dev = GpuDevice(name="session", memory_bytes=256 * 1024)
        fw = Framework(dev)
        edge = find_edges_graph(64, 48, 5, 4)
        pyr = dog_pyramid_graph(64, 48, octaves=2)
        e_in = find_edges_inputs(64, 48, 5, 4, seed=1)
        p_in = dog_pyramid_inputs(64, 48, seed=1)
        for graph, inputs in ((edge, e_in), (pyr, p_in)):
            ref = reference_execute(graph, inputs)
            res = fw.execute(fw.compile(graph), inputs)
            for k in ref:
                np.testing.assert_allclose(
                    res.outputs[k], ref[k], rtol=1e-3, atol=1e-4
                )


@settings(max_examples=20, deadline=None)
@given(
    mem_kb=st.integers(24, 200),
    scheduler=st.sampled_from(["dfs", "bfs", "topo"]),
    policy=st.sampled_from(["belady", "lru", "fifo"]),
)
def test_property_any_configuration_is_sound(mem_kb, scheduler, policy):
    """Hypothesis: arbitrary (memory, scheduler, policy) combinations all
    compile to valid plans whose execution matches the reference."""
    graph = find_edges_graph(40, 32, 5, 4)
    inputs = find_edges_inputs(40, 32, 5, 4, seed=0)
    ref = reference_execute(graph, inputs)["Edg"]
    dev = GpuDevice(name=f"h{mem_kb}", memory_bytes=mem_kb * 1024)
    fw = Framework(
        dev, options=CompileOptions(scheduler=scheduler, eviction_policy=policy)
    )
    compiled = fw.compile(graph)
    assert compiled.peak_device_floats <= dev.usable_memory_floats
    res = fw.execute(compiled, inputs)
    np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-3, atol=1e-4)
