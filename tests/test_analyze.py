"""Tests for the run-analysis layer (repro.obs.analyze)."""

import json

import pytest

from repro.core import Framework
from repro.gpusim import (
    XEON_WORKSTATION,
    Event,
    EventKind,
    GpuDevice,
    Profile,
    homogeneous_group,
)
from repro.multigpu import compile_multi, execute_multi
from repro.obs import (
    analyze_run,
    attribute_transfers,
    critical_path,
    imbalance_stats,
    residency_timelines,
    timeline_stats,
)
from repro.obs.report import render_report, report_to_dict
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="an-dev", memory_bytes=64 * 1024)
MGDEV = GpuDevice(name="an-mg-dev", memory_bytes=256 * 1024)


def run_edge():
    g = find_edges_graph(40, 32, 5, 4)
    fw = Framework(DEV, host=XEON_WORKSTATION)
    compiled = fw.compile(g)
    result = fw.execute(compiled, find_edges_inputs(40, 32, 5, 4))
    return compiled, result


def run_edge_multi(n=2, mode="peer"):
    g = find_edges_graph(48, 40, 5, 4)
    inputs = find_edges_inputs(48, 40, 5, 4, seed=9)
    compiled = compile_multi(
        g, homogeneous_group(MGDEV, n), transfer_mode=mode
    )
    result = execute_multi(compiled, inputs)
    return compiled, result


def synthetic_profile():
    """Hand-built timeline with a known gap and known overlap.

    h2d [0,1), kernel [0.5, 2.5), gap (2.5, 3.0), d2h [3.0, 4.0).
    busy union = 2.5 + 1.0 = 3.5, span = 4.0, serialized = 4.0,
    overlap = 0.5 hidden out of min(transfer=2.0, compute=2.0).
    """
    p = Profile()
    p.record(Event(EventKind.ALLOC, "A", 0.0, 0.0, nbytes=400))
    p.record(Event(EventKind.H2D, "A", 0.0, 1.0, nbytes=400))
    p.record(Event(EventKind.ALLOC, "B", 0.5, 0.0, nbytes=100))
    p.record(Event(EventKind.KERNEL, "op", 0.5, 2.0, nbytes=500))
    p.record(Event(EventKind.FREE, "A", 2.5, 0.0, nbytes=400))
    p.record(Event(EventKind.D2H, "B", 3.0, 1.0, nbytes=100))
    p.record(Event(EventKind.FREE, "B", 4.0, 0.0, nbytes=100))
    return p


class TestResidency:
    def test_synthetic_intervals_and_curve(self):
        r = residency_timelines(synthetic_profile())
        assert [(iv.buffer, iv.start, iv.end) for iv in r.intervals] == [
            ("A", 0.0, 2.5),
            ("B", 0.5, 4.0),
        ]
        assert r.peak_bytes == 500
        assert r.curve == [(0.0, 400), (0.5, 500), (2.5, 100), (4.0, 0)]
        # time-weighted mean over horizon 4: (400*2.5 + 100*3.5) / 4
        assert r.mean_bytes == pytest.approx((400 * 2.5 + 100 * 3.5) / 4.0)
        assert r.byte_seconds() == {"A": 1000.0, "B": 350.0}

    def test_never_freed_buffer_stays_open(self):
        p = Profile()
        p.record(Event(EventKind.ALLOC, "X", 0.0, 0.0, nbytes=8))
        p.record(Event(EventKind.KERNEL, "op", 0.0, 2.0))
        r = residency_timelines(p)
        assert r.intervals[0].end is None
        assert r.intervals[0].length(r.horizon) == pytest.approx(2.0)

    def test_peak_matches_validator_accounting(self):
        compiled, result = run_edge()
        r = residency_timelines(result.profile)
        assert r.peak_bytes == compiled.peak_device_floats * 4

    def test_reupload_makes_two_intervals(self):
        p = Profile()
        for t in (0.0, 2.0):
            p.record(Event(EventKind.ALLOC, "X", t, 0.0, nbytes=4))
            p.record(Event(EventKind.FREE, "X", t + 1.0, 0.0, nbytes=4))
        r = residency_timelines(p)
        assert [iv.buffer for iv in r.intervals] == ["X", "X"]
        assert r.peak_bytes == 4


class TestTimelineStats:
    def test_synthetic_gap_and_overlap(self):
        s = timeline_stats(synthetic_profile())
        assert s.span == pytest.approx(4.0)
        assert s.busy == pytest.approx(3.5)
        assert s.idle == pytest.approx(0.5)
        assert s.serialized == pytest.approx(4.0)
        assert s.overlap == pytest.approx(0.5)
        # 0.5 hidden of a possible min(transfer=2.0, compute=2.0)
        assert s.overlap_efficiency == pytest.approx(0.25)
        assert s.largest_gap == pytest.approx(0.5)
        assert s.gaps == [(2.5, 3.0)]
        assert s.by_kind["kernel"] == pytest.approx(2.0)

    def test_empty_profile(self):
        s = timeline_stats(Profile())
        assert s.span == 0.0 and s.busy == 0.0 and s.gaps == []

    def test_no_compute_means_no_overlap_potential(self):
        p = Profile()
        p.record(Event(EventKind.H2D, "A", 0.0, 1.0, nbytes=4))
        assert timeline_stats(p).overlap_efficiency == 0.0


class TestMultiDevice:
    def test_imbalance_and_critical_path(self):
        _, result = run_edge_multi(2)
        stats = imbalance_stats(result.profiles)
        assert len(stats.busy) == 2
        assert stats.makespan == pytest.approx(max(stats.finish))
        assert stats.imbalance >= 1.0
        crit = critical_path(result.profiles)
        assert crit.device == stats.finish.index(max(stats.finish))
        assert crit.finish == pytest.approx(stats.makespan)
        assert crit.dominant in crit.by_kind


class TestAttribution:
    def test_single_device_sums_exactly(self):
        compiled, result = run_edge()
        attr = attribute_transfers(compiled.plan, profiles=[result.profile])
        assert attr.host_bytes() == result.profile.bytes_transferred()
        assert attr.peer_bytes() == 0
        assert sum(attr.by_buffer().values()) == attr.host_bytes()
        assert sum(attr.by_reason().values()) == attr.host_bytes()
        ground = result.profile.bytes_by_buffer()
        for buf, nbytes in attr.by_buffer().items():
            assert ground[buf] == nbytes

    def test_records_name_operators_and_reasons(self):
        compiled, result = run_edge()
        attr = attribute_transfers(compiled.plan, profiles=[result.profile])
        uploads = [r for r in attr.records if r.reason_class == "upload"]
        assert uploads and all(r.operator for r in uploads)
        assert {r.direction for r in attr.records} <= {"h2d", "d2h"}

    @pytest.mark.parametrize("mode", ["peer", "staged"])
    def test_multi_device_sums_exactly(self, mode):
        compiled, result = run_edge_multi(2, mode)
        attr = attribute_transfers(compiled.plan, profiles=result.profiles)
        assert attr.host_bytes() == result.bytes_transferred()
        assert attr.peer_bytes() == result.peer_bytes()

    def test_peer_records_carry_route(self):
        compiled, result = run_edge_multi(2, "peer")
        attr = attribute_transfers(compiled.plan, profiles=result.profiles)
        p2p = [r for r in attr.records if r.direction == "p2p"]
        assert p2p, "peer-mode 2-device edge plan should peer-copy"
        for r in p2p:
            assert r.peer_src is not None and r.peer_dst is not None
            assert r.device == r.peer_dst

    def test_analytic_fallback_uses_graph_sizes(self):
        compiled, _ = run_edge()
        attr = attribute_transfers(compiled.plan, graph=compiled.graph)
        assert attr.host_bytes() == compiled.transfer_floats() * 4

    def test_mismatched_profile_rejected(self):
        compiled, _ = run_edge()
        with pytest.raises(ValueError, match="does not correspond"):
            attribute_transfers(compiled.plan, profiles=[Profile()])

    def test_needs_profiles_or_graph(self):
        compiled, _ = run_edge()
        with pytest.raises(ValueError):
            attribute_transfers(compiled.plan)


class TestRunAnalysis:
    def test_to_dict_is_json_and_complete(self):
        compiled, result = run_edge()
        analysis = analyze_run(
            [result.profile],
            plan=compiled.plan,
            graph=compiled.graph,
            label="edge",
            metadata={"device": DEV.name},
        )
        raw = json.loads(json.dumps(analysis.to_dict()))
        assert raw["num_devices"] == 1
        assert raw["devices"][0]["residency"]["peak_bytes"] > 0
        assert raw["attribution"]["host_bytes"] == (
            result.profile.bytes_transferred()
        )

    def test_report_renders_md_and_html(self):
        compiled, result = run_edge()
        analysis = analyze_run(
            [result.profile], plan=compiled.plan, label="edge"
        )
        md = render_report(analysis)
        assert "Transfer attribution" in md
        assert str(result.profile.bytes_transferred()) in md
        html = render_report(analysis, fmt="html")
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        assert json.dumps(report_to_dict(analysis))

    def test_multi_device_report_has_imbalance(self):
        compiled, result = run_edge_multi(2)
        analysis = analyze_run(
            result.profiles, plan=compiled.plan, label="edge-2gpu"
        )
        md = render_report(analysis)
        assert "imbalance" in md.lower()
        assert analysis.attribution.peer_bytes() == result.peer_bytes()
