"""Tests for the operator library (numpy semantics, cost, split rules)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.signal import correlate2d

from repro.core import Operator, OperatorGraph
from repro.ops import conv2d_valid, get_impl, known_kinds, same_padding
from repro.ops.base import register


def make_op(kind, inputs, outputs, **params):
    return Operator("t", kind, tuple(inputs), tuple(outputs), params)


rng = np.random.default_rng(1234)


class TestRegistry:
    def test_known_kinds(self):
        kinds = known_kinds()
        for k in (
            "conv2d",
            "add",
            "bias_add",
            "tanh",
            "remap",
            "scale",
            "max",
            "sum_combine",
            "absmax",
            "subsample",
            "matmul",
            "reduce",
            "combine_partials",
            "fused",
        ):
            assert k in kinds

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            get_impl("frobnicate")

    def test_duplicate_registration_rejected(self):
        impl = get_impl("add")
        with pytest.raises(ValueError):
            register(impl)


class TestConv2D:
    def test_valid_matches_scipy(self):
        img = rng.standard_normal((17, 23)).astype(np.float32)
        ker = rng.standard_normal((4, 5)).astype(np.float32)
        ref = correlate2d(img, ker, mode="valid")
        np.testing.assert_allclose(conv2d_valid(img, ker), ref, rtol=1e-4)

    def test_same_matches_scipy(self):
        impl = get_impl("conv2d")
        img = rng.standard_normal((12, 15)).astype(np.float32)
        ker = rng.standard_normal((5, 5)).astype(np.float32)
        op = make_op("conv2d", ["i", "k"], ["o"], mode="same")
        (out,) = impl.execute(op, [img, ker])
        ref = correlate2d(img, ker, mode="same")
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_same_even_kernel_shape(self):
        impl = get_impl("conv2d")
        img = rng.standard_normal((20, 20)).astype(np.float32)
        ker = rng.standard_normal((16, 16)).astype(np.float32)
        op = make_op("conv2d", ["i", "k"], ["o"], mode="same")
        (out,) = impl.execute(op, [img, ker])
        assert out.shape == (20, 20)

    def test_out_shapes(self):
        impl = get_impl("conv2d")
        assert impl.out_shapes([(10, 10), (3, 3)], {"mode": "valid"}) == [(8, 8)]
        assert impl.out_shapes([(10, 10), (3, 3)], {"mode": "same"}) == [(10, 10)]
        with pytest.raises(ValueError):
            impl.out_shapes([(2, 2), (3, 3)], {"mode": "valid"})
        with pytest.raises(ValueError):
            impl.out_shapes([(10, 10), (3, 3)], {"mode": "nope"})

    def test_image_smaller_than_kernel_raises(self):
        with pytest.raises(ValueError):
            conv2d_valid(np.zeros((2, 2), np.float32), np.ones((3, 3), np.float32))

    def test_same_padding_splits(self):
        assert same_padding(3) == (1, 1)
        assert same_padding(16) == (7, 8)
        assert same_padding(1) == (0, 0)

    def test_input_rows_valid_mode(self):
        g = OperatorGraph()
        g.add_data("i", (100, 100), is_input=True)
        g.add_data("k", (5, 5), is_input=True)
        g.add_data("o", (96, 96), is_output=True)
        op = g.add_operator("c", "conv2d", ["i", "k"], ["o"], mode="valid")
        impl = get_impl("conv2d")
        # Section 3.2's example: halves need 52 input rows each.
        assert impl.input_rows(op, g, (0, 48)) == [(0, 52), None]
        assert impl.input_rows(op, g, (48, 96)) == [(48, 100), None]

    def test_input_rows_same_mode(self):
        g = OperatorGraph()
        g.add_data("i", (10, 10), is_input=True)
        g.add_data("k", (3, 3), is_input=True)
        g.add_data("o", (10, 10), is_output=True)
        op = g.add_operator("c", "conv2d", ["i", "k"], ["o"], mode="same")
        impl = get_impl("conv2d")
        assert impl.input_rows(op, g, (0, 5)) == [(-1, 6), None]

    def test_part_execution_with_boundary_padding(self):
        impl = get_impl("conv2d")
        img = rng.standard_normal((10, 8)).astype(np.float32)
        ker = rng.standard_normal((3, 3)).astype(np.float32)
        ref = correlate2d(img, ker, mode="same")
        # Part covering output rows [0, 5): gets clamped input rows [0, 6).
        op = make_op(
            "conv2d", ["i", "k"], ["o"], mode="same", out_range=(0, 5), in_rows=10
        )
        (top,) = impl.execute(op, [img[0:6], ker])
        np.testing.assert_allclose(top, ref[0:5], rtol=1e-4, atol=1e-5)
        op = make_op(
            "conv2d", ["i", "k"], ["o"], mode="same", out_range=(5, 10), in_rows=10
        )
        (bot,) = impl.execute(op, [img[4:10], ker])
        np.testing.assert_allclose(bot, ref[5:10], rtol=1e-4, atol=1e-5)

    def test_flops(self):
        g = OperatorGraph()
        g.add_data("i", (10, 10), is_input=True)
        g.add_data("k", (3, 3), is_input=True)
        g.add_data("o", (10, 10), is_output=True)
        op = g.add_operator("c", "conv2d", ["i", "k"], ["o"], mode="same")
        assert get_impl("conv2d").flops(op, g) == 2 * 100 * 9


class TestElementwise:
    cases = [
        ("add", 2, lambda a, b: a + b),
        ("max", 2, np.maximum),
        ("sum_combine", 2, lambda a, b: a + b),
        ("absmax", 2, lambda a, b: np.maximum(np.abs(a), np.abs(b))),
    ]

    @pytest.mark.parametrize("kind,nin,fn", cases)
    def test_binary_semantics(self, kind, nin, fn):
        impl = get_impl(kind)
        a = rng.standard_normal((6, 7)).astype(np.float32)
        b = rng.standard_normal((6, 7)).astype(np.float32)
        op = make_op(kind, ["a", "b"], ["o"])
        (out,) = impl.execute(op, [a, b])
        np.testing.assert_allclose(out, fn(a, b), rtol=1e-5)

    def test_max_many_inputs(self):
        impl = get_impl("max")
        arrays = [rng.standard_normal((4, 4)).astype(np.float32) for _ in range(5)]
        op = make_op("max", list("abcde"), ["o"])
        (out,) = impl.execute(op, arrays)
        np.testing.assert_allclose(out, np.maximum.reduce(arrays))

    def test_tanh(self):
        impl = get_impl("tanh")
        a = rng.standard_normal((5, 5)).astype(np.float32)
        (out,) = impl.execute(make_op("tanh", ["a"], ["o"]), [a])
        np.testing.assert_allclose(out, np.tanh(a), rtol=1e-5)

    def test_remap_gain(self):
        impl = get_impl("remap")
        a = rng.standard_normal((5, 5)).astype(np.float32)
        (out,) = impl.execute(make_op("remap", ["a"], ["o"], gain=2.0), [a])
        np.testing.assert_allclose(out, np.abs(a) * 2.0, rtol=1e-5)

    def test_scale(self):
        impl = get_impl("scale")
        a = rng.standard_normal((5, 5)).astype(np.float32)
        (out,) = impl.execute(make_op("scale", ["a"], ["o"], factor=-0.5), [a])
        np.testing.assert_allclose(out, a * -0.5, rtol=1e-5)

    def test_bias_add(self):
        impl = get_impl("bias_add")
        a = rng.standard_normal((5, 5)).astype(np.float32)
        bias = np.array([1.5], dtype=np.float32)
        (out,) = impl.execute(make_op("bias_add", ["a", "b"], ["o"]), [a, bias])
        np.testing.assert_allclose(out, a + 1.5, rtol=1e-5)

    def test_shape_mismatch_rejected(self):
        impl = get_impl("add")
        with pytest.raises(ValueError):
            impl.out_shapes([(2, 2), (3, 3)], {})

    def test_bias_slot_not_split(self):
        g = OperatorGraph()
        g.add_data("a", (8, 4), is_input=True)
        g.add_data("b", (1,), is_input=True)
        g.add_data("o", (8, 4), is_output=True)
        op = g.add_operator("x", "bias_add", ["a", "b"], ["o"])
        assert get_impl("bias_add").input_rows(op, g, (0, 4)) == [(0, 4), None]


class TestSubsample:
    def test_mean_pool(self):
        impl = get_impl("subsample")
        a = np.arange(16, dtype=np.float32).reshape(4, 4)
        op = make_op("subsample", ["a"], ["o"], factor=2)
        (out,) = impl.execute(op, [a])
        expect = np.array([[2.5, 4.5], [10.5, 12.5]], dtype=np.float32)
        np.testing.assert_allclose(out, expect)

    def test_weight_bias(self):
        impl = get_impl("subsample")
        a = np.ones((4, 4), dtype=np.float32)
        op = make_op("subsample", ["a"], ["o"], factor=2, weight=3.0, bias=1.0)
        (out,) = impl.execute(op, [a])
        np.testing.assert_allclose(out, np.full((2, 2), 4.0))

    def test_out_shapes_and_errors(self):
        impl = get_impl("subsample")
        assert impl.out_shapes([(8, 6)], {"factor": 2}) == [(4, 3)]
        with pytest.raises(ValueError):
            impl.out_shapes([(7, 6)], {"factor": 2})
        with pytest.raises(ValueError):
            impl.out_shapes([(8, 6)], {"factor": 0})

    def test_input_rows_scaled(self):
        g = OperatorGraph()
        g.add_data("a", (8, 4), is_input=True)
        g.add_data("o", (4, 2), is_output=True)
        op = g.add_operator("s", "subsample", ["a"], ["o"], factor=2)
        assert get_impl("subsample").input_rows(op, g, (1, 3)) == [(2, 6)]


class TestMatMul:
    def test_semantics(self):
        impl = get_impl("matmul")
        a = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal((6, 3)).astype(np.float32)
        (out,) = impl.execute(make_op("matmul", ["a", "b"], ["o"]), [a, b])
        np.testing.assert_allclose(out, a @ b, rtol=1e-4)

    def test_shapes(self):
        impl = get_impl("matmul")
        assert impl.out_shapes([(4, 6), (6, 3)], {}) == [(4, 3)]
        with pytest.raises(ValueError):
            impl.out_shapes([(4, 6), (5, 3)], {})

    def test_split_rule_keeps_b_whole(self):
        g = OperatorGraph()
        g.add_data("a", (4, 6), is_input=True)
        g.add_data("b", (6, 3), is_input=True)
        g.add_data("o", (4, 3), is_output=True)
        op = g.add_operator("m", "matmul", ["a", "b"], ["o"])
        assert get_impl("matmul").input_rows(op, g, (0, 2)) == [(0, 2), None]

    def test_flops(self):
        g = OperatorGraph()
        g.add_data("a", (4, 6), is_input=True)
        g.add_data("b", (6, 3), is_input=True)
        g.add_data("o", (4, 3), is_output=True)
        op = g.add_operator("m", "matmul", ["a", "b"], ["o"])
        assert get_impl("matmul").flops(op, g) == 2 * 4 * 6 * 3


class TestReduce:
    @pytest.mark.parametrize("fn,ref", [
        ("sum", lambda a: a.sum(axis=0, keepdims=True)),
        ("max", lambda a: a.max(axis=0, keepdims=True)),
        ("mean", lambda a: a.mean(axis=0, keepdims=True)),
    ])
    def test_semantics(self, fn, ref):
        impl = get_impl("reduce")
        a = rng.standard_normal((7, 5)).astype(np.float32)
        (out,) = impl.execute(make_op("reduce", ["a"], ["o"], fn=fn), [a])
        np.testing.assert_allclose(out, ref(a), rtol=1e-4, atol=1e-6)

    def test_unknown_fn(self):
        impl = get_impl("reduce")
        with pytest.raises(ValueError):
            impl.out_shapes([(4, 4)], {"fn": "median"})

    def test_combine_partials_mean_weights(self):
        impl = get_impl("combine_partials")
        p1 = np.full((1, 3), 2.0, dtype=np.float32)
        p2 = np.full((1, 3), 8.0, dtype=np.float32)
        op = make_op("combine_partials", ["a", "b"], ["o"], fn="mean", weights=[3, 1])
        (out,) = impl.execute(op, [p1, p2])
        np.testing.assert_allclose(out, np.full((1, 3), 3.5))

    def test_combine_partials_max(self):
        impl = get_impl("combine_partials")
        op = make_op("combine_partials", ["a", "b"], ["o"], fn="max")
        (out,) = impl.execute(
            op,
            [np.array([[1.0, 9.0]], np.float32), np.array([[4.0, 2.0]], np.float32)],
        )
        np.testing.assert_allclose(out, [[4.0, 9.0]])


@settings(max_examples=40, deadline=None)
@given(
    h=st.integers(5, 24),
    w=st.integers(5, 24),
    kh=st.integers(1, 5),
    kw=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_conv_property_matches_scipy(h, w, kh, kw, seed):
    r = np.random.default_rng(seed)
    img = r.standard_normal((h, w)).astype(np.float32)
    ker = r.standard_normal((kh, kw)).astype(np.float32)
    np.testing.assert_allclose(
        conv2d_valid(img, ker),
        correlate2d(img, ker, mode="valid"),
        rtol=1e-3,
        atol=1e-4,
    )
