"""Tests for the analysis package (Figures 1(c), 8; Table 1 columns)."""

import pytest

from repro.analysis import (
    best_possible,
    compare_transfers,
    edge_strategy_regions,
    io_lower_bound_floats,
    memory_profile,
    sweep_memory,
)
from repro.core import Framework, dfs_schedule, schedule_transfers
from repro.gpusim import TESLA_C870, XEON_WORKSTATION
from repro.templates import find_edges_graph


class TestMemoryProfile:
    def test_profile_fields(self):
        g = find_edges_graph(100, 100, 16, 8)
        p = memory_profile(g)
        assert p.total_floats == g.total_data_size()
        assert p.io_floats == g.io_size()
        assert p.max_op_footprint == g.max_footprint()
        assert p.input_floats == 100 * 100 + 4 * 256
        assert len(p.per_op) == len(g.ops)

    def test_op_classes_group_by_prefix(self):
        g = find_edges_graph(100, 100, 16, 8)
        classes = memory_profile(g).op_classes()
        assert "C" in classes and "R" in classes and "Combine" in classes
        assert classes["Combine"] == 9 * 100 * 100

    def test_sweep(self):
        rows = sweep_memory(
            lambda s: find_edges_graph(s, s, 16, 8), [64, 128]
        )
        assert len(rows) == 2
        assert rows[0][1].total_floats < rows[1][1].total_floats


class TestStrategyRegions:
    def test_paper_boundaries_on_c870(self):
        """Figure 1(c): regions at 150 / 166.67 / 750 / 1500 MB.

        The figure's axes are MB of input image; with n=8 orientations the
        template needs (n+2)x image-size in total, the max operator
        (n+1)x, convolutions 2x, and the image itself 1x.
        """
        cap_mb = 1500
        r = edge_strategy_regions(cap_mb, num_orientations=8)
        assert r.all_fits_below == pytest.approx(150.0)
        assert r.largest_op_fits_below == pytest.approx(166.666, rel=1e-3)
        assert r.conv_fits_below == pytest.approx(750.0)
        assert r.input_fits_below == pytest.approx(1500.0)

    def test_regions_consistent_with_profiles(self):
        """The analytic boundaries agree with actual template profiles."""
        cap = TESLA_C870.memory_floats
        r = edge_strategy_regions(cap, 8)
        # An image just below the first boundary fits entirely.
        side = int((r.all_fits_below * 0.99) ** 0.5)
        g = find_edges_graph(side, side, 16, 8)
        assert g.total_data_size() <= cap
        # Just above it no longer fits, but the max op still does.
        side = int((r.all_fits_below * 1.05) ** 0.5)
        g = find_edges_graph(side, side, 16, 8)
        assert g.total_data_size() > cap
        assert g.max_footprint() <= cap


class TestBestPossible:
    def test_transfers_are_io_only(self):
        g = find_edges_graph(64, 64, 5, 4)
        bp = best_possible(g, TESLA_C870, XEON_WORKSTATION)
        assert bp.transfer_floats == g.io_size()
        assert bp.time == pytest.approx(bp.transfer_time + bp.compute_time)

    def test_beats_any_real_plan(self):
        g = find_edges_graph(64, 64, 5, 4)
        bp = best_possible(g, TESLA_C870)
        fw = Framework(TESLA_C870)
        sim = fw.simulate(fw.compile(g))
        assert bp.time <= sim.total_time
        assert bp.transfer_floats <= sim.transfer_floats


class TestCompareTransfers:
    def test_row_construction(self):
        g = find_edges_graph(64, 64, 5, 4)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        row = compare_transfers(
            g, {"Tesla C870": plan.transfer_floats(g)}, baseline_feasible=True
        )
        assert row.lower_bound_floats == g.io_size()
        assert row.baseline_floats is not None
        assert row.reduction("Tesla C870") > 1.0

    def test_infeasible_baseline_is_none(self):
        g = find_edges_graph(64, 64, 5, 4)
        row = compare_transfers(g, {"d": 123}, baseline_feasible=False)
        assert row.baseline_floats is None
        assert row.reduction("d") is None

    def test_io_lower_bound(self):
        g = find_edges_graph(64, 64, 5, 4)
        assert io_lower_bound_floats(g) == g.io_size()
