"""Consistent-hash ring (repro.service.hashring).

The ring is the sharded tier's routing fabric, so its two load-bearing
properties are tested as *properties* (hypothesis), not examples:

* **balance** — for any shard count in 2..16, routing a large keyspace
  lands within 20% of uniform on every shard (virtual nodes do the
  smoothing);
* **minimal disruption** — growing N -> N+1 shards remigrates roughly
  1/(N+1) of the keyspace and never moves a key between two *old*
  shards; shrinking only moves the removed shard's keys.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.hashring import DEFAULT_REPLICAS, HashRing

KEYS = [f"plan-{i:05d}" for i in range(4000)]


def shard_names(n):
    return [f"proc/{i}" for i in range(n)]


class TestBasics:
    def test_empty_ring_rejects_routing(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_single_shard_takes_everything(self):
        ring = HashRing(["only"])
        assert all(ring.route(k) == "only" for k in KEYS[:100])

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2
        assert ring.shards == ("a", "b")

    def test_routing_is_deterministic(self):
        one = HashRing(shard_names(5))
        two = HashRing(shard_names(5))
        assert [one.route(k) for k in KEYS] == [two.route(k) for k in KEYS]

    def test_insertion_order_is_irrelevant(self):
        fwd = HashRing(shard_names(6))
        rev = HashRing(reversed(shard_names(6)))
        assert [fwd.route(k) for k in KEYS] == [rev.route(k) for k in KEYS]


class TestDistribution:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=16))
    def test_within_20_percent_of_uniform(self, n):
        """Every shard's share of a 4000-key space is uniform +/- 20%."""
        ring = HashRing(shard_names(n))
        counts = ring.distribution(KEYS)
        expected = len(KEYS) / n
        for shard in shard_names(n):
            share = counts.get(shard, 0)
            assert abs(share - expected) <= 0.20 * expected, (
                f"shard {shard} owns {share} keys, expected "
                f"{expected:.0f} +/- 20% across {n} shards"
            )

    def test_more_replicas_smooth_harder(self):
        """Variance shrinks as virtual-node count grows (sanity that
        replicas are what buys the balance property)."""

        def spread(replicas):
            ring = HashRing(shard_names(4), replicas=replicas)
            counts = ring.distribution(KEYS)
            return max(counts.values()) - min(counts.values())

        assert spread(DEFAULT_REPLICAS) < spread(4)


class TestMinimalDisruption:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=16))
    def test_grow_remigrates_about_one_over_n(self, n):
        """N -> N+1: at most ~1/(N+1) of keys move (2x slack for hash
        noise at small N), and every move targets the *new* shard."""
        before = HashRing(shard_names(n))
        owners_before = {k: before.route(k) for k in KEYS}
        after = HashRing(shard_names(n + 1))
        new_shard = f"proc/{n}"
        moved = 0
        for k in KEYS:
            owner = after.route(k)
            if owner != owners_before[k]:
                moved += 1
                assert owner == new_shard, (
                    f"key {k} moved between two surviving shards "
                    f"({owners_before[k]} -> {owner})"
                )
        assert moved <= 2.0 * len(KEYS) / (n + 1), (
            f"{moved}/{len(KEYS)} keys remigrated growing {n} -> {n + 1}; "
            f"consistent hashing should move ~{len(KEYS) / (n + 1):.0f}"
        )
        # And the new shard must actually receive a real share.
        assert moved >= 0.2 * len(KEYS) / (n + 1)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=3, max_value=12))
    def test_shrink_only_moves_the_removed_shards_keys(self, n):
        ring = HashRing(shard_names(n))
        owners_before = {k: ring.route(k) for k in KEYS}
        victim = f"proc/{n - 1}"
        ring.remove(victim)
        for k in KEYS:
            if owners_before[k] != victim:
                assert ring.route(k) == owners_before[k], (
                    f"key {k} moved although its owner "
                    f"{owners_before[k]} survived"
                )

    def test_add_then_remove_restores_routing(self):
        ring = HashRing(shard_names(4))
        owners = {k: ring.route(k) for k in KEYS}
        ring.add("proc/4")
        ring.remove("proc/4")
        assert {k: ring.route(k) for k in KEYS} == owners
