"""Live telemetry plane (repro.obs.live + service integration).

Covers the event bus (ring bounds, ambient bind/publish, thread
isolation), sliding windows and SLO budgets, the Prometheus text
exporter, the HTTP status endpoint, and — the integration that matters —
end-to-end request-id propagation: every event one ``service.submit``
causes, across admission, plan-cache, compile, retry, and execute
stages, carries the same ``request_id``, including the single-flight
dedupe-join case where a follower's timeline references its leader.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.framework import Framework
from repro.gpusim import XEON_WORKSTATION, FaultSpec, GpuDevice
from repro.obs import MetricsRegistry
from repro.obs.live import (
    AlertEngine,
    AlertRule,
    EventLog,
    PROM_NAME_RE,
    PromText,
    SlidingWindow,
    SloObjective,
    SloTracker,
    StatusServer,
    bind,
    current_request_id,
    default_alert_rules,
    default_objectives,
    merge_alert_snapshots,
    prom_name,
    publish,
    registry_to_prom,
    timeline_to_chrome,
)
from repro.service import ExecutionService, ServiceConfig, ServiceRequest
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="live-dev", memory_bytes=8 * 1024 * 1024)


def edge_request(size=64, kernel=8, **kwargs):
    kwargs.setdefault("label", f"edge{size}")
    return ServiceRequest(
        template=find_edges_graph(size, size, kernel, 2),
        device=DEV,
        host=XEON_WORKSTATION,
        **kwargs,
    )


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


# ---------------------------------------------------------------------------
# EventLog
# ---------------------------------------------------------------------------
class TestEventLog:
    def test_emission_order_and_fields(self):
        log = EventLog(capacity=16, clock=lambda: 123.0)
        log.emit("service.admit", request_id=1, queue_depth=2)
        log.emit("compile.done", request_id=1, seconds=0.5)
        events = log.events()
        assert [e.kind for e in events] == ["service.admit", "compile.done"]
        assert events[0].seq == 0 and events[1].seq == 1
        assert events[0].ts == 123.0
        assert events[0].fields == {"queue_depth": 2}

    def test_ring_bound_drops_oldest_and_counts(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", request_id=i)
        events = log.events()
        assert len(events) == 4
        assert [e.request_id for e in events] == [6, 7, 8, 9]
        # seq numbers stay global, so consumers can detect the gap
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert log.total_emitted == 10
        assert log.dropped == 6

    def test_capacity_zero_disables(self):
        log = EventLog(capacity=0)
        assert log.emit("anything") is None
        assert not log.enabled
        assert log.events() == []
        assert log.total_emitted == 0

    def test_filters(self):
        log = EventLog()
        log.emit("service.admit", request_id=1)
        log.emit("service.done", request_id=1)
        log.emit("service.admit", request_id=2)
        log.emit("plancache.hit", request_id=2)
        assert len(log.events(request_id=2)) == 2
        assert len(log.events(kind="service.admit")) == 2
        # dotted-prefix filter
        assert len(log.events(kind="service.")) == 3
        assert [e.kind for e in log.events(limit=1)] == ["plancache.hit"]

    def test_ndjson_export(self):
        log = EventLog()
        log.emit("a", request_id=1, x=1)
        log.emit("b", request_id=2)
        lines = log.to_ndjson().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "a"
        assert parsed[0]["fields"] == {"x": 1}
        assert json.loads(
            log.to_ndjson(request_id=2).strip()
        )["request_id"] == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=-1)

    def test_concurrent_publishers_exact_counts_and_monotonic_seq(self):
        """The satellite guarantee: under contention well past capacity,
        total_emitted and dropped are *exact* (no lost updates) and seq
        numbers are unique, gapless, and monotonically assigned."""
        threads_n, per_thread, capacity = 8, 500, 64
        log = EventLog(capacity=capacity)
        barrier = threading.Barrier(threads_n)

        def publisher(tid):
            barrier.wait(timeout=10)
            for i in range(per_thread):
                log.emit("tick", request_id=tid, i=i)

        threads = [
            threading.Thread(target=publisher, args=(tid,))
            for tid in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        assert log.total_emitted == total
        assert log.dropped == total - capacity
        events = log.events()
        assert len(events) == capacity
        seqs = [e.seq for e in events]
        # the surviving ring is exactly the last `capacity` seqs: unique,
        # gapless, ending at total-1
        assert seqs == list(range(total - capacity, total))

    def test_sink_sees_every_event_in_seq_order(self):
        """Sinks (the flight-recorder tee) run inside the ring lock, so
        a sink observes the same total order seq numbers promise —
        including events the ring has already dropped."""
        log = EventLog(capacity=4)
        seen = []
        log.add_sink(lambda e: seen.append(e.seq))
        barrier = threading.Barrier(4)

        def publisher():
            barrier.wait(timeout=10)
            for _ in range(50):
                log.emit("tick")

        threads = [threading.Thread(target=publisher) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == list(range(200))
        assert log.sink_errors == 0

    def test_broken_sink_is_counted_not_fatal(self):
        log = EventLog(capacity=8)

        def broken(event):
            raise RuntimeError("sink bug")

        log.add_sink(broken)
        log.emit("tick")
        log.emit("tick")
        assert log.total_emitted == 2  # emission unaffected
        assert log.sink_errors == 2
        log.remove_sink(broken)
        log.emit("tick")
        assert log.sink_errors == 2


class TestBindPublish:
    def test_publish_is_noop_when_unbound(self):
        assert publish("orphan", x=1) is None
        assert current_request_id() is None

    def test_bound_publish_carries_request_id(self):
        log = EventLog()
        with bind(log, 42):
            assert current_request_id() == 42
            event = publish("stage.done", seconds=0.1)
        assert event is not None and event.request_id == 42
        assert current_request_id() is None
        assert log.events(request_id=42)[0].fields == {"seconds": 0.1}

    def test_threads_do_not_cross_contaminate(self):
        """contextvars are per-thread: concurrent binds stay isolated."""
        log = EventLog()
        barrier = threading.Barrier(4)

        def worker(rid):
            with bind(log, rid):
                barrier.wait(timeout=10)
                for _ in range(20):
                    publish("work", rid_check=rid)

        threads = [
            threading.Thread(target=worker, args=(rid,)) for rid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for event in log.events():
            assert event.request_id == event.fields["rid_check"]


# ---------------------------------------------------------------------------
# Sliding windows and SLOs
# ---------------------------------------------------------------------------
class TestSlidingWindow:
    def test_observations_age_out(self):
        now = [0.0]
        w = SlidingWindow(10.0, clock=lambda: now[0])
        w.observe(1.0)
        now[0] = 5.0
        w.observe(2.0)
        assert w.count() == 2
        now[0] = 11.0  # first sample is now older than the window
        assert w.count() == 1
        assert w.snapshot()["min"] == 2.0

    def test_percentiles_and_rate(self):
        w = SlidingWindow(10.0, clock=lambda: 0.0)
        for v in range(1, 101):
            w.observe(float(v))
        assert w.percentile(50) == 50.0
        assert w.percentile(99) == 99.0
        assert w.rate() == 10.0  # 100 samples / 10 s window
        snap = w.snapshot()
        assert snap["count"] == 100 and snap["p95"] == 95.0

    def test_empty_window(self):
        w = SlidingWindow(10.0)
        with pytest.raises(ValueError, match="empty"):
            w.percentile(50)
        snap = w.snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0

    def test_max_samples_cap(self):
        w = SlidingWindow(1e9, clock=lambda: 0.0, max_samples=8)
        for v in range(100):
            w.observe(float(v))
        assert w.count() == 8
        assert w.snapshot()["min"] == 92.0  # oldest dropped first

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)
        with pytest.raises(ValueError):
            SlidingWindow(1.0, max_samples=0)


class TestSloTracker:
    def test_availability_budget_and_breach(self):
        t = SloTracker(
            (SloObjective(name="avail", target=0.9),),
            clock=lambda: 0.0,
        )
        for _ in range(18):
            t.record(ok=True, latency=0.01)
        t.record(ok=False, latency=0.01)
        obj = t.snapshot()["objectives"][0]
        # 19 requests, budget = 1.9 bad allowed, 1 consumed: not breached
        assert obj["bad"] == 1 and not obj["breached"]
        t.record(ok=False, latency=0.01)
        t.record(ok=False, latency=0.01)
        obj = t.snapshot()["objectives"][0]
        assert obj["bad"] == 3 and obj["breached"]
        assert obj["budget_remaining_fraction"] == 0.0

    def test_latency_objective_counts_slow_ok_as_bad(self):
        t = SloTracker(
            (SloObjective(name="lat", target=0.5, latency_threshold=1.0),),
            clock=lambda: 0.0,
        )
        t.record(ok=True, latency=0.5)
        t.record(ok=True, latency=5.0)  # ok but slow: burns budget
        obj = t.snapshot()["objectives"][0]
        assert obj["good"] == 1 and obj["bad"] == 1

    def test_empty_window_is_compliant(self):
        snap = SloTracker(default_objectives()).snapshot()
        for obj in snap["objectives"]:
            assert obj["compliance"] == 1.0
            assert not obj["breached"]
            assert obj["budget_remaining_fraction"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            SloObjective(name="x", target=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloTracker((
                SloObjective(name="x", target=0.5),
                SloObjective(name="x", target=0.9),
            ))


# ---------------------------------------------------------------------------
# Alert rules
# ---------------------------------------------------------------------------
class TestAlertRules:
    def window(self, **overrides):
        snap = {"count": 10, "rate": 1.0, "sum": 5.0, "mean": 0.5,
                "min": 0.1, "max": 2.0, "p50": 0.4, "p95": 1.5, "p99": 2.0}
        snap.update(overrides)
        return snap

    def slo(self, remaining=1.0, breached=False, name="availability"):
        return {"objectives": [{
            "name": name, "budget_remaining_fraction": remaining,
            "breached": breached,
        }]}

    def test_threshold_fires_above(self):
        rule = AlertRule(name="p99_high", metric="p99", above=1.0)
        firing, detail = rule.check(self.window(p99=2.0), None)
        assert firing and detail["value"] == 2.0
        firing, _ = rule.check(self.window(p99=0.5), None)
        assert not firing

    def test_threshold_min_count_suppresses_idle_noise(self):
        rule = AlertRule(name="p99_high", metric="p99", above=1.0,
                         min_count=5)
        assert not rule.check(self.window(count=1, p99=99.0), None)[0]
        assert rule.check(self.window(count=5, p99=99.0), None)[0]

    def test_budget_burn_fires_past_max_burn_or_breach(self):
        rule = AlertRule(name="burn", kind="budget_burn",
                         objective="availability", max_burn=0.5)
        assert not rule.check(None, self.slo(remaining=0.8))[0]
        firing, detail = rule.check(None, self.slo(remaining=0.2))
        assert firing and detail["burn"] == pytest.approx(0.8)
        # an outright breach fires regardless of the burn fraction
        assert rule.check(None, self.slo(remaining=1.0, breached=True))[0]
        # unknown objective never fires
        assert not rule.check(None, self.slo(name="other"))[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            AlertRule(name="")
        with pytest.raises(ValueError, match="above/below"):
            AlertRule(name="x")
        with pytest.raises(ValueError, match="metric"):
            AlertRule(name="x", metric="p42", above=1.0)
        with pytest.raises(ValueError, match="objective"):
            AlertRule(name="x", kind="budget_burn")
        with pytest.raises(ValueError, match="kind"):
            AlertRule(name="x", kind="pager")

    def test_engine_emits_transitions_only(self):
        log = EventLog(capacity=64)
        engine = AlertEngine((
            AlertRule(name="p99_high", metric="p99", above=1.0),
        ))
        hot, cold = self.window(p99=2.0), self.window(p99=0.1)
        engine.evaluate(hot, None, event_log=log)
        engine.evaluate(hot, None, event_log=log)   # still firing: silent
        engine.evaluate(cold, None, event_log=log)  # resolves
        engine.evaluate(cold, None, event_log=log)  # still quiet: silent
        kinds = [e.kind for e in log.events()]
        assert kinds == ["alert.firing", "alert.resolved"]
        assert log.events()[0].fields["rule"] == "p99_high"
        assert engine.fired_total == 1 and engine.resolved_total == 1
        assert engine.active() == []

    def test_engine_refires_after_resolve(self):
        engine = AlertEngine((
            AlertRule(name="p99_high", metric="p99", above=1.0),
        ))
        hot, cold = self.window(p99=2.0), self.window(p99=0.1)
        for snap in (hot, cold, hot):
            active = engine.evaluate(snap, None)
        assert engine.fired_total == 2 and engine.resolved_total == 1
        assert [a["rule"] for a in active] == ["p99_high"]

    def test_default_rules_match_default_objectives(self):
        names = {r.name for r in default_alert_rules()}
        assert names == {
            "latency_p99_high", "availability_budget_burn",
            "latency_slo_budget_burn",
        }
        objectives = {o.name for o in default_objectives()}
        for rule in default_alert_rules():
            if rule.kind == "budget_burn":
                assert rule.objective in objectives

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="x", metric="p99", above=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine((rule, rule))

    def test_merge_unions_active_and_sums_counters(self):
        a = {"rules": 2, "fired_total": 3, "resolved_total": 1,
             "active": [{"rule": "p99_high", "value": 2.0}]}
        b = {"rules": 2, "fired_total": 1, "resolved_total": 0,
             "active": [{"rule": "p99_high", "value": 9.0},
                        {"rule": "burn"}]}
        merged = merge_alert_snapshots([a, b])
        assert merged["fired_total"] == 4
        assert merged["resolved_total"] == 1
        assert [x["rule"] for x in merged["active"]] == ["burn", "p99_high"]


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestPromText:
    def _names(self, text):
        return [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]

    def test_names_are_valid_and_prefixed(self):
        assert prom_name("service.queue_depth") == "repro_service_queue_depth"
        assert prom_name("a b/c") == "repro_a_b_c"
        out = PromText()
        out.counter("plancache.hits", 3)
        out.gauge("service.queue_depth", 2, peak=7)
        out.summary(
            "service.latency_seconds",
            {"count": 4, "sum": 1.0, "p50": 0.2, "p95": 0.4, "p99": 0.4},
        )
        text = out.render()
        for name in self._names(text):
            assert PROM_NAME_RE.match(name), name

    def test_counter_gets_total_suffix(self):
        out = PromText()
        out.counter("service.compiles", 5)
        text = out.render()
        assert "# TYPE repro_service_compiles_total counter" in text
        assert "repro_service_compiles_total 5" in text

    def test_gauge_emits_peak_family(self):
        out = PromText()
        out.gauge("service.queue_depth", 2, peak=9)
        text = out.render()
        assert "repro_service_queue_depth 2" in text
        assert "repro_service_queue_depth_peak 9" in text

    def test_summary_quantiles(self):
        out = PromText()
        out.summary(
            "service.latency_seconds",
            {"count": 10, "sum": 2.5, "p50": 0.2, "p95": 0.4, "p99": 0.5},
        )
        text = out.render()
        assert 'repro_service_latency_seconds{quantile="0.5"} 0.2' in text
        assert 'repro_service_latency_seconds{quantile="0.99"} 0.5' in text
        assert "repro_service_latency_seconds_sum 2.5" in text
        assert "repro_service_latency_seconds_count 10" in text

    def test_empty_summary_keeps_family_without_quantiles(self):
        out = PromText()
        out.summary("idle.seconds", {"count": 0, "sum": 0.0, "p50": 0.0})
        text = out.render()
        assert "quantile" not in text
        assert "repro_idle_seconds_count 0" in text

    def test_duplicate_family_rejected(self):
        out = PromText()
        out.gauge("x", 1)
        with pytest.raises(ValueError, match="twice"):
            out.gauge("x", 2)

    def test_registry_round_trip(self):
        m = MetricsRegistry()
        m.counter("service.compiles").inc(2)
        m.gauge("service.queue_depth").set(3)
        m.histogram("service.wait_seconds").observe(0.25)
        text = registry_to_prom(m.snapshot())
        assert "repro_service_compiles_total 2" in text
        assert "repro_service_queue_depth 3" in text
        assert 'repro_service_wait_seconds{quantile="0.5"} 0.25' in text


# ---------------------------------------------------------------------------
# Status HTTP server
# ---------------------------------------------------------------------------
@pytest.mark.timeout(60)
class TestStatusServer:
    def _server(self, **overrides):
        providers = {
            "metrics": lambda: "repro_up 1\n",
            "slo": lambda: {"queue_depth": 0},
            "requests": lambda rid, limit: json.dumps(
                {"request_id": rid, "limit": limit}
            ) + "\n",
            "health": lambda: {"ok": True},
        }
        providers.update(overrides)
        return StatusServer(**providers)

    def test_endpoints_and_content_types(self):
        with self._server() as server:
            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            assert body == b"repro_up 1\n"
            status, ctype, body = _get(server.url + "/slo")
            assert json.loads(body) == {"queue_depth": 0}
            assert ctype.startswith("application/json")
            status, ctype, body = _get(server.url + "/healthz")
            assert json.loads(body) == {"ok": True}
            status, ctype, body = _get(
                server.url + "/requests?request_id=7&limit=3"
            )
            assert ctype.startswith("application/x-ndjson")
            assert json.loads(body) == {"request_id": 7, "limit": 3}

    def test_unknown_path_404_lists_endpoints(self):
        with self._server() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404
            assert "/metrics" in json.loads(err.value.read())["endpoints"]

    def test_bad_query_400(self):
        with self._server() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/requests?request_id=banana")
            assert err.value.code == 400

    def test_provider_exception_500_not_fatal(self):
        def boom():
            raise RuntimeError("provider bug")

        with self._server(health=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/healthz")
            assert err.value.code == 500
            assert "provider bug" in json.loads(err.value.read())["error"]
            # the server survives: the next scrape still works
            status, _, _ = _get(server.url + "/metrics")
            assert status == 200


# ---------------------------------------------------------------------------
# End-to-end request-id propagation through the service
# ---------------------------------------------------------------------------
@pytest.mark.timeout(120)
class TestRequestIdPropagation:
    def test_one_submit_one_correlated_trace(self):
        """Every event one submit causes — admission, plan-cache lookup,
        compile, execution, completion — carries the same request_id."""
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            req = edge_request(
                size=40, mode="execute",
                inputs=find_edges_inputs(40, 40, 8, 2),
            )
            ticket = svc.submit(req)
            assert ticket.result(timeout=60).ok
            timeline = svc.request_timeline(ticket.id)
        assert timeline, "a completed request must have a timeline"
        assert all(e.request_id == ticket.id for e in timeline)
        kinds = [e.kind for e in timeline]
        # the end-to-end order: admission -> dequeue -> cache lookup ->
        # compile -> execute -> completion
        assert kinds[0] == "service.admit"
        assert kinds[-1] == "service.done"
        for stage in (
            "service.start", "compile.start", "plancache.miss",
            "plancache.store", "compile.done", "service.compile_done",
            "service.execute_done",
        ):
            assert stage in kinds, f"missing {stage} in {kinds}"
        assert kinds.index("service.admit") < kinds.index("compile.start")
        assert kinds.index("compile.done") < kinds.index(
            "service.execute_done"
        )
        # seq strictly increases: one totally ordered trace
        seqs = [e.seq for e in timeline]
        assert seqs == sorted(seqs)

    def test_retry_events_stay_correlated(self):
        spec = FaultSpec(transfer_failure_rate=0.2, seed=3)
        config = ServiceConfig(workers=2, fault_spec=spec)
        with ExecutionService(config) as svc:
            ticket = svc.submit(edge_request(
                size=40, mode="execute",
                inputs=find_edges_inputs(40, 40, 8, 2),
            ))
            response = ticket.result(timeout=60)
            timeline = svc.request_timeline(ticket.id)
        assert response.ok and response.retries > 0
        retries = [e for e in timeline if e.kind == "service.retry"]
        faults = [e for e in timeline if e.kind == "sim.fault"]
        assert len(retries) == response.retries
        assert faults, "injected faults must surface as sim.fault events"
        assert all(e.request_id == ticket.id for e in retries + faults)

    def test_dedupe_join_references_leader(self, monkeypatch):
        """Single-flight followers' timelines must point at the leader
        whose compile produced the shared plan."""
        release = threading.Event()
        original = Framework.compile

        def blocking_compile(self, template, **kwargs):
            assert release.wait(30), "test forgot to release the leader"
            return original(self, template, **kwargs)

        monkeypatch.setattr(Framework, "compile", blocking_compile)
        with ExecutionService(ServiceConfig(workers=4)) as svc:
            tickets = [svc.submit(edge_request()) for _ in range(4)]

            def joined():
                return svc.metrics_snapshot()["counters"].get(
                    "service.singleflight_joins", 0
                ) == 3

            deadline = 10.0
            import time as _time
            t0 = _time.monotonic()
            while not joined() and _time.monotonic() - t0 < deadline:
                _time.sleep(0.005)
            assert joined()
            release.set()
            responses = [t.result(timeout=60) for t in tickets]
            timelines = {
                t.id: svc.request_timeline(t.id) for t in tickets
            }
        followers = [r for r in responses if r.deduped_from is not None]
        assert len(followers) == 3
        leader_ids = {r.deduped_from for r in followers}
        assert len(leader_ids) == 1
        (leader_id,) = leader_ids
        # the leader really did the compile...
        leader_kinds = [e.kind for e in timelines[leader_id]]
        assert "service.compile_done" in leader_kinds
        # ...and each follower's own trace references the leader
        for resp in followers:
            joins = [
                e for e in timelines[resp.request_id]
                if e.kind == "service.dedupe_join"
            ]
            assert len(joins) == 1
            assert joins[0].fields["leader_request_id"] == leader_id
            assert joins[0].request_id == resp.request_id

    def test_telemetry_disabled_is_silent_and_harmless(self):
        config = ServiceConfig(workers=2, telemetry_events=0)
        with ExecutionService(config) as svc:
            ticket = svc.submit(edge_request(size=40))
            assert ticket.result(timeout=60).ok
            assert svc.request_timeline(ticket.id) == []
            assert svc.events.total_emitted == 0

    def test_chrome_export_single_track(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            ticket = svc.submit(edge_request(size=40))
            assert ticket.result(timeout=60).ok
            trace = svc.request_chrome_trace(ticket.id)
        assert trace[0]["ph"] == "M"  # track metadata first
        track = trace[0]["pid"]
        assert all(e["pid"] == track for e in trace), "one correlated track"
        spans = [e for e in trace if e["ph"] == "X"]
        assert spans, "seconds-carrying events must become duration spans"
        assert json.dumps(trace)  # JSON-serializable as a whole


# ---------------------------------------------------------------------------
# Service exposition endpoints
# ---------------------------------------------------------------------------
@pytest.mark.timeout(120)
class TestServiceStatusEndpoint:
    def test_metrics_slo_requests_health(self):
        with ExecutionService(ServiceConfig(workers=2)) as svc:
            server = svc.serve_status()
            tickets = [
                svc.submit(edge_request(size=(48, 64)[i % 2]))
                for i in range(6)
            ]
            assert all(t.result(timeout=60).ok for t in tickets)

            _, ctype, body = _get(server.url + "/metrics")
            assert ctype.startswith("text/plain; version=0.0.4")
            prom = body.decode()
            assert "repro_service_queue_depth " in prom
            assert 'repro_service_latency_seconds{quantile="0.5"}' in prom
            assert 'repro_service_latency_seconds{quantile="0.99"}' in prom
            assert "repro_plancache_hits_total " in prom
            assert "repro_service_submitted_total 6" in prom
            for line in prom.splitlines():
                if line and not line.startswith("#"):
                    name = line.split("{")[0].split(" ")[0]
                    assert PROM_NAME_RE.match(name), line

            _, _, body = _get(server.url + "/slo")
            snap = json.loads(body)
            assert snap["window"]["count"] == 6
            assert snap["counters"]["service.completed"] == 6
            assert snap["shards"][0]["shard"] == "local/0"
            assert {o["name"] for o in snap["slo"]["objectives"]} == {
                "availability", "latency_1s",
            }

            rid = tickets[0].id
            _, _, body = _get(server.url + f"/requests?request_id={rid}")
            lines = body.decode().strip().splitlines()
            assert lines
            assert all(
                json.loads(line)["request_id"] == rid for line in lines
            )

            _, _, body = _get(server.url + "/healthz")
            assert json.loads(body)["ok"] is True

            with pytest.raises(RuntimeError, match="already running"):
                svc.serve_status()
        # close() shut the server down
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/healthz", timeout=2)

    def test_custom_slo_objectives_flow_through(self):
        config = ServiceConfig(
            workers=1,
            slo_objectives=(SloObjective(name="tight", target=0.5),),
        )
        with ExecutionService(config) as svc:
            svc.submit(edge_request(size=40)).result(timeout=60)
            snap = svc.live_snapshot()
            prom = svc.prom_text()
        assert [o["name"] for o in snap["slo"]["objectives"]] == ["tight"]
        assert "repro_slo_tight_compliance 1" in prom

    def test_event_bus_health_exposed_in_prom(self):
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            svc.submit(edge_request(size=40)).result(timeout=60)
            prom = svc.prom_text()
        assert "repro_events_emitted_total " in prom
        assert "repro_events_dropped_total 0" in prom
        assert "repro_events_capacity 4096" in prom
        assert "repro_alerts_active 0" in prom
        assert "repro_alerts_fired_total 0" in prom

    def test_alert_rules_fire_through_the_service(self):
        """An impossible latency bound fires on the first completion;
        the transition lands in the event bus and the snapshot."""
        config = ServiceConfig(
            workers=1,
            alert_rules=(AlertRule(
                name="any_latency", metric="max", above=0.0,
                description="fires on any completed request",
            ),),
        )
        with ExecutionService(config) as svc:
            assert svc.submit(edge_request(size=40)).result(timeout=60).ok
            snap = svc.live_snapshot()
            prom = svc.prom_text()
            firing = svc.events.events(kind="alert.firing")
        alerts = snap["alerts"]
        assert [a["rule"] for a in alerts["active"]] == ["any_latency"]
        assert alerts["fired_total"] == 1
        assert "repro_alerts_active 1" in prom
        assert "repro_alerts_fired_total 1" in prom
        assert len(firing) == 1
        assert firing[0].fields["rule"] == "any_latency"
        assert firing[0].fields["rule_kind"] == "threshold"
