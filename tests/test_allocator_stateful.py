"""Stateful property test for the device memory allocator.

Drives random alloc/free sequences against a reference model and checks
the allocator's global invariants after every operation: allocations
never overlap, stay in bounds, accounting matches, and freeing
everything restores a single maximal free block (perfect coalescing).
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.gpusim import DeviceAllocator, OutOfDeviceMemoryError

CAPACITY = 1 << 16


class AllocatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.alloc = DeviceAllocator(CAPACITY, alignment=16)
        self.live: dict[int, int] = {}  # offset -> rounded size

    @rule(size=st.integers(0, CAPACITY // 4))
    def allocate(self, size):
        try:
            offset = self.alloc.alloc(size)
        except OutOfDeviceMemoryError:
            # Legitimate only if no free *contiguous* block fits.
            need = self.alloc._round(size)
            assert self.alloc.largest_free_block < need
            return
        need = self.alloc._round(size)
        assert offset % 16 == 0
        assert 0 <= offset and offset + need <= CAPACITY
        for o, s in self.live.items():
            assert offset + need <= o or o + s <= offset, "overlap!"
        self.live[offset] = need

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        offset = data.draw(st.sampled_from(sorted(self.live)))
        self.alloc.free(offset)
        del self.live[offset]

    @invariant()
    def accounting_matches(self):
        assert self.alloc.in_use == sum(self.live.values())
        assert self.alloc.free_bytes == CAPACITY - self.alloc.in_use
        assert 0.0 <= self.alloc.fragmentation() <= 1.0

    @invariant()
    def empty_means_coalesced(self):
        if not self.live:
            assert self.alloc.largest_free_block == CAPACITY


TestAllocatorStateful = AllocatorMachine.TestCase
