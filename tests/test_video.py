"""Tests for the video streaming template."""

import numpy as np
import pytest

from repro.core import Framework
from repro.gpusim import GpuDevice, MB
from repro.runtime import reference_execute
from repro.templates import video_edge_graph, video_edge_inputs


class TestGraph:
    def test_structure(self):
        g = video_edge_graph(5, 64, 48, 9, 4)
        # Per frame: 2 convs + 2 remaps + combine.
        assert len(g.ops) == 5 * 5
        assert len(g.template_outputs()) == 5
        assert len([d for d in g.template_inputs() if d.startswith("F")]) == 5
        g.validate()

    def test_kernels_shared_across_frames(self):
        g = video_edge_graph(4, 32, 32, 5, 4)
        assert len(g.consumers["K1"]) == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            video_edge_graph(0, 32, 32)
        with pytest.raises(ValueError):
            video_edge_graph(2, 32, 32, num_orientations=1)

    def test_inputs_cover_graph(self):
        g = video_edge_graph(3, 24, 24, 5, 4)
        inputs = video_edge_inputs(3, 24, 24, 5, 4)
        roots = {d for d, ds in g.data.items() if ds.is_input}
        assert set(inputs) == roots

    def test_frames_drift_but_differ(self):
        inputs = video_edge_inputs(4, 16, 16, 5, 4, seed=2)
        assert not np.array_equal(inputs["F0"], inputs["F3"])


class TestStreaming:
    def test_reaches_io_bound_without_splitting(self):
        """A clip 18x larger than the device streams at the I/O bound."""
        g = video_edge_graph(24, 256, 256, kernel_size=9)
        dev = GpuDevice(name="tiny-vram", memory_bytes=2 * MB)
        compiled = Framework(dev).compile(g)
        assert not compiled.split_report.any_split
        assert compiled.transfer_floats() == g.io_size()

    def test_numerics_under_pressure(self):
        g = video_edge_graph(4, 64, 64, 5, 4)
        inputs = video_edge_inputs(4, 64, 64, 5, 4, seed=7)
        ref = reference_execute(g, inputs)
        fw = Framework(GpuDevice(name="s", memory_bytes=100 * 1024))
        res = fw.execute(fw.compile(g), inputs)
        for k in ref:
            np.testing.assert_allclose(
                res.outputs[k], ref[k], rtol=1e-3, atol=1e-4
            )

    def test_per_frame_outputs_independent(self):
        """Each output frame equals the single-frame template's result."""
        from repro.templates import find_edges_graph

        inputs = video_edge_inputs(3, 32, 32, 5, 4, seed=9)
        g = video_edge_graph(3, 32, 32, 5, 4)
        clip = reference_execute(g, inputs)
        single = find_edges_graph(32, 32, 5, 4)
        for t in range(3):
            one = reference_execute(
                single,
                {"Img": inputs[f"F{t}"], "K1": inputs["K1"], "K2": inputs["K2"]},
            )["Edg"]
            np.testing.assert_allclose(clip[f"E{t}"], one, rtol=1e-4, atol=1e-5)

    def test_longer_clip_transfers_scale_linearly(self):
        dev = GpuDevice(name="s2", memory_bytes=2 * MB)
        vols = []
        for n in (8, 16):
            g = video_edge_graph(n, 128, 128, 9, 4)
            vols.append(Framework(dev).compile(g).transfer_floats())
        # Doubling frames doubles transfers (minus the shared kernels).
        assert vols[1] == pytest.approx(2 * vols[0], rel=0.01)
