"""Tests for the exact Figure-5 Pseudo-Boolean scheduling."""

import pytest

from repro.core import (
    OperatorGraph,
    PBInfeasibleError,
    PBScheduler,
    dfs_schedule,
    linear_extensions,
    pb_joint_optimum,
    pb_optimal_plan,
    schedule_transfers,
    validate_plan,
)

from .test_transfers import BAD_ORDER, GOOD_ORDER, fig3_graph


def tiny_chain():
    """in -> a -> b -> out; sizes 2,1,1,1; pure pipeline."""
    g = OperatorGraph("tiny")
    g.add_data("in", (2, 1), is_input=True)
    g.add_data("a", (1, 1))
    g.add_data("b", (1, 1))
    g.add_data("out", (1, 1), is_output=True)
    g.add_operator("o1", "remap", ["in"], ["a"])
    g.add_operator("o2", "tanh", ["a"], ["b"])
    g.add_operator("o3", "remap", ["b"], ["out"])
    return g


class TestChain:
    def test_chain_optimum_is_io_bound(self):
        """With enough memory, optimal transfers = input + output."""
        g = tiny_chain()
        res = pb_optimal_plan(g, capacity_floats=10)
        assert res.transfer_floats == 3  # in(2) + out(1)
        validate_plan(res.plan, g, 10)

    def test_chain_under_pressure(self):
        """Capacity 3: still only in+out need to move (chain streams)."""
        g = tiny_chain()
        res = pb_optimal_plan(g, capacity_floats=3)
        assert res.transfer_floats == 3

    def test_capacity_too_small_infeasible(self):
        g = tiny_chain()
        with pytest.raises(PBInfeasibleError):
            PBScheduler(g, 2).solve()  # o1 needs in(2)+a(1)=3

    def test_plan_validates(self):
        g = tiny_chain()
        res = pb_optimal_plan(g, 4)
        validate_plan(res.plan, g, 4)
        assert res.op_order == ["o1", "o2", "o3"]


class TestFigure6:
    """The paper's worked PB example (Figures 5 and 6)."""

    def test_joint_optimum_is_6(self):
        """Exact joint optimum of the Figure-3 graph at capacity 5.

        The paper's Figure 6 narrates an 8-unit plan as "the optimal
        schedule obtained by solving the Pseudo-Boolean formulation";
        solving the same formulation exactly (both by free-schedule
        search and by exhaustive enumeration over all 264 linear
        extensions) yields 6 units — see EXPERIMENTS.md.
        """
        g = fig3_graph()
        res = pb_optimal_plan(g, 5)
        assert res.transfer_floats == 6
        validate_plan(res.plan, g, 5)

    def test_enumeration_agrees(self):
        g = fig3_graph()
        res = pb_joint_optimum(g, 5)
        assert res.transfer_floats == 6

    def test_fixed_order_optima(self):
        g = fig3_graph()
        for order in (GOOD_ORDER, BAD_ORDER):
            res = pb_optimal_plan(g, 5, fixed_order=order)
            assert res.transfer_floats == 6
            validate_plan(res.plan, g, 5)

    def test_pb_never_worse_than_heuristic(self):
        g = fig3_graph()
        heuristic = schedule_transfers(g, dfs_schedule(g), 5)
        res = pb_optimal_plan(g, 5)
        assert res.transfer_floats <= heuristic.transfer_floats(g)

    def test_upper_bound_seeding(self):
        g = fig3_graph()
        res = pb_optimal_plan(g, 5, upper_bound_floats=6, seed_from_heuristic=False)
        assert res.transfer_floats == 6

    def test_too_tight_upper_bound(self):
        g = fig3_graph()
        with pytest.raises(PBInfeasibleError):
            pb_optimal_plan(g, 5, upper_bound_floats=4, seed_from_heuristic=False)

    def test_more_memory_reaches_io_bound(self):
        """Capacity 12 holds everything: transfers = Im + Ep + Eq = 4."""
        g = fig3_graph()
        res = pb_optimal_plan(g, 12)
        assert res.transfer_floats == 4


class TestFixedOrder:
    def test_must_cover_ops(self):
        g = tiny_chain()
        with pytest.raises(ValueError):
            PBScheduler(g, 10, fixed_order=["o1", "o2"])

    def test_solver_stats_reported(self):
        g = tiny_chain()
        res = pb_optimal_plan(g, 10)
        assert res.num_vars > 0
        assert res.num_constraints > 0
        assert res.solve_calls >= 1


class TestLinearExtensions:
    def test_chain_has_one(self):
        assert len(list(linear_extensions(tiny_chain()))) == 1

    def test_independent_ops_factorial(self):
        g = OperatorGraph()
        for i in range(3):
            g.add_data(f"i{i}", (1, 1), is_input=True)
            g.add_data(f"o{i}", (1, 1), is_output=True)
            g.add_operator(f"op{i}", "remap", [f"i{i}"], [f"o{i}"])
        assert len(list(linear_extensions(g))) == 6

    def test_fig3_count(self):
        assert len(list(linear_extensions(fig3_graph()))) == 264

    def test_limit_respected(self):
        g = fig3_graph()
        assert len(list(linear_extensions(g, limit=10))) == 10

    def test_all_are_topological(self):
        g = fig3_graph()
        for order in linear_extensions(g, limit=50):
            pos = {o: i for i, o in enumerate(order)}
            for o in g.ops:
                for p in g.op_predecessors(o):
                    assert pos[p] < pos[o]

    def test_joint_enumeration_guard(self):
        g = fig3_graph()
        with pytest.raises(RuntimeError, match="linear extensions"):
            pb_joint_optimum(g, 5, max_orders=10)


class TestHeuristicVsPBRandom:
    """The fixed-order PB optimum never exceeds the heuristic's volume —
    a strong soundness check of the transfer scheduler on random DAGs."""

    def test_random_small_graphs(self):
        import random

        rng = random.Random(4)
        for trial in range(8):
            g = OperatorGraph(f"hvp{trial}")
            g.add_data("in", (2, 1), is_input=True)
            avail = ["in"]
            for i in range(rng.randint(3, 6)):
                name = f"d{i}"
                g.add_data(name, (rng.choice([1, 2]), 1))
                srcs = rng.sample(avail, min(len(avail), rng.choice([1, 2])))
                g.add_operator(
                    f"o{i}", "remap" if len(srcs) == 1 else "max", srcs, [name]
                )
                avail.append(name)
                avail = avail[-3:]
            g.data[avail[-1]].is_output = True
            # prune orphan sinks
            for d, ds in list(g.data.items()):
                if not ds.is_input and not ds.is_output and not g.consumers.get(d):
                    ds.is_output = True
            g.validate()
            cap = max(g.max_footprint(), 4)
            order = dfs_schedule(g)
            heuristic = schedule_transfers(g, order, cap)
            res = pb_optimal_plan(g, cap, fixed_order=order)
            assert res.transfer_floats <= heuristic.transfer_floats(g), trial
            validate_plan(res.plan, g, cap)
