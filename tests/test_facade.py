"""Public API facade and deprecation shims (repro.api, repro._compat).

The redesign contract: the keyword-only facade is the stable surface,
the old positional call shapes keep working behind ``DeprecationWarning``
shims, and both produce **byte-identical** plans (checked through the
canonical ``plan_to_dict`` JSON serialization).
"""

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core import CompileOptions, Framework, run_template
from repro.core.serialize import plan_to_dict
from repro.gpusim import (
    TESLA_C870,
    XEON_WORKSTATION,
    GpuDevice,
    homogeneous_group,
)
from repro.multigpu import MultiCompiledTemplate, compile_multi
from repro.runtime import reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

DEV = GpuDevice(name="facade-dev", memory_bytes=8 * 1024 * 1024)


def graph():
    return find_edges_graph(64, 64, 8, 2)


def plan_bytes(compiled) -> bytes:
    return json.dumps(plan_to_dict(compiled.plan), sort_keys=True).encode()


class TestFacadeDispatch:
    def test_compile_single_device(self):
        compiled = repro.compile(graph(), device=DEV)
        assert compiled.device is DEV
        assert compiled.plan.launches()

    def test_compile_group(self):
        compiled = repro.compile(graph(), group=homogeneous_group(DEV, 2))
        assert isinstance(compiled, MultiCompiledTemplate)

    def test_device_and_group_rejected(self):
        with pytest.raises(TypeError, match="exactly one"):
            repro.compile(graph(), device=DEV, group=homogeneous_group(DEV, 2))

    def test_neither_device_nor_group_rejected(self):
        with pytest.raises(TypeError, match="exactly one"):
            repro.compile(graph())

    def test_execute_dispatches_on_artifact_type(self):
        g = graph()
        inputs = find_edges_inputs(64, 64, 8, 2)
        reference = reference_execute(g, inputs)
        single = repro.execute(repro.compile(g, device=DEV), inputs)
        multi = repro.execute(
            repro.compile(g, group=homogeneous_group(DEV, 2)), inputs
        )
        for name, arr in reference.items():
            np.testing.assert_allclose(single.outputs[name], arr, atol=1e-4)
            np.testing.assert_allclose(multi.outputs[name], arr, atol=1e-4)

    def test_simulate_dispatches_on_artifact_type(self):
        g = graph()
        assert repro.simulate(repro.compile(g, device=DEV)).total_time > 0
        assert (
            repro.simulate(
                repro.compile(g, group=homogeneous_group(DEV, 2))
            ).total_time
            > 0
        )

    def test_compile_matches_framework_byte_for_byte(self):
        via_facade = repro.compile(
            graph(), device=DEV, host=XEON_WORKSTATION, plan_cache=False
        )
        via_framework = Framework(
            DEV, host=XEON_WORKSTATION, plan_cache=False
        ).compile(graph())
        assert plan_bytes(via_facade) == plan_bytes(via_framework)

    def test_top_level_exports(self):
        for name in (
            "compile", "compile_multi", "execute", "simulate",
            "CompileOptions", "ServiceConfig", "ExecutionService",
            "ServiceRequest",
        ):
            assert hasattr(repro, name), name


class TestCompileOptionsSurface:
    def test_keyword_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = CompileOptions(scheduler="bfs", eviction_policy="lru")
        assert opts.scheduler == "bfs"

    def test_frozen(self):
        opts = CompileOptions()
        with pytest.raises(Exception):
            opts.scheduler = "bfs"

    def test_positional_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="CompileOptions"):
            opts = CompileOptions("bfs")
        assert opts.scheduler == "bfs"

    def test_positional_equals_keyword(self):
        with pytest.warns(DeprecationWarning):
            legacy = CompileOptions("bfs", "lru")
        assert legacy == CompileOptions(scheduler="bfs", eviction_policy="lru")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(TypeError, match="scheduler"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            CompileOptions("bfs", scheduler="dfs")

    def test_too_many_positionals_rejected(self):
        names = [
            "x" for _ in range(20)
        ]
        with pytest.raises(TypeError, match="positional"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            CompileOptions(*names)


class TestLegacyShims:
    def test_framework_positional_host_warns_identical_plan(self):
        with pytest.warns(DeprecationWarning, match="Framework"):
            legacy = Framework(DEV, XEON_WORKSTATION, plan_cache=False)
        modern = Framework(DEV, host=XEON_WORKSTATION, plan_cache=False)
        assert plan_bytes(legacy.compile(graph())) == plan_bytes(
            modern.compile(graph())
        )

    def test_framework_positional_options_warns_identical_plan(self):
        opts = CompileOptions(scheduler="bfs")
        with pytest.warns(DeprecationWarning):
            legacy = Framework(DEV, XEON_WORKSTATION, opts, plan_cache=False)
        modern = Framework(
            DEV, host=XEON_WORKSTATION, options=opts, plan_cache=False
        )
        assert plan_bytes(legacy.compile(graph())) == plan_bytes(
            modern.compile(graph())
        )

    def test_framework_keyword_form_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Framework(DEV, host=XEON_WORKSTATION, options=CompileOptions())

    def test_framework_duplicate_host_rejected(self):
        with pytest.raises(TypeError, match="host"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            Framework(DEV, XEON_WORKSTATION, host=XEON_WORKSTATION)

    def test_compile_multi_positional_warns_identical_plan(self):
        group = homogeneous_group(DEV, 2)
        with pytest.warns(DeprecationWarning, match="compile_multi"):
            legacy = compile_multi(
                graph(), group, XEON_WORKSTATION, plan_cache=False
            )
        modern = compile_multi(
            graph(), group, host=XEON_WORKSTATION, plan_cache=False
        )
        assert plan_bytes(legacy) == plan_bytes(modern)

    def test_run_template_positional_warns_same_outputs(self):
        g = graph()
        inputs = find_edges_inputs(64, 64, 8, 2)
        with pytest.warns(DeprecationWarning, match="run_template"):
            legacy = run_template(g, inputs, DEV, XEON_WORKSTATION)
        modern = run_template(g, inputs, DEV, host=XEON_WORKSTATION)
        for name in modern.outputs:
            np.testing.assert_array_equal(
                legacy.outputs[name], modern.outputs[name]
            )

    def test_facade_quickstart_on_real_preset(self):
        compiled = repro.compile(graph(), device=TESLA_C870)
        result = repro.execute(compiled, find_edges_inputs(64, 64, 8, 2))
        assert "Edg" in result.outputs


class TestSubmitterContract:
    """One submit surface across the serving tier (repro.service).

    Every front end satisfies the :class:`repro.service.Submitter`
    protocol, and the pre-protocol *expanded* call shape —
    ``submit(template, device=...)`` — keeps working behind a
    ``DeprecationWarning``, producing byte-identical results.
    """

    def test_every_service_satisfies_the_protocol(self):
        from repro.service import (
            AsyncExecutionService,
            ExecutionService,
            ServiceConfig,
            ShardedExecutionService,
            Submitter,
        )

        cfg = ServiceConfig(workers=1)
        services = [
            ExecutionService(cfg),
            AsyncExecutionService(cfg),
            ShardedExecutionService(cfg, shards=1),
        ]
        try:
            for svc in services:
                assert isinstance(svc, Submitter), type(svc).__name__
        finally:
            for svc in services:
                svc.close()

    def test_expanded_shape_warns_identical_result(self):
        from repro.service import ExecutionService, ServiceConfig, ServiceRequest

        with ExecutionService(ServiceConfig(workers=2)) as svc:
            with pytest.warns(DeprecationWarning, match="submit"):
                legacy = svc.submit(
                    graph(), device=DEV, host=XEON_WORKSTATION
                ).result(timeout=60)
            modern = svc.submit(ServiceRequest(
                template=graph(), device=DEV, host=XEON_WORKSTATION
            )).result(timeout=60)
        assert legacy.ok and modern.ok
        assert plan_bytes(legacy.value) == plan_bytes(modern.value)

    def test_expanded_keyword_shape_warns_identical_result(self):
        from repro.service import ExecutionService, ServiceConfig, ServiceRequest

        with ExecutionService(ServiceConfig(workers=2)) as svc:
            with pytest.warns(DeprecationWarning, match="ServiceRequest"):
                legacy = svc.submit(
                    template=graph(), device=DEV, host=XEON_WORKSTATION
                ).result(timeout=60)
            modern = svc.submit(ServiceRequest(
                template=graph(), device=DEV, host=XEON_WORKSTATION
            )).result(timeout=60)
        assert plan_bytes(legacy.value) == plan_bytes(modern.value)

    def test_canonical_shape_is_silent(self):
        from repro.service import ExecutionService, ServiceConfig, ServiceRequest

        with ExecutionService(ServiceConfig(workers=1)) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                resp = svc.submit(ServiceRequest(
                    template=graph(), device=DEV, host=XEON_WORKSTATION
                )).result(timeout=60)
        assert resp.ok

    def test_request_plus_fields_rejected(self):
        from repro.service import ExecutionService, ServiceConfig, ServiceRequest

        req = ServiceRequest(template=graph(), device=DEV)
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            with pytest.raises(TypeError, match="alongside a ServiceRequest"):
                svc.submit(req, mode="simulate")

    def test_batch_through_submit_rejected(self):
        from repro.service import ExecutionService, ServiceConfig, ServiceRequest

        reqs = [ServiceRequest(template=graph(), device=DEV)]
        with ExecutionService(ServiceConfig(workers=1)) as svc:
            with pytest.raises(TypeError, match="submit_all"):
                svc.submit(reqs)

    def test_empty_submit_rejected(self):
        from repro.service import ExecutionService, ServiceConfig

        with ExecutionService(ServiceConfig(workers=1)) as svc:
            with pytest.raises(TypeError, match="missing a ServiceRequest"):
                svc.submit()

    def test_async_expanded_shape_warns_identical_result(self):
        from repro.service import (
            AsyncExecutionService,
            ServiceConfig,
            ServiceRequest,
        )

        with AsyncExecutionService(ServiceConfig(workers=2)) as svc:
            with pytest.warns(DeprecationWarning, match="submit_nowait"):
                legacy = svc.submit_nowait(
                    graph(), device=DEV, host=XEON_WORKSTATION
                ).result(timeout=60)
            modern = svc.submit_nowait(ServiceRequest(
                template=graph(), device=DEV, host=XEON_WORKSTATION
            )).result(timeout=60)
        assert plan_bytes(legacy.value) == plan_bytes(modern.value)

    def test_sharded_expanded_shape_warns(self):
        from repro.service import ServiceConfig, ShardedExecutionService

        with ShardedExecutionService(
            ServiceConfig(workers=1), shards=1
        ) as svc:
            with pytest.warns(DeprecationWarning, match="submit"):
                resp = svc.submit(
                    graph(), device=DEV, host=XEON_WORKSTATION
                ).result(timeout=120)
        assert resp.ok
