"""Tests for the operator-graph IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DataStructure,
    GraphError,
    Operator,
    OperatorGraph,
    Slot,
    op_out_specs,
    op_slots,
    output_size,
    slot_size,
)


def diamond():
    """Img -> (A, B) -> C, the smallest interesting DAG."""
    g = OperatorGraph("diamond")
    g.add_data("Img", (4, 4), is_input=True)
    g.add_data("X", (4, 4))
    g.add_data("Y", (4, 4))
    g.add_data("Out", (4, 4), is_output=True)
    g.add_operator("A", "remap", ["Img"], ["X"])
    g.add_operator("B", "remap", ["Img"], ["Y"])
    g.add_operator("C", "max", ["X", "Y"], ["Out"])
    return g


class TestDataStructure:
    def test_size_and_rows(self):
        ds = DataStructure("a", (3, 5))
        assert ds.size == 15
        assert ds.rows == 3

    def test_scalar_shape(self):
        ds = DataStructure("b", ())
        assert ds.size == 1
        assert ds.rows == 1

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            DataStructure("c", (-1, 2))


class TestOperator:
    def test_requires_outputs(self):
        with pytest.raises(ValueError):
            Operator("o", "remap", ("a",), ())

    def test_touched_deduplicates(self):
        op = Operator("o", "add", ("a", "b", "a"), ("c",))
        assert op.touched() == ("a", "b", "c")


class TestConstruction:
    def test_duplicate_data_rejected(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1))
        with pytest.raises(GraphError):
            g.add_data("a", (2, 2))

    def test_duplicate_operator_rejected(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.add_operator("A", "remap", ["Img"], ["X"])

    def test_unknown_input_rejected(self):
        g = OperatorGraph()
        g.add_data("out", (1, 1))
        with pytest.raises(GraphError):
            g.add_operator("o", "remap", ["nope"], ["out"])

    def test_double_producer_rejected(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1), is_input=True)
        g.add_data("b", (1, 1))
        g.add_operator("p1", "remap", ["a"], ["b"])
        with pytest.raises(GraphError):
            g.add_operator("p2", "remap", ["a"], ["b"])

    def test_template_input_cannot_be_output(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1), is_input=True)
        g.add_data("b", (1, 1), is_input=True)
        with pytest.raises(GraphError):
            g.add_operator("o", "remap", ["a"], ["b"])


class TestDependencies:
    def test_predecessors_successors(self):
        g = diamond()
        assert g.op_predecessors("C") == ["A", "B"]
        assert g.op_successors("A") == ["C"]
        assert g.op_predecessors("A") == []

    def test_roots_leaves(self):
        g = diamond()
        assert g.roots() == ["A", "B"]
        assert g.leaves() == ["C"]

    def test_template_io(self):
        g = diamond()
        assert g.template_inputs() == ["Img"]
        assert g.template_outputs() == ["Out"]

    def test_topological_order(self):
        g = diamond()
        order = g.topological_order()
        assert order.index("A") < order.index("C")
        assert order.index("B") < order.index("C")

    def test_cycle_detected(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1), is_input=True)
        g.add_data("b", (1, 1))
        g.add_data("c", (1, 1))
        g.add_operator("p", "add", ["a", "c"], ["b"])
        g.add_operator("q", "remap", ["b"], ["c"])
        with pytest.raises(GraphError):
            g.topological_order()


class TestValidate:
    def test_valid_graph(self):
        diamond().validate()

    def test_orphan_rejected(self):
        g = diamond()
        g.add_data("stray", (2, 2))
        with pytest.raises(GraphError, match="orphan"):
            g.validate()

    def test_consumed_but_never_produced(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1))  # not an input!
        g.add_data("b", (1, 1))
        g.add_operator("o", "remap", ["a"], ["b"])
        with pytest.raises(GraphError):
            g.validate()

    def test_chunk_without_range_rejected(self):
        g = diamond()
        g.data["X"].parent = "Img"
        with pytest.raises(GraphError):
            g.validate()

    def test_virtual_must_be_unwired(self):
        g = diamond()
        g.data["X"].virtual = True
        with pytest.raises(GraphError, match="virtual"):
            g.validate()


class TestFootprints:
    def test_op_footprint(self):
        g = diamond()
        assert g.op_footprint("A") == 32  # Img + X
        assert g.op_footprint("C") == 48  # X + Y + Out

    def test_max_footprint(self):
        assert diamond().max_footprint() == 48

    def test_total_and_io(self):
        g = diamond()
        assert g.total_data_size() == 64
        assert g.io_size() == 32

    def test_virtual_excluded(self):
        g = diamond()
        g.add_data("V", (100, 100), virtual=True)
        assert g.total_data_size() == 64

    def test_stats_keys(self):
        s = diamond().stats()
        assert s["operators"] == 3
        assert s["io_floats"] == 32


class TestRewiring:
    def test_set_op_io(self):
        g = diamond()
        g.add_data("Y2", (4, 4))
        g.set_op_io("B", ["Img"], ["Y2"])
        assert g.producer["Y2"] == "B"
        assert "Y" not in g.producer
        assert g.consumers["Img"] == ["A", "B"]

    def test_set_op_io_conflict(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.set_op_io("B", ["Img"], ["X"])  # X produced by A

    def test_remove_operator(self):
        g = diamond()
        g.remove_operator("C")
        assert "C" not in g.ops
        assert g.consumers["X"] == []

    def test_remove_data_guards(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.remove_data("X")  # produced
        g.remove_operator("C")
        g.remove_operator("A")
        g.remove_data("X")
        assert "X" not in g.data

    def test_children_index(self):
        g = OperatorGraph()
        g.add_data("root", (4, 2), virtual=True)
        g.add_data("c1", (2, 2), parent="root", row_range=(0, 2))
        g.add_data("c2", (2, 2), parent="root", row_range=(2, 4))
        assert g.children["root"] == ["c1", "c2"]
        g.remove_data("c1")
        assert g.children["root"] == ["c2"]


class TestCopy:
    def test_copy_is_deep(self):
        g = diamond()
        h = g.copy()
        h.remove_operator("C")
        assert "C" in g.ops
        h.data["X"].shape = (9, 9)
        assert g.data["X"].shape == (4, 4)

    def test_copy_preserves_params(self):
        g = diamond()
        g.ops["A"].params["slots"] = [Slot("Img", None, ["Img"])]
        h = g.copy()
        h.ops["A"].params["slots"][0].chunks.append("zzz")
        assert g.ops["A"].params["slots"][0].chunks == ["Img"]


class TestSlotHelpers:
    def test_default_slots(self):
        g = diamond()
        slots = op_slots(g.ops["C"], g)
        assert [s.root for s in slots] == ["X", "Y"]
        assert all(s.rows is None for s in slots)

    def test_default_out_specs(self):
        g = diamond()
        specs = op_out_specs(g.ops["C"], g)
        assert specs[0].root == "Out"
        assert specs[0].rng == (0, 4)
        assert specs[0].chunks == [("Out", (0, 4))]

    def test_slot_size_full_and_ranged(self):
        g = diamond()
        assert slot_size(g.ops["A"], g, 0) == 16
        g.ops["A"].params["slots"] = [Slot("Img", (1, 3), ["Img"])]
        assert slot_size(g.ops["A"], g, 0) == 8

    def test_output_size(self):
        g = diamond()
        assert output_size(g.ops["C"], g) == 16

    def test_fresh_name(self):
        g = diamond()
        assert g.fresh_name("new") == "new"
        assert g.fresh_name("Img") == "Img#1"
        g.add_data("Img#1", (1, 1), is_input=True)
        assert g.fresh_name("Img") == "Img#2"


@settings(max_examples=60, deadline=None)
@given(
    n_layers=st.integers(1, 5),
    width=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_random_layered_graphs_are_valid(n_layers, width, seed):
    """Random layered DAGs satisfy all IR invariants and topo-sort."""
    import random

    rng = random.Random(seed)
    g = OperatorGraph("rand")
    prev = []
    for i in range(width):
        g.add_data(f"in{i}", (4, 4), is_input=True)
        prev.append(f"in{i}")
    for layer in range(n_layers):
        cur = []
        for i in range(width):
            name = f"d{layer}_{i}"
            g.add_data(name, (4, 4), is_output=(layer == n_layers - 1))
            srcs = rng.sample(prev, k=rng.randint(1, len(prev)))
            kind = "remap" if len(srcs) == 1 else "max"
            g.add_operator(f"o{layer}_{i}", kind, srcs, [name])
            cur.append(name)
        prev = cur
    g.validate()
    order = g.topological_order()
    assert len(order) == len(g.ops)
    pos = {o: i for i, o in enumerate(order)}
    for o in g.ops:
        for p in g.op_predecessors(o):
            assert pos[p] < pos[o]
