"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_parsing(self):
        args = build_parser().parse_args(
            ["info", "--size", "640x480"]
        )
        assert args.size == (480, 640)  # (height, width)

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--size", "foo"])

    def test_device_choices_documented(self):
        args = build_parser().parse_args(
            ["info", "--device", "geforce_8800_gtx"]
        )
        assert args.device == "geforce_8800_gtx"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--template", "edge", "--size", "256x256"]) == 0
        out = capsys.readouterr().out
        assert "operators      : 5" in out
        assert "I/O lower bound" in out

    def test_info_cnn(self, capsys):
        assert main(["info", "--template", "small-cnn", "--size", "96x96"]) == 0
        out = capsys.readouterr().out
        assert "operators      : 1632" in out

    def test_compile(self, capsys):
        rc = main(
            [
                "compile",
                "--template", "edge",
                "--size", "512x512",
                "--device", "geforce_8800_gtx",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "transfer_floats" in out
        assert "simulated time" in out

    def test_compile_timeline_and_save(self, capsys, tmp_path):
        path = os.fspath(tmp_path / "plan.json")
        rc = main(
            [
                "compile",
                "--size", "128x128",
                "--timeline",
                "--save", path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "exec" in out  # timeline printed
        raw = json.load(open(path))
        assert raw["format_version"] == 1
        assert raw["plan"]["steps"]

    def test_run_with_verify(self, capsys):
        rc = main(
            [
                "run",
                "--template", "edge",
                "--size", "96x96",
                "--kernel", "5",
                "--verify",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_codegen_python_stdout(self, capsys):
        rc = main(["codegen", "--size", "64x64", "--kernel", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Generated hybrid CPU/GPU program" in out

    def test_codegen_cuda_to_file(self, capsys, tmp_path):
        path = os.fspath(tmp_path / "out.cu")
        rc = main(
            [
                "codegen",
                "--size", "64x64",
                "--kernel", "3",
                "--lang", "cuda",
                "-o", path,
            ]
        )
        assert rc == 0
        src = open(path).read()
        assert "__global__" in src

    def test_scheduler_and_eviction_flags(self, capsys):
        rc = main(
            [
                "compile",
                "--size", "128x128",
                "--scheduler", "bfs",
                "--eviction", "lru",
                "--headroom", "2",
            ]
        )
        assert rc == 0


class TestNewCommands:
    def test_pyramid_template(self, capsys):
        assert main(["info", "--template", "pyramid", "--size", "128x128",
                     "--octaves", "2"]) == 0
        out = capsys.readouterr().out
        assert "operators      : 9" in out

    def test_dot(self, capsys):
        assert main(["dot", "--size", "64x64", "--kernel", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_to_file(self, capsys, tmp_path):
        import os

        path = os.fspath(tmp_path / "g.dot")
        assert main(["dot", "--size", "64x64", "--kernel", "3", "-o", path]) == 0
        assert open(path).read().startswith("digraph")

    def test_opb_export(self, capsys):
        # Tiny template so the Figure-5 instance stays small.
        assert main([
            "opb", "--size", "4x4", "--kernel", "3", "--orientations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "* Figure-5 formulation" in out
        assert "min:" in out

    def test_run_pyramid_verify(self, capsys):
        rc = main([
            "run", "--template", "pyramid", "--size", "128x128",
            "--octaves", "2", "--verify",
        ])
        assert rc == 0
        assert "verified" in capsys.readouterr().out


class TestObservability:
    def test_explain(self, capsys):
        rc = main(["explain", "--template", "edge", "--size", "128x128",
                   "--kernel", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reason" in out
        assert "upload: input of" in out
        assert "launch: scheduled position" in out

    def test_explain_json_covers_every_step(self, capsys):
        rc = main(["explain", "--size", "128x128", "--kernel", "5", "--json"])
        assert rc == 0
        raw = json.loads(capsys.readouterr().out)
        assert raw["steps"]
        assert all(r["reason"] for r in raw["steps"])
        assert [r["index"] for r in raw["steps"]] == list(
            range(len(raw["steps"]))
        )

    def test_compile_json(self, capsys):
        rc = main(["compile", "--size", "128x128", "--json"])
        assert rc == 0
        raw = json.loads(capsys.readouterr().out)
        assert raw["summary"]["transfer_floats"] > 0
        assert "counters" in raw["metrics"]
        assert raw["simulated_seconds"] > 0

    def test_run_json_exposes_metrics(self, capsys):
        rc = main(["run", "--size", "96x96", "--kernel", "5", "--json"])
        assert rc == 0
        raw = json.loads(capsys.readouterr().out)
        counters = raw["metrics"]["execution"]["counters"]
        assert counters["gpu.bytes_h2d"] == raw["h2d_floats"] * 4
        assert raw["metrics"]["compile"]["counters"]["compile.candidates"] >= 1

    def test_run_trace_out(self, capsys, tmp_path):
        path = os.fspath(tmp_path / "trace.json")
        rc = main(["run", "--size", "96x96", "--kernel", "5",
                   "--trace-out", path])
        assert rc == 0
        raw = json.load(open(path))
        evs = raw["traceEvents"]
        assert all({"ph", "ts", "pid", "tid"} <= set(e) for e in evs)
        # both compile-phase spans and simulated device events present
        assert any(e["pid"] == 1 and e["ph"] == "X" for e in evs)
        assert any(e["pid"] == 2 and e["ph"] == "X" for e in evs)
        ts = [e["ts"] for e in evs if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_compile_trace_out_has_simulated_timeline(self, capsys, tmp_path):
        path = os.fspath(tmp_path / "trace.json")
        rc = main(["compile", "--size", "128x128", "--trace-out", path])
        assert rc == 0
        raw = json.load(open(path))
        assert any(
            e["pid"] == 2 and e["ph"] == "X" for e in raw["traceEvents"]
        )


class TestReportCommand:
    def _report_json(self, capsys, extra=()):
        rc = main(["report", "--size", "96x96", "--kernel", "5",
                   "--format", "json", *extra])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_edge_single_device(self, capsys):
        raw = self._report_json(capsys)
        assert raw["num_devices"] == 1
        dev = raw["devices"][0]
        assert dev["residency"]["peak_bytes"] > 0
        assert dev["residency"]["curve"], "occupancy curve must be present"
        assert dev["timeline"]["busy"] > 0
        # byte-exact attribution: per-buffer totals sum to host bytes
        attr = raw["attribution"]
        assert sum(attr["by_buffer"].values()) == attr["host_bytes"]
        assert sum(r["nbytes"] for r in attr["records"]
                   if r["direction"] != "p2p") == attr["host_bytes"]

    def test_edge_two_devices(self, capsys):
        raw = self._report_json(
            capsys, ["--num-devices", "2", "--device", "tesla_c870"]
        )
        assert raw["num_devices"] == 2
        assert len(raw["devices"]) == 2
        assert len(raw["imbalance"]["busy"]) == 2
        attr = raw["attribution"]
        assert sum(attr["by_buffer"].values()) == attr["host_bytes"]

    def test_cnn_single_device(self, capsys):
        raw = self._report_json(capsys, ["--template", "small-cnn"])
        attr = raw["attribution"]
        assert attr["host_bytes"] > 0
        assert sum(attr["by_buffer"].values()) == attr["host_bytes"]

    def test_cnn_two_devices(self, capsys):
        raw = self._report_json(
            capsys, ["--template", "small-cnn", "--num-devices", "2"]
        )
        assert raw["num_devices"] == 2
        attr = raw["attribution"]
        assert sum(attr["by_buffer"].values()) == attr["host_bytes"]

    def test_markdown_output(self, capsys):
        rc = main(["report", "--size", "96x96", "--kernel", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Residency & device occupancy" in out
        assert "Transfer attribution" in out

    def test_html_to_file(self, capsys, tmp_path):
        path = os.fspath(tmp_path / "report.html")
        rc = main(["report", "--size", "96x96", "--kernel", "5",
                   "--format", "html", "-o", path])
        assert rc == 0
        text = open(path).read()
        assert "<html" in text and "Transfer attribution" in text


class TestBenchCompareCommand:
    def _record(self, directory, metrics):
        from repro.obs.bench import BenchRecorder

        BenchRecorder(os.fspath(directory)).record("t1", metrics)

    def test_identical_dirs_exit_zero(self, capsys, tmp_path):
        base, cand = tmp_path / "b", tmp_path / "c"
        self._record(base, {"transfer_floats": 1000})
        self._record(cand, {"transfer_floats": 1000})
        rc = main(["bench-compare", os.fspath(base), os.fspath(cand)])
        assert rc == 0
        assert "[ok]" in capsys.readouterr().out

    def test_ten_percent_regression_exits_nonzero(self, capsys, tmp_path):
        base, cand = tmp_path / "b", tmp_path / "c"
        self._record(base, {"transfer_floats": 1000, "wall_seconds": 1.0})
        self._record(cand, {"transfer_floats": 1100, "wall_seconds": 50.0})
        rc = main(["bench-compare", os.fspath(base), os.fspath(cand)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "info" in out

    def test_threshold_flag(self, capsys, tmp_path):
        base, cand = tmp_path / "b", tmp_path / "c"
        self._record(base, {"transfer_floats": 1000})
        self._record(cand, {"transfer_floats": 1100})
        rc = main(["bench-compare", os.fspath(base), os.fspath(cand),
                   "--threshold", "0.2"])
        assert rc == 0

    def test_file_pair_and_json(self, capsys, tmp_path):
        base, cand = tmp_path / "b", tmp_path / "c"
        self._record(base, {"transfer_floats": 1000})
        self._record(cand, {"transfer_floats": 2000})
        rc = main(["bench-compare",
                   os.fspath(base / "BENCH_t1.json"),
                   os.fspath(cand / "BENCH_t1.json"), "--json"])
        assert rc == 1
        raw = json.loads(capsys.readouterr().out)
        assert raw["regressed"] is True


class TestMultiDeviceExplain:
    def test_explain_two_devices(self, capsys):
        rc = main(["explain", "--size", "96x96", "--kernel", "5",
                   "--num-devices", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dev" in out.splitlines()[0] or "dev" in out.splitlines()[1]
        assert "gpu0" in out and "gpu1" in out

    def test_explain_two_devices_json(self, capsys):
        rc = main(["explain", "--size", "96x96", "--kernel", "5",
                   "--num-devices", "2", "--json"])
        assert rc == 0
        raw = json.loads(capsys.readouterr().out)
        assert {r["device"] for r in raw["steps"]} == {0, 1}


class TestExitCodes:
    def test_constants_distinct(self):
        from repro.cli import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK, EXIT_USAGE

        assert len({EXIT_OK, EXIT_FAILURE, EXIT_USAGE, EXIT_INTERNAL}) == 4
        assert EXIT_OK == 0

    def test_user_error_exits_2_on_stderr(self, capsys):
        rc = main(["serve", "does-not-exist.json"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "repro: error" in captured.err
        assert captured.out == ""

    def test_malformed_jobs_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{not json")
        assert main(["serve", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_internal_error_exits_70_on_stderr(self, capsys, monkeypatch):
        import repro.cli as cli

        def explode(args):
            raise RuntimeError("synthetic bug")

        monkeypatch.setattr(cli, "cmd_info", explode)
        parser = cli.build_parser()
        args = parser.parse_args(["info"])
        # re-resolve func through the monkeypatched module
        monkeypatch.setattr(args, "func", cli.cmd_info)
        monkeypatch.setattr(cli, "build_parser", lambda: _Stub(args))
        rc = cli.main(["info"])
        assert rc == 70
        err = capsys.readouterr().err
        assert "internal error" in err and "synthetic bug" in err


class _Stub:
    def __init__(self, args):
        self._args = args

    def parse_args(self, argv=None):
        return self._args


@pytest.mark.timeout(120)
class TestServiceCommands:
    def test_submit_repeat_dedupes(self, capsys):
        rc = main([
            "submit", "--template", "edge", "--size", "128x128",
            "--repeat", "6", "--workers", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compiles: 1" in out
        assert "dedupe hits: 5" in out

    def test_submit_json_output(self, capsys):
        rc = main([
            "submit", "--template", "edge", "--size", "128x128",
            "--mode", "simulate", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["responses"][0]["status"] == "ok"
        assert "service.submitted" in payload["metrics"]["counters"]

    def test_submit_expired_deadline_fails_nonzero(self, capsys):
        rc = main([
            "submit", "--template", "edge", "--size", "128x128",
            "--deadline", "0.0",
        ])
        assert rc == 1
        assert "expired" in capsys.readouterr().out

    def test_serve_jobs_file(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"template": "edge", "size": "128x128", "count": 3,
             "label": "edge-c"},
            {"template": "edge", "size": "96x96", "mode": "execute"},
        ]))
        rc = main(["serve", str(jobs), "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edge-c" in out
        assert "compiles: 2" in out

    def test_serve_with_faults_retries(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"template": "edge", "size": "96x96", "mode": "execute",
             "count": 2},
        ]))
        rc = main([
            "serve", str(jobs), "--fault-rate", "0.2", "--fault-seed", "3",
            "--max-attempts", "8", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(r["status"] == "ok" for r in payload["responses"])
        assert payload["metrics"]["counters"]["service.retries"] > 0

    def test_serve_rejects_unknown_job_keys(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([{"templte": "edge"}]))
        assert main(["serve", str(jobs)]) == 2
        assert "unknown keys" in capsys.readouterr().err


@pytest.mark.timeout(120)
class TestTopCommand:
    def _serving(self):
        """A live service with a status endpoint and one finished request."""
        from repro.gpusim import XEON_WORKSTATION, GpuDevice
        from repro.service import (
            ExecutionService,
            ServiceConfig,
            ServiceRequest,
        )
        from repro.templates import find_edges_graph

        svc = ExecutionService(ServiceConfig(workers=2))
        server = svc.serve_status()
        req = ServiceRequest(
            template=find_edges_graph(48, 48, 8, 2),
            device=GpuDevice(name="top-dev", memory_bytes=8 * 1024 * 1024),
            host=XEON_WORKSTATION,
            label="top-req",
        )
        svc.submit(req).result(timeout=60)
        return svc, server

    def test_top_renders_live_state(self, capsys):
        svc, server = self._serving()
        try:
            rc = main(["top", f"127.0.0.1:{server.port}"])
        finally:
            svc.close()
        assert rc == 0
        out = capsys.readouterr().out
        assert "queue depth:" in out
        assert "p99" in out
        assert "plan cache:" in out
        assert "hit-rate" in out
        assert "slo availability" in out
        assert "shard local/0" in out

    def test_top_json_dumps_snapshot(self, capsys):
        svc, server = self._serving()
        try:
            rc = main(["top", server.url, "--json"])
        finally:
            svc.close()
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["service.completed"] == 1
        assert snap["window"]["count"] == 1

    def test_top_dead_endpoint_exits_1_no_traceback(self, capsys):
        """A dead endpoint is an operational failure: exit 1, message on
        stderr, no traceback (main() must not map it onto exit 2)."""
        rc = main(["top", "127.0.0.1:1", "--timeout", "0.5"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "cannot reach" in captured.err
        assert "Traceback" not in captured.err
        assert captured.out == ""

    def test_top_dead_endpoint_honors_repro_debug(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        rc = main(["top", "127.0.0.1:1", "--timeout", "0.5"])
        assert rc == 1
        assert "Traceback" in capsys.readouterr().err

    def test_submit_status_port_announces_endpoint(self, capsys):
        rc = main([
            "submit", "--template", "edge", "--size", "96x96",
            "--status-port", "0",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "status endpoint: http://127.0.0.1:" in err
        assert "/metrics" in err
