"""Tests for operator scheduling heuristics (Section 3.3.1)."""

import pytest

from repro.core import (
    OperatorGraph,
    SCHEDULERS,
    bfs_schedule,
    dfs_schedule,
    get_scheduler,
    topo_schedule,
)
from repro.templates import SMALL_CNN, cnn_graph, find_edges_graph


def assert_topological(graph, order):
    assert sorted(order) == sorted(graph.ops)
    pos = {o: i for i, o in enumerate(order)}
    for o in graph.ops:
        for p in graph.op_predecessors(o):
            assert pos[p] < pos[o], (p, o)


def chain(n=6):
    g = OperatorGraph("chain")
    g.add_data("d0", (4, 4), is_input=True)
    for i in range(n):
        g.add_data(f"d{i + 1}", (4, 4), is_output=(i == n - 1))
        g.add_operator(f"o{i}", "remap", [f"d{i}"], [f"d{i + 1}"])
    return g


def tree():
    """Two independent branches joining at a combine."""
    g = OperatorGraph("tree")
    g.add_data("in", (4, 4), is_input=True)
    for b in ("a", "b"):
        g.add_data(f"{b}1", (4, 4))
        g.add_data(f"{b}2", (4, 4))
        g.add_operator(f"{b}_first", "remap", ["in"], [f"{b}1"])
        g.add_operator(f"{b}_second", "tanh", [f"{b}1"], [f"{b}2"])
    g.add_data("out", (4, 4), is_output=True)
    g.add_operator("join", "max", ["a2", "b2"], ["out"])
    return g


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
class TestAllSchedulers:
    def test_valid_on_chain(self, name):
        g = chain()
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_tree(self, name):
        g = tree()
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_edge_template(self, name):
        g = find_edges_graph(32, 32, 5, 8)
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_cnn(self, name):
        g = cnn_graph(SMALL_CNN, 48, 48)
        assert_topological(g, get_scheduler(name)(g))

    def test_deterministic(self, name):
        g = tree()
        s = get_scheduler(name)
        assert s(g) == s(g)


class TestDFSCharacter:
    def test_depth_first_on_tree(self):
        """DFS finishes branch a's subtree before starting branch b."""
        order = dfs_schedule(tree())
        assert order.index("a_second") < order.index("b_first")

    def test_bfs_is_level_order(self):
        order = bfs_schedule(tree())
        assert order.index("b_first") < order.index("a_second")

    def test_dfs_backtracks_on_precedence(self):
        """The join is only scheduled after both branches complete."""
        order = dfs_schedule(tree())
        assert order[-1] == "join"

    def test_deep_graph_no_recursion_limit(self):
        g = chain(5000)
        order = dfs_schedule(g)
        assert len(order) == 5000


class TestLookup:
    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            get_scheduler("zigzag")

    def test_topo_matches_graph_order(self):
        g = tree()
        assert topo_schedule(g) == g.topological_order()


class TestGreedyLiveSet:
    """greedy_schedule's live set mirrors the eager-free residency rule.

    Dead-on-arrival outputs are never live (the transfer scheduler saves
    and frees them immediately) and any value leaves the live set with
    its last read, template output or not.  The replay oracle below
    recomputes the live set per that rule at every step and checks the
    chosen operator minimizes (fetch, -freed, dfs-position) — so both
    the liveness semantics and the incremental heap rescoring are pinned
    against a from-scratch reference.
    """

    @staticmethod
    def reference_greedy(graph):
        """O(n^2) greedy with the eager-free live rule, no heap."""
        from repro.core import dfs_schedule

        preds = {o: set(graph.op_predecessors(o)) for o in graph.ops}
        remaining = {d: len(c) for d, c in graph.consumers.items()}
        dfs_pos = {o: i for i, o in enumerate(dfs_schedule(graph))}
        live, scheduled, order = set(), set(), []
        ready = {o for o, p in preds.items() if not p}

        def cost(o):
            ins = dict.fromkeys(graph.ops[o].inputs)
            fetch = sum(
                graph.data[d].size for d in ins if d not in live
            )
            freed = sum(
                graph.data[d].size
                for d in ins
                if d in live and remaining[d] == 1
            )
            return (fetch, -freed, dfs_pos[o])

        while ready:
            chosen = min(ready, key=cost)
            ready.discard(chosen)
            scheduled.add(chosen)
            order.append(chosen)
            for d in dict.fromkeys(graph.ops[chosen].inputs):
                remaining[d] -= 1
                if remaining[d] == 0:
                    live.discard(d)  # freed at last read even if is_output
            for d in graph.ops[chosen].outputs:
                if graph.consumers.get(d):
                    live.add(d)  # dead-on-arrival outputs are not live
            for s in graph.op_successors(chosen):
                if s not in scheduled and preds[s] <= scheduled:
                    ready.add(s)
        return order

    def test_matches_reference_on_templates(self):
        from repro.core import greedy_schedule

        for g in (
            chain(),
            tree(),
            find_edges_graph(48, 48, 5, 4),
            cnn_graph(SMALL_CNN, 48, 48),
        ):
            assert greedy_schedule(g) == self.reference_greedy(g)

    def test_matches_reference_on_random_graphs(self):
        from repro.core import greedy_schedule

        from .differential import random_operator_graph

        for seed in range(25):
            g = random_operator_graph(seed, n_layers=4, width=4)
            assert greedy_schedule(g) == self.reference_greedy(g), seed

    def test_dead_on_arrival_output_is_not_live(self):
        """An unconsumed template output must not distort later costs.

        ``probe`` produces a huge dead-on-arrival output; afterwards two
        branches are ready.  Both cost the same fetch, so the freed
        bonus decides — and the live set at that point may contain only
        genuinely resident values (mid, not big_out).
        """
        from repro.core import greedy_schedule

        g = OperatorGraph("doa")
        g.add_data("src", (8, 8), is_input=True)
        g.add_data("big_out", (64, 64), is_output=True)  # no consumers
        g.add_data("mid", (8, 8))
        g.add_data("fin", (8, 8), is_output=True)
        g.add_operator("probe", "remap", ["src"], ["big_out"])
        g.add_operator("mk_mid", "tanh", ["src"], ["mid"])
        g.add_operator("use_mid", "relu", ["mid"], ["fin"])
        order = greedy_schedule(g)
        assert_topological(g, order)
        assert order == self.reference_greedy(g)
        # use_mid runs right after mk_mid: mid is live with one read
        # left (freed bonus), while big_out contributes nothing.
        assert order.index("use_mid") == order.index("mk_mid") + 1

    def test_output_freed_at_last_read(self):
        """A template output's last read still earns the freed bonus."""
        from repro.core import greedy_schedule

        g = OperatorGraph("outfree")
        g.add_data("src", (8, 8), is_input=True)
        # "kept" is a template output but also read once more.
        g.add_data("kept", (32, 32), is_output=True)
        g.add_data("small", (2, 2))
        g.add_data("o1", (8, 8), is_output=True)
        g.add_data("o2", (8, 8), is_output=True)
        g.add_operator("mk_kept", "remap", ["src"], ["kept"])
        g.add_operator("mk_small", "tanh", ["src"], ["small"])
        # Reader of the big live output vs reader of the small live one:
        # equal fetch (zero), so the bigger freed bonus must win.
        g.add_operator("read_kept", "relu", ["kept"], ["o1"])
        g.add_operator("read_small", "relu", ["small"], ["o2"])
        order = greedy_schedule(g)
        assert_topological(g, order)
        assert order == self.reference_greedy(g)
        assert order.index("read_kept") < order.index("read_small")
