"""Tests for operator scheduling heuristics (Section 3.3.1)."""

import pytest

from repro.core import (
    OperatorGraph,
    SCHEDULERS,
    bfs_schedule,
    dfs_schedule,
    get_scheduler,
    topo_schedule,
)
from repro.templates import SMALL_CNN, cnn_graph, find_edges_graph


def assert_topological(graph, order):
    assert sorted(order) == sorted(graph.ops)
    pos = {o: i for i, o in enumerate(order)}
    for o in graph.ops:
        for p in graph.op_predecessors(o):
            assert pos[p] < pos[o], (p, o)


def chain(n=6):
    g = OperatorGraph("chain")
    g.add_data("d0", (4, 4), is_input=True)
    for i in range(n):
        g.add_data(f"d{i + 1}", (4, 4), is_output=(i == n - 1))
        g.add_operator(f"o{i}", "remap", [f"d{i}"], [f"d{i + 1}"])
    return g


def tree():
    """Two independent branches joining at a combine."""
    g = OperatorGraph("tree")
    g.add_data("in", (4, 4), is_input=True)
    for b in ("a", "b"):
        g.add_data(f"{b}1", (4, 4))
        g.add_data(f"{b}2", (4, 4))
        g.add_operator(f"{b}_first", "remap", ["in"], [f"{b}1"])
        g.add_operator(f"{b}_second", "tanh", [f"{b}1"], [f"{b}2"])
    g.add_data("out", (4, 4), is_output=True)
    g.add_operator("join", "max", ["a2", "b2"], ["out"])
    return g


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
class TestAllSchedulers:
    def test_valid_on_chain(self, name):
        g = chain()
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_tree(self, name):
        g = tree()
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_edge_template(self, name):
        g = find_edges_graph(32, 32, 5, 8)
        assert_topological(g, get_scheduler(name)(g))

    def test_valid_on_cnn(self, name):
        g = cnn_graph(SMALL_CNN, 48, 48)
        assert_topological(g, get_scheduler(name)(g))

    def test_deterministic(self, name):
        g = tree()
        s = get_scheduler(name)
        assert s(g) == s(g)


class TestDFSCharacter:
    def test_depth_first_on_tree(self):
        """DFS finishes branch a's subtree before starting branch b."""
        order = dfs_schedule(tree())
        assert order.index("a_second") < order.index("b_first")

    def test_bfs_is_level_order(self):
        order = bfs_schedule(tree())
        assert order.index("b_first") < order.index("a_second")

    def test_dfs_backtracks_on_precedence(self):
        """The join is only scheduled after both branches complete."""
        order = dfs_schedule(tree())
        assert order[-1] == "join"

    def test_deep_graph_no_recursion_limit(self):
        g = chain(5000)
        order = dfs_schedule(g)
        assert len(order) == 5000


class TestLookup:
    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            get_scheduler("zigzag")

    def test_topo_matches_graph_order(self):
        g = tree()
        assert topo_schedule(g) == g.topological_order()
