"""Cross-process shared plan cache (repro.core.plancache.SharedPlanCache).

The stampede scenario the tier exists for: K cold processes compile the
same template against one shared cache directory — exactly one compile
may happen machine-wide (leader election over lock files), every other
process must wait and read the leader's stored entry byte-identically.
Plus the failure drills: a leader killed mid-compile / mid-write leaves
a stale lock and an orphaned spill file, and the next contender must
break the lock, sweep the debris, and recover.
"""

import hashlib
import json
import multiprocessing
import os
import time

import pytest

from repro.core.filelock import FileLock, LockOwner
from repro.core.framework import CompileOptions, Framework
from repro.core.plancache import SharedPlanCache, plan_key
from repro.core.serialize import plan_to_dict
from repro.gpusim import GpuDevice
from repro.templates import find_edges_graph

DEV = GpuDevice(name="shared-cache-dev", memory_bytes=8 * 1024 * 1024)

_MP = multiprocessing.get_context("fork")


def _template():
    return find_edges_graph(96, 96, 8, 2)


def _entry_key():
    return plan_key(_template(), DEV, CompileOptions())


def _stampede_worker(cache_dir, barrier, results, index):
    cache = SharedPlanCache(cache_dir, lock_timeout=120.0, stale_after=30.0)
    fw = Framework(DEV, plan_cache=cache)
    barrier.wait()  # release every contender into the cold cache at once
    compiled = fw.compile(_template())
    with open(os.path.join(cache_dir, f"{_entry_key()}.json"), "rb") as fh:
        entry_sha = hashlib.sha256(fh.read()).hexdigest()
    results.put({
        "index": index,
        "stats": cache.stats(),
        "entry_sha": entry_sha,
        "plan_json": json.dumps(plan_to_dict(compiled.plan), sort_keys=True),
    })


def _doomed_leader(cache_dir, ready):
    """Claim leadership for the key, spill a partial write, die."""
    cache = SharedPlanCache(cache_dir, lock_timeout=120.0, stale_after=30.0)
    assert cache.get(_entry_key()) is None  # now the leader
    with open(os.path.join(cache_dir, ".tmp-partial.json"), "w") as fh:
        fh.write('{"version": 2, "plan": [truncated mid-wr')
    ready.set()
    os._exit(1)  # no release(), no put(): the lock goes stale


class TestCrossProcessStampede:
    def test_k_processes_one_compile(self, tmp_path):
        """6 cold processes, 1 compile, 5 byte-identical follower reads."""
        k = 6
        barrier = _MP.Barrier(k)
        results_q = _MP.Queue()
        procs = [
            _MP.Process(
                target=_stampede_worker,
                args=(str(tmp_path), barrier, results_q, i),
            )
            for i in range(k)
        ]
        for p in procs:
            p.start()
        results = [results_q.get(timeout=120) for _ in range(k)]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert len(results) == k

        total_misses = sum(r["stats"]["misses"] for r in results)
        assert total_misses == 1, (
            f"expected exactly one compile machine-wide, got {total_misses} "
            f"({[r['stats'] for r in results]})"
        )
        assert sum(r["stats"]["lock_timeouts"] for r in results) == 0
        # Everyone else was served from the shared tier.
        served = sum(
            r["stats"]["disk_hits"] + r["stats"]["hits"] for r in results
        )
        assert served == k - 1
        # Byte-identical: one entry file, and every process reconstructs
        # the very same plan from it.
        assert len({r["entry_sha"] for r in results}) == 1
        assert len({r["plan_json"] for r in results}) == 1
        # No lock or spill debris left behind.
        leftovers = [
            name for name in os.listdir(tmp_path)
            if name.endswith(".lock") or name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_kill_leader_mid_write_recovers(self, tmp_path):
        """A leader dying mid-write leaves a stale lock + spill file; the
        next contender breaks the lock, sweeps, and compiles itself."""
        ready = _MP.Event()
        leader = _MP.Process(target=_doomed_leader,
                             args=(str(tmp_path), ready))
        leader.start()
        assert ready.wait(timeout=60)
        leader.join(timeout=60)
        assert leader.exitcode == 1
        key = _entry_key()
        assert os.path.exists(tmp_path / f"{key}.lock")
        assert os.path.exists(tmp_path / ".tmp-partial.json")

        # Age the spill past stale_after so the sweep may reclaim it.
        time.sleep(0.3)
        cache = SharedPlanCache(
            str(tmp_path), lock_timeout=30.0, stale_after=0.2,
            poll_interval=0.01,
        )
        fw = Framework(DEV, plan_cache=cache)
        compiled = fw.compile(_template())
        assert compiled.plan.steps
        stats = cache.stats()
        assert stats["lock_breaks"] >= 1, (
            f"stale leader lock was never broken: {stats}"
        )
        assert stats["misses"] == 1  # the recovery compile
        assert stats["lock_timeouts"] == 0  # recovered by breaking, not by
        #                                     giving up on dedupe
        assert os.path.exists(tmp_path / f"{key}.json")
        assert not os.path.exists(tmp_path / ".tmp-partial.json")
        assert not os.path.exists(tmp_path / f"{key}.lock")

    def test_follower_timeout_degrades_to_local_compile(self, tmp_path):
        """A leader that neither stores nor dies pins the lock; followers
        give up after lock_timeout and compile locally — availability
        beats dedupe."""
        key = _entry_key()
        os.makedirs(tmp_path, exist_ok=True)
        holder = FileLock(str(tmp_path / f"{key}.lock"), stale_after=3600.0)
        assert holder.acquire()  # an alive process (us) holds it forever
        try:
            cache = SharedPlanCache(
                str(tmp_path), lock_timeout=0.25, stale_after=3600.0,
                poll_interval=0.01,
            )
            fw = Framework(DEV, plan_cache=cache)
            compiled = fw.compile(_template())
            assert compiled.plan.steps
            stats = cache.stats()
            assert stats["lock_timeouts"] == 1
            assert stats["lock_breaks"] == 0  # never break a live lock
        finally:
            holder.release()

    def test_corrupt_entry_is_dropped_and_recompiled(self, tmp_path):
        key = _entry_key()
        cache = SharedPlanCache(str(tmp_path), lock_timeout=10.0)
        (tmp_path / f"{key}.json").write_text("{ not json")
        fw = Framework(DEV, plan_cache=cache)
        compiled = fw.compile(_template())
        assert compiled.plan.steps
        stats = cache.stats()
        assert stats["corrupt_entries"] == 1
        assert stats["misses"] == 1
        # The rewritten entry is valid for the next reader.
        other = SharedPlanCache(str(tmp_path), lock_timeout=10.0)
        assert other.get(key) is not None

    def test_failed_compile_releases_leadership(self, tmp_path):
        """Framework.compile abandons the key on error so followers are
        not orphaned behind a lock whose fill will never come."""
        cache = SharedPlanCache(str(tmp_path), lock_timeout=10.0)
        graph = _template()
        fw = Framework(DEV, plan_cache=cache)
        key = _entry_key()

        real_miss = fw._compile_miss

        def boom(*args, **kwargs):
            raise RuntimeError("injected compile failure")

        fw._compile_miss = boom
        with pytest.raises(RuntimeError, match="injected"):
            fw.compile(graph)
        # The lock must be gone: a fresh contender becomes leader at once.
        assert not os.path.exists(tmp_path / f"{key}.lock")
        fw._compile_miss = real_miss
        assert fw.compile(graph).plan.steps


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        assert lock.acquire()
        assert not FileLock(str(tmp_path / "x.lock")).acquire()
        lock.release()
        assert FileLock(str(tmp_path / "x.lock")).acquire()

    def test_dead_owner_is_stale(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("999999999 0.0\n")  # pid far beyond pid_max
        lock = FileLock(str(path), stale_after=3600.0)
        assert lock.is_stale()
        assert lock.break_stale()
        assert lock.acquire()

    def test_live_owner_is_not_stale(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"), stale_after=3600.0)
        assert lock.acquire()
        probe = FileLock(str(tmp_path / "x.lock"), stale_after=3600.0)
        assert not probe.is_stale()
        assert not probe.break_stale()

    def test_garbled_lock_file_recovers(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("not a pid at all")
        lock = FileLock(str(path), stale_after=0.001)
        owner = lock.owner()
        assert owner == LockOwner(pid=-1, created=0.0)
        assert lock.is_stale()
        assert lock.break_stale()
