"""Tests for execution-plan representation and validation."""

import pytest

from repro.core import (
    CopyToCPU,
    CopyToGPU,
    ExecutionPlan,
    Free,
    Launch,
    OperatorGraph,
    PlanError,
    validate_plan,
)


def simple_graph():
    g = OperatorGraph()
    g.add_data("a", (2, 2), is_input=True)
    g.add_data("b", (2, 2), is_output=True)
    g.add_operator("op", "remap", ["a"], ["b"])
    return g


def good_plan():
    return ExecutionPlan(
        steps=[
            CopyToGPU("a"),
            Launch("op"),
            CopyToCPU("b"),
            Free("a"),
            Free("b"),
        ],
        capacity_floats=100,
    )


class TestAccounting:
    def test_transfer_floats(self):
        g = simple_graph()
        p = good_plan()
        assert p.h2d_floats(g) == 4
        assert p.d2h_floats(g) == 4
        assert p.transfer_floats(g) == 8

    def test_launches(self):
        assert good_plan().launches() == ["op"]

    def test_summary(self):
        s = good_plan().summary(simple_graph())
        assert s["steps"] == 5
        assert s["transfer_floats"] == 8

    def test_pretty_lists_steps(self):
        text = good_plan().pretty()
        assert "h2d  a" in text
        assert "exec op" in text
        assert "d2h  b" in text
        assert "free a" in text

    def test_len_and_iter(self):
        p = good_plan()
        assert len(p) == 5
        assert list(p) == p.steps


class TestValidation:
    def test_good_plan_peak(self):
        peak = validate_plan(good_plan(), simple_graph())
        assert peak == 8  # a + b resident at launch

    def test_over_capacity(self):
        g = simple_graph()
        p = good_plan()
        p.capacity_floats = 7
        with pytest.raises(PlanError, match="capacity"):
            validate_plan(p, g)

    def test_h2d_twice(self):
        g = simple_graph()
        p = ExecutionPlan([CopyToGPU("a"), CopyToGPU("a")], 100)
        with pytest.raises(PlanError, match="already on device"):
            validate_plan(p, g)

    def test_h2d_of_data_not_on_host(self):
        g = simple_graph()
        p = ExecutionPlan([CopyToGPU("b")], 100)
        with pytest.raises(PlanError, match="not in host memory"):
            validate_plan(p, g)

    def test_d2h_of_nonresident(self):
        g = simple_graph()
        p = ExecutionPlan([CopyToCPU("a")], 100)
        with pytest.raises(PlanError, match="not on device"):
            validate_plan(p, g)

    def test_free_of_nonresident(self):
        g = simple_graph()
        p = ExecutionPlan([Free("a")], 100)
        with pytest.raises(PlanError, match="not on device"):
            validate_plan(p, g)

    def test_launch_missing_input(self):
        g = simple_graph()
        p = ExecutionPlan([Launch("op")], 100)
        with pytest.raises(PlanError, match="not resident"):
            validate_plan(p, g)

    def test_launch_unknown_op(self):
        g = simple_graph()
        p = ExecutionPlan([Launch("nope")], 100)
        with pytest.raises(PlanError, match="unknown operator"):
            validate_plan(p, g)

    def test_double_launch(self):
        g = simple_graph()
        p = ExecutionPlan(
            [CopyToGPU("a"), Launch("op"), Free("b"), Launch("op")], 100
        )
        with pytest.raises(PlanError, match="twice"):
            validate_plan(p, g)

    def test_launch_before_dependency(self):
        g = OperatorGraph()
        g.add_data("a", (1, 1), is_input=True)
        g.add_data("b", (1, 1))
        g.add_data("c", (1, 1), is_output=True)
        g.add_operator("p", "remap", ["a"], ["b"])
        g.add_operator("q", "remap", ["b"], ["c"])
        # forge b's presence on the host so only the dependency check fires
        g.data["b"].is_input = False
        p = ExecutionPlan([CopyToGPU("a"), Launch("p"), Launch("q")], 100)
        # (valid: p before q) — now reversed:
        bad = ExecutionPlan([CopyToGPU("a"), Launch("q")], 100)
        with pytest.raises(PlanError):
            validate_plan(bad, g)

    def test_plan_must_run_all_ops(self):
        g = simple_graph()
        p = ExecutionPlan([CopyToGPU("a"), Free("a")], 100)
        with pytest.raises(PlanError, match="never executes"):
            validate_plan(p, g)

    def test_outputs_must_reach_host(self):
        g = simple_graph()
        p = ExecutionPlan(
            [CopyToGPU("a"), Launch("op"), Free("a"), Free("b")], 100
        )
        with pytest.raises(PlanError, match="not in host memory at end"):
            validate_plan(p, g)

    def test_output_produced_after_host_copy_invalidated(self):
        """A host copy of data is invalidated when a launch overwrites it."""
        g = OperatorGraph()
        g.add_data("a", (1, 1), is_input=True)
        g.add_data("b", (1, 1), is_output=True)
        g.add_operator("op1", "remap", ["a"], ["b"])
        plan = ExecutionPlan(
            steps=[
                CopyToGPU("a"),
                Launch("op1"),
                # no CopyToCPU("b")!
                Free("a"),
                Free("b"),
            ],
            capacity_floats=100,
        )
        with pytest.raises(PlanError):
            validate_plan(plan, g)

    def test_capacity_argument_overrides(self):
        g = simple_graph()
        p = good_plan()
        with pytest.raises(PlanError):
            validate_plan(p, g, capacity_floats=5)
        assert validate_plan(p, g, capacity_floats=1000) == 8
