"""Tests for the dynamic run-time orchestration library."""

import numpy as np
import pytest

from repro.core import Framework, dfs_schedule, make_feasible
from repro.gpusim import GpuDevice, SimRuntime
from repro.runtime import DynamicExecutor, dynamic_execute, reference_execute
from repro.templates import (
    SMALL_CNN,
    cnn_graph,
    cnn_inputs,
    find_edges_graph,
    find_edges_inputs,
)

DEV = GpuDevice(name="dyn-dev", memory_bytes=128 * 1024)


@pytest.fixture(scope="module")
def edge_case():
    g = find_edges_graph(48, 40, 5, 4)
    inputs = find_edges_inputs(48, 40, 5, 4, seed=5)
    ref = reference_execute(g, inputs)["Edg"]
    return g, inputs, ref


class TestCorrectness:
    def test_matches_reference_unsplit(self, edge_case):
        g, inputs, ref = edge_case
        res = dynamic_execute(g.copy(), SimRuntime(DEV), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_matches_reference_split(self, edge_case):
        g, inputs, ref = edge_case
        g2 = g.copy()
        make_feasible(g2, DEV.usable_memory_floats // 3)
        res = dynamic_execute(g2, SimRuntime(DEV), inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_respects_custom_order(self, edge_case):
        g, inputs, ref = edge_case
        g2 = g.copy()
        order = dfs_schedule(g2)
        res = dynamic_execute(g2, SimRuntime(DEV), inputs, op_order=order)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_cnn(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        inputs = cnn_inputs(SMALL_CNN, 48, 48, seed=3)
        ref = reference_execute(g, inputs)
        res = dynamic_execute(
            g.copy(), SimRuntime(GpuDevice(name="t", memory_bytes=64 * 1024)), inputs
        )
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], rtol=1e-4, atol=1e-5)


class TestMemoryBehaviour:
    def test_capacity_respected_by_allocator(self, edge_case):
        """The simulator's allocator would fault on over-commitment; a
        clean run therefore proves memory stayed within the device."""
        g, inputs, _ = edge_case
        g2 = g.copy()
        make_feasible(g2, DEV.usable_memory_floats // 3)
        rt = SimRuntime(DEV)
        dynamic_execute(g2, rt, inputs)
        assert rt.allocator.peak_in_use <= DEV.memory_bytes

    def test_pinned_overflow_raises(self, edge_case):
        """An unsplit operator larger than memory cannot be orchestrated."""
        g, inputs, _ = edge_case
        tiny = GpuDevice(name="tiny", memory_bytes=8 * 1024)
        with pytest.raises(RuntimeError, match="split the template"):
            dynamic_execute(g.copy(), SimRuntime(tiny), inputs)

    def test_headroom_shrinks_budget(self, edge_case):
        g, inputs, _ = edge_case
        g2 = g.copy()
        make_feasible(g2, DEV.usable_memory_floats // 4)
        ex = DynamicExecutor(
            g2, SimRuntime(DEV), headroom_floats=DEV.usable_memory_floats // 2
        )
        res = ex.run(inputs)
        assert res.transfer_floats > 0


class TestStaticVsDynamic:
    def test_static_never_transfers_more(self, edge_case):
        """Plan-ahead (Belady) beats or ties online LRU orchestration."""
        g, inputs, _ = edge_case
        for mem in (128 * 1024, 64 * 1024, 40 * 1024):
            dev = GpuDevice(name=f"m{mem}", memory_bytes=mem)
            fw = Framework(dev)
            compiled = fw.compile(g)
            static = compiled.transfer_floats()
            g2 = compiled.graph.copy()
            dyn = dynamic_execute(
                g2, SimRuntime(dev), inputs, op_order=compiled.op_order
            )
            assert static <= dyn.transfer_floats, mem

    def test_accounting_consistent(self, edge_case):
        g, inputs, _ = edge_case
        rt = SimRuntime(DEV)
        res = dynamic_execute(g.copy(), rt, inputs)
        assert res.transfer_floats * 4 == rt.profile.bytes_transferred()
        assert res.elapsed == pytest.approx(rt.clock)
