"""AsyncExecutionService: the asyncio face of the serving tier.

Exercises the bridge between the threaded execution core and the event
loop: awaitable tickets resolved via ``call_soon_threadsafe``,
cancellation and deadline expiry surfacing as *responses* (never as
silent ``CancelledError``), single-flight dedupe under
``asyncio.gather`` fan-in, and the no-event-loop fallback path.
"""

import asyncio
import threading
import time

import pytest

from repro.core.framework import Framework
from repro.gpusim import XEON_WORKSTATION, GpuDevice
from repro.service import (
    AsyncExecutionService,
    AsyncTicket,
    RequestStatus,
    ServiceConfig,
    ServiceRequest,
    Submitter,
)
from repro.templates import find_edges_graph

DEV = GpuDevice(name="aio-dev", memory_bytes=8 * 1024 * 1024)


def edge_request(size=64, kernel=8, **kwargs):
    kwargs.setdefault("label", f"edge{size}")
    return ServiceRequest(
        template=find_edges_graph(size, size, kernel, 2),
        device=DEV,
        host=XEON_WORKSTATION,
        **kwargs,
    )


async def wait_until_async(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.005)
    return False


@pytest.mark.timeout(60)
class TestAwaitableTickets:
    def test_await_resolves_to_response(self):
        async def run():
            async with AsyncExecutionService(ServiceConfig(workers=2)) as svc:
                ticket = await svc.submit(edge_request())
                assert isinstance(ticket, AsyncTicket)
                response = await ticket
                return ticket, response

        ticket, response = asyncio.run(run())
        assert response.ok
        assert ticket.done()
        assert ticket.status is RequestStatus.OK

    def test_gather_sixteen_of_four_distinct_dedupes(self, monkeypatch):
        """The acceptance demo on the async path: 16 awaitable tickets
        over 4 distinct requests, collected with one ``asyncio.gather``,
        compile exactly 4 times — and every follower's ``deduped_from``
        provenance survives the bridge intact."""
        release = threading.Event()
        calls = []
        original = Framework.compile

        def blocking_compile(self, template, **kwargs):
            calls.append(template.name)
            assert release.wait(30), "test forgot to release the leaders"
            return original(self, template, **kwargs)

        monkeypatch.setattr(Framework, "compile", blocking_compile)
        sizes = (48, 64, 80, 96)

        async def run():
            # 16 workers: all four leaders block mid-compile while every
            # follower still reaches a worker and joins its flight.
            async with AsyncExecutionService(ServiceConfig(workers=16)) as svc:
                try:
                    tickets = await svc.submit_all(
                        [edge_request(size=sizes[i % 4]) for i in range(16)]
                    )
                    joined = await wait_until_async(
                        lambda: svc.core.metrics_snapshot()["counters"].get(
                            "service.singleflight_joins", 0
                        ) == 12
                    )
                    assert joined, (
                        "12 of 16 requests must join an in-flight compile"
                    )
                finally:
                    release.set()  # never leave close() waiting on workers
                responses = await asyncio.wait_for(
                    asyncio.gather(*tickets), timeout=60
                )
                counters = svc.core.metrics_snapshot()["counters"]
                return tickets, responses, counters

        tickets, responses, counters = asyncio.run(run())
        assert len(calls) == 4, "exactly one compile per distinct template"
        assert all(r.ok for r in responses)
        assert counters["service.singleflight_joins"] == 12
        deduped = [r for r in responses if r.deduped]
        assert len(deduped) == 12
        ids = {t.id for t in tickets}
        for r in deduped:
            assert r.deduped_from in ids
            assert r.deduped_from != r.request_id

    def test_second_event_loop_rejected(self):
        async def submit():
            svc = AsyncExecutionService(ServiceConfig(workers=1))
            ticket = await svc.submit(edge_request())
            await ticket  # binds the ticket's future to this loop
            return svc, ticket

        svc, ticket = asyncio.run(submit())
        try:
            async def reawait():
                await ticket

            with pytest.raises(RuntimeError, match="second event loop"):
                asyncio.run(reawait())
            # the cross-loop escape hatch still works
            assert ticket.result(timeout=1).ok
        finally:
            svc.close()


@pytest.mark.timeout(60)
class TestCancellationAndDeadlines:
    def test_cancel_queued_ticket_mid_flight(self, monkeypatch):
        """With one worker pinned mid-compile, a queued ticket cancels
        cleanly and its awaiter receives a CANCELLED *response* — no
        ``asyncio.CancelledError``, no silent outcome."""
        release = threading.Event()
        original = Framework.compile

        def blocking_compile(self, template, **kwargs):
            assert release.wait(30)
            return original(self, template, **kwargs)

        monkeypatch.setattr(Framework, "compile", blocking_compile)

        async def run():
            async with AsyncExecutionService(ServiceConfig(workers=1)) as svc:
                try:
                    running = await svc.submit(edge_request(size=48))
                    queued = await svc.submit(edge_request(size=96))
                    assert queued.cancel() is True
                    cancelled = await asyncio.wait_for(queued, timeout=10)
                    # the running leader cannot be cancelled, only awaited
                    assert running.cancel() is False
                finally:
                    release.set()
                finished = await asyncio.wait_for(running, timeout=30)
                return cancelled, finished

        cancelled, finished = asyncio.run(run())
        assert cancelled.status is RequestStatus.CANCELLED
        assert not cancelled.ok
        assert finished.ok

    def test_deadline_expiry_while_awaiting(self):
        """A request whose deadline passes while its awaiter sleeps on
        the loop resolves to an EXPIRED response."""
        async def run():
            cfg = ServiceConfig(workers=1, degrade_on_deadline=False)
            async with AsyncExecutionService(cfg) as svc:
                ticket = await svc.submit(edge_request(deadline=1e-9))
                return await asyncio.wait_for(ticket, timeout=30)

        response = asyncio.run(run())
        assert response.status is RequestStatus.EXPIRED
        assert "deadline expired" in response.error
        assert response.value is None


@pytest.mark.timeout(60)
class TestNoEventLoopFallback:
    def test_submit_nowait_and_blocking_result(self):
        """The same service object serves sync callers: no running
        loop, plain context manager, blocking ``result()``."""
        with AsyncExecutionService(ServiceConfig(workers=2)) as svc:
            ticket = svc.submit_nowait(edge_request())
            response = ticket.result(timeout=30)
        assert response.ok
        assert ticket.done()

    def test_nowait_ticket_awaitable_later(self):
        """A ticket born outside any loop can still be awaited once a
        loop exists — resolution arrives even if the core finished
        before the future was bound."""
        with AsyncExecutionService(ServiceConfig(workers=2)) as svc:
            ticket = svc.submit_nowait(edge_request())
            ticket.result(timeout=30)  # already resolved

            async def late_await():
                return await asyncio.wait_for(ticket, timeout=5)

            response = asyncio.run(late_await())
        assert response.ok

    def test_async_service_is_a_submitter(self):
        svc = AsyncExecutionService(ServiceConfig(workers=1))
        try:
            assert isinstance(svc, Submitter)
        finally:
            svc.close()

    def test_adopted_core_lifecycle_stays_with_caller(self):
        from repro.service import ExecutionService

        core = ExecutionService(ServiceConfig(workers=1))
        try:
            with AsyncExecutionService(core=core, own_core=False) as svc:
                assert svc.core is core
                resp = svc.submit_nowait(edge_request()).result(timeout=30)
                assert resp.ok
            # the wrapper must not have closed the adopted core
            resp = core.submit(edge_request(size=48)).result(timeout=30)
            assert resp.ok
        finally:
            core.close()
