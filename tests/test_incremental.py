"""Incremental recompilation: fragments, fingerprints, stitching.

Edit-proportional compile time: a one-branch edit of a forest template
must recompile exactly one fragment and stitch the rest from the plan
cache, and the stitched plan must execute bit-identically.
"""

import json

import numpy as np
import pytest

from repro.core import (
    CompileOptions,
    Framework,
    compile_incremental,
    extract_fragment,
    fragment_key,
    graph_fragments,
    plan_to_dict,
    validate_plan,
)
from repro.core.plancache import PlanCache, SharedPlanCache
from repro.gpusim import GpuDevice
from repro.templates import (
    cnn_graph,
    edge_forest_graph,
    edge_forest_inputs,
    find_edges_graph,
    SMALL_CNN,
    video_edge_graph,
    video_edge_inputs,
)

KB = 1024
DEV = GpuDevice(name="inc-dev", memory_bytes=256 * KB)
OPTS = CompileOptions(split_headroom=1.0)


def fw_with_cache(cache=None):
    return Framework(
        DEV,
        options=OPTS,
        plan_cache=cache if cache is not None else PlanCache(max_entries=128),
    )


# ---------------------------------------------------------------------------
# Fragment partition
# ---------------------------------------------------------------------------
class TestGraphFragments:
    def test_forest_branches_are_fragments(self):
        g = edge_forest_graph(4, 64, 64, 5, 4)
        frags = graph_fragments(g)
        assert len(frags) == 4
        for j, ops in enumerate(frags):
            assert all(o.startswith(f"T{j}_") for o in ops)

    def test_shared_inputs_do_not_glue_fragments(self):
        # video frames share the kernel inputs; they must still fragment
        g = video_edge_graph(6, 48, 48, 5, 4)
        assert len(graph_fragments(g)) == 6

    def test_connected_template_is_one_fragment(self):
        g = find_edges_graph(48, 40, 5, 4)
        frags = graph_fragments(g)
        assert len(frags) == 1
        assert frags[0] == list(g.ops)

    def test_fragments_partition_all_ops(self):
        g = edge_forest_graph(3, 48, 48, 5, 4)
        frags = graph_fragments(g)
        flat = [o for ops in frags for o in ops]
        assert sorted(flat) == sorted(g.ops)
        assert len(flat) == len(set(flat))

    def test_deterministic_order(self):
        g = video_edge_graph(5, 48, 48, 5, 4)
        assert graph_fragments(g) == graph_fragments(g)


class TestExtractFragment:
    def test_fragment_is_valid_standalone_graph(self):
        g = video_edge_graph(4, 48, 48, 5, 4)
        for ops in graph_fragments(g):
            sub = extract_fragment(g, ops)
            sub.validate()
            assert list(sub.ops) == ops

    def test_shared_inputs_duplicated_per_fragment(self):
        g = video_edge_graph(3, 48, 48, 5, 4)
        subs = [extract_fragment(g, ops) for ops in graph_fragments(g)]
        for sub in subs:
            assert "K1" in sub.data and sub.data["K1"].is_input

    def test_consumers_filtered_to_members(self):
        g = video_edge_graph(3, 48, 48, 5, 4)
        sub = extract_fragment(g, graph_fragments(g)[0])
        for d, cons in sub.consumers.items():
            assert all(c in sub.ops for c in cons)


class TestFragmentKey:
    def test_stable_across_rebuilds(self):
        a = extract_fragment(*_first_fragment(video_edge_graph(3, 48, 48, 5, 4)))
        b = extract_fragment(*_first_fragment(video_edge_graph(3, 48, 48, 5, 4)))
        assert fragment_key(a, DEV, OPTS) == fragment_key(b, DEV, OPTS)

    def test_edit_changes_only_edited_fragment_key(self):
        g1 = edge_forest_graph(4, 64, 64, 5, 4)
        g2 = edge_forest_graph(4, 64, 64, 5, 4, branch_combine={2: "add"})
        k1 = [fragment_key(extract_fragment(g1, ops), DEV, OPTS)
              for ops in graph_fragments(g1)]
        k2 = [fragment_key(extract_fragment(g2, ops), DEV, OPTS)
              for ops in graph_fragments(g2)]
        assert [a == b for a, b in zip(k1, k2)] == [True, True, False, True]

    def test_namespaced_away_from_whole_template_keys(self):
        from repro.core import plan_key

        g = find_edges_graph(48, 40, 5, 4)
        sub = extract_fragment(g, graph_fragments(g)[0], name=g.name)
        assert fragment_key(sub, DEV, OPTS) != plan_key(sub, DEV, OPTS)


def _first_fragment(g):
    return g, graph_fragments(g)[0]


# ---------------------------------------------------------------------------
# compile_incremental
# ---------------------------------------------------------------------------
class TestCompileIncremental:
    def test_cold_then_warm(self):
        fw = fw_with_cache()
        g = video_edge_graph(6, 48, 48, 5, 4)
        cold = fw.compile_incremental(g)
        assert cold.total_fragments == 6 and cold.reused_fragments == 0
        warm = fw.compile_incremental(g)
        assert warm.reused_fragments == 6
        assert warm.reuse_ratio == 1.0
        assert json.dumps(plan_to_dict(cold.compiled.plan)) == json.dumps(
            plan_to_dict(warm.compiled.plan)
        )

    def test_one_branch_edit_replans_one_fragment(self):
        fw = fw_with_cache()
        g = edge_forest_graph(5, 64, 64, 5, 4)
        fw.compile_incremental(g)
        edited = edge_forest_graph(5, 64, 64, 5, 4, branch_combine={1: "add"})
        inc = fw.compile_incremental(edited)
        assert inc.total_fragments == 5
        assert inc.reused_fragments == 4

    def test_stitched_plan_validates(self):
        fw = fw_with_cache()
        g = video_edge_graph(4, 48, 48, 5, 4)
        inc = fw.compile_incremental(g)
        peak = validate_plan(
            inc.compiled.plan, inc.compiled.graph, DEV.usable_memory_floats
        )
        assert peak == inc.compiled.peak_device_floats

    def test_stitched_execution_bitwise_matches_monolithic(self):
        fw = fw_with_cache()
        g = edge_forest_graph(3, 48, 48, 5, 4)
        inputs = edge_forest_inputs(3, 48, 48, 5, 4, seed=5)
        inc = fw.compile_incremental(g)
        mono = fw.compile(g)
        got = fw.execute(inc.compiled, inputs).outputs
        ref = fw.execute(mono, inputs).outputs
        assert set(got) == set(ref)
        for k in ref:
            assert np.array_equal(got[k], ref[k])

    def test_split_fragments_stitch(self):
        """Fragments that need operator splitting still stitch cleanly."""
        dev = GpuDevice(name="inc-tight", memory_bytes=64 * KB)
        fw = Framework(dev, options=OPTS, plan_cache=PlanCache(max_entries=64))
        g = edge_forest_graph(3, 96, 96, 5, 4)
        inc = fw.compile_incremental(g)
        assert inc.total_fragments == 3
        assert inc.compiled.split_report.split_ops
        inputs = edge_forest_inputs(3, 96, 96, 5, 4, seed=9)
        ref = fw.execute(fw.compile(g), inputs).outputs
        got = fw.execute(inc.compiled, inputs).outputs
        for k in ref:
            assert np.array_equal(got[k], ref[k])

    def test_no_cache_recompiles_everything(self):
        fw = Framework(DEV, options=OPTS, plan_cache=False)
        g = video_edge_graph(3, 48, 48, 5, 4)
        inc = fw.compile_incremental(g)
        assert inc.reused_fragments == 0
        inc2 = fw.compile_incremental(g)
        assert inc2.reused_fragments == 0  # nothing cached, still correct

    def test_connected_graph_degenerates_to_single_fragment(self):
        fw = fw_with_cache()
        g = cnn_graph(SMALL_CNN, 48, 48)
        inc = fw.compile_incremental(g)
        assert inc.total_fragments == 1

    def test_fragment_spans_recorded(self):
        fw = fw_with_cache()
        inc = fw.compile_incremental(video_edge_graph(3, 48, 48, 5, 4))
        names = [sp.name for sp in inc.compiled.spans]
        assert "compile_incremental" in names
        assert "stitch" in names
        assert names.count("fragment_compile") == 3

    def test_never_stores_under_whole_template_key(self):
        from repro.core import plan_key

        cache = PlanCache(max_entries=128)
        fw = fw_with_cache(cache)
        g = video_edge_graph(3, 48, 48, 5, 4)
        fw.compile_incremental(g)
        assert cache.get(plan_key(g, DEV, OPTS)) is None

    def test_failed_fragment_compile_abandons_leadership(self, tmp_path):
        cache = SharedPlanCache(str(tmp_path), lock_timeout=5.0)
        fw = Framework(DEV, options=OPTS, plan_cache=cache)
        g = video_edge_graph(2, 48, 48, 5, 4)
        bad = CompileOptions(scheduler="nope", split_headroom=1.0)
        with pytest.raises(Exception):
            compile_incremental(fw, g, options=bad)
        assert not cache._held  # leadership released, no stuck followers
