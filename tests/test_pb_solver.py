"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import Solver, luby


def brute_force_sat(nvars, clauses):
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for cl in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in cl):
                ok = False
                break
        if ok:
            return bits
    return None


def check_model(solver, clauses):
    model = solver.model()
    for cl in clauses:
        assert any(model[abs(l)] == (l > 0) for l in cl), cl


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers(self):
        # positions 2^k - 1 hold 2^(k-1)
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve()

    def test_single_unit(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve()
        assert s.value(a) is True
        assert s.value(-a) is False

    def test_unit_conflict_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert not s.solve()
        assert not s.ok

    def test_implication_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(20)]
        for i in range(19):
            s.add_clause([-vs[i], vs[i + 1]])
        s.add_clause([vs[0]])
        assert s.solve()
        assert all(s.value(v) for v in vs)

    def test_tautology_ignored(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, -a, b])
        s.add_clause([-b])
        assert s.solve()
        assert s.value(b) is False

    def test_duplicate_literals_collapsed(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a, a, a])
        assert s.solve()
        assert s.value(a) is True

    def test_zero_literal_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_xor_gadget(self):
        # a xor b == True
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, -b])
        assert s.solve()
        assert s.value(a) != s.value(b)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance.
        s = Solver()
        p = {(i, j): s.new_var() for i in range(3) for j in range(2)}
        for i in range(3):
            s.add_clause([p[i, 0], p[i, 1]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[i1, j], -p[i2, j]])
        assert not s.solve()

    def test_pigeonhole_5_into_4_unsat(self):
        s = Solver()
        n, m = 5, 4
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[i, j] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[i1, j], -p[i2, j]])
        assert not s.solve()


class TestIncremental:
    def test_add_clause_between_solves(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve()
        s.add_clause([-a])
        assert s.solve()
        assert s.value(b) is True
        s.add_clause([-b])
        assert not s.solve()

    def test_descending_cardinality(self):
        # Emulate the optimiser: repeatedly forbid the current model.
        s = Solver()
        vs = [s.new_var() for _ in range(6)]
        s.add_clause(vs)
        count = 0
        while s.solve():
            model = s.model()
            s.add_clause([-v if model[v] else v for v in vs])
            count += 1
            assert count <= 2**6
        assert count == 2**6 - 1  # all assignments except all-false


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a])
        assert s.value(b) is True

    def test_conflicting_assumptions(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.solve(assumptions=[-a])
        # formula itself still satisfiable
        assert s.solve()

    def test_assumptions_do_not_persist(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a, -b]) is False
        assert s.solve()


class TestRandomAgainstBruteForce:
    def test_random_3sat(self):
        rng = random.Random(42)
        for trial in range(200):
            n = rng.randint(3, 9)
            m = rng.randint(2, 4 * n)
            clauses = []
            for _ in range(m):
                k = rng.randint(1, 3)
                cl = [
                    rng.choice([1, -1]) * rng.randint(1, n) for _ in range(k)
                ]
                clauses.append(cl)
            s = Solver()
            s.ensure_vars(n)
            for cl in clauses:
                s.add_clause(cl)
            expected = brute_force_sat(n, clauses)
            got = s.solve()
            assert got == (expected is not None), (trial, clauses)
            if got:
                check_model(s, clauses)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(2, 7).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.lists(
                    st.integers(1, n).map(lambda v: v)
                    .flatmap(lambda v: st.sampled_from([v, -v])),
                    min_size=1,
                    max_size=3,
                ),
                min_size=1,
                max_size=20,
            ),
        )
    )
)
def test_hypothesis_matches_brute_force(case):
    n, clauses = case
    s = Solver()
    s.ensure_vars(n)
    for cl in clauses:
        s.add_clause(cl)
    expected = brute_force_sat(n, clauses)
    got = s.solve()
    assert got == (expected is not None)
    if got:
        check_model(s, clauses)


# ---------------------------------------------------------------------------
# UNSAT coverage and timeout / heuristic fallback (repro.core.pbopt)
# ---------------------------------------------------------------------------
def _pigeonhole(solver, pigeons, holes):
    """Post the classic UNSAT-for-pigeons>holes instance."""
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = solver.new_var()
    for p in range(pigeons):
        solver.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            solver.add_clause([-var[p1, h], -var[p2, h]])


class TestConflictLimit:
    def test_interrupted_is_not_unsat(self):
        s = Solver()
        _pigeonhole(s, 9, 8)
        assert s.solve(conflict_limit=20) is False
        assert s.interrupted
        assert s.ok  # not refuted: the instance may still be solvable

    def test_full_solve_after_interrupt_proves_unsat(self):
        s = Solver()
        _pigeonhole(s, 7, 6)
        assert s.solve(conflict_limit=5) is False
        assert s.interrupted
        assert s.solve() is False
        assert not s.interrupted
        assert not s.ok

    def test_sat_instance_unaffected_by_generous_limit(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, b])
        assert s.solve(conflict_limit=10_000)
        assert not s.interrupted
        assert s.value(b) is True


class TestMinimizeBudget:
    def test_unsat_status(self):
        from repro.pb.optimize import PBSolver

        pb = PBSolver()
        x = pb.new_var()
        pb.add_clause([x])
        pb.add_clause([-x])
        res = pb.minimize([(1, x)])
        assert res.status == "unsat"
        assert not res.has_model

    def test_timeout_without_model(self):
        from repro.pb.optimize import PBSolver

        pb = PBSolver()
        _pigeonhole(pb._solver, 9, 8)
        res = pb.minimize([(1, 1)], conflict_budget=10)
        assert res.status == "timeout"
        assert res.model is None
        assert not res.has_model

    def test_optimal_within_budget(self):
        from repro.pb.optimize import PBSolver

        pb = PBSolver()
        xs = pb.new_vars(4)
        pb.add_clause(xs)  # at least one true
        res = pb.minimize([(1, x) for x in xs], conflict_budget=100_000)
        assert res.status == "optimal"
        assert res.value == 1
        assert res.has_model


class TestHeuristicFallback:
    """PBScheduler timeout handling and pb_plan_or_heuristic fallback."""

    def _template(self):
        from repro.templates import find_edges_graph

        return find_edges_graph(64, 64, kernel_size=8, num_orientations=4)

    def _tight_capacity(self, graph):
        return max(
            sum(graph.data[d].size for d in set(op.inputs) | set(op.outputs))
            for op in graph.ops.values()
        )

    def test_pb_path_when_budget_suffices(self):
        from repro.core.pbopt import pb_plan_or_heuristic
        from repro.core.plan import validate_plan
        from repro.templates import find_edges_graph

        graph = find_edges_graph(64, 64, kernel_size=4, num_orientations=2)
        capacity = graph.total_data_size()
        result = pb_plan_or_heuristic(graph, capacity, conflict_budget=500_000)
        assert result.source == "pb"
        assert result.optimal
        validate_plan(result.plan, graph, capacity)

    def test_incumbent_kept_when_descent_times_out(self):
        from repro.core.pbopt import PBScheduler
        from repro.core.plan import validate_plan

        graph = self._template()
        capacity = self._tight_capacity(graph)
        # A zero budget lets the warm-started first solve succeed but
        # stops the descent at its first conflict: the best model so far
        # is kept as a feasible (not proven-optimal) incumbent.
        result = PBScheduler(graph, capacity).solve(conflict_budget=0)
        assert result.source == "pb-incumbent"
        assert not result.optimal
        validate_plan(result.plan, graph, capacity)

    def test_entry_point_always_yields_valid_plan_under_budget(self):
        from repro.core.pbopt import pb_plan_or_heuristic
        from repro.core.plan import validate_plan

        graph = self._template()
        capacity = self._tight_capacity(graph)
        # With the heuristic upper bound asserted, a zero budget dies on
        # the first conflict; whichever path wins must produce a plan
        # that validates at the requested capacity.
        result = pb_plan_or_heuristic(graph, capacity, conflict_budget=0)
        assert result.source in ("pb", "pb-incumbent", "heuristic")
        validate_plan(result.plan, graph, capacity)

    def test_timeout_error_when_no_incumbent(self, monkeypatch):
        from repro.core import pbopt
        from repro.pb.optimize import OptResult, PBSolver

        graph = self._template()
        monkeypatch.setattr(
            PBSolver,
            "minimize",
            lambda self, *a, **kw: OptResult(status="timeout", solve_calls=1),
        )
        with pytest.raises(pbopt.PBTimeoutError):
            pbopt.PBScheduler(graph, graph.total_data_size()).solve(
                conflict_budget=1
            )

    def test_fallback_on_timeout(self, monkeypatch):
        from repro.core import pbopt
        from repro.core.plan import validate_plan
        from repro.core.scheduling import dfs_schedule
        from repro.core.transfers import schedule_transfers

        graph = self._template()
        capacity = graph.total_data_size()

        def always_timeout(self, *a, **kw):
            raise pbopt.PBTimeoutError("budget exhausted before any model")

        monkeypatch.setattr(pbopt.PBScheduler, "solve", always_timeout)
        result = pbopt.pb_plan_or_heuristic(
            graph, capacity, conflict_budget=1
        )
        assert result.source == "heuristic"
        assert not result.optimal
        assert result.solve_calls == 0
        validate_plan(result.plan, graph, capacity)
        expected = schedule_transfers(graph, dfs_schedule(graph), capacity)
        assert result.transfer_floats == expected.transfer_floats(graph)
        assert result.op_order == dfs_schedule(graph)

    def test_fallback_on_infeasible_formulation(self):
        from repro.core.pbopt import (
            PBInfeasibleError,
            PBScheduler,
            pb_plan_or_heuristic,
        )
        from repro.core.plan import validate_plan
        from repro.templates import find_edges_graph

        graph = find_edges_graph(64, 64, kernel_size=4, num_orientations=2)
        # Below the largest op footprint the formulation is infeasible...
        capacity = self._tight_capacity(graph) // 2
        with pytest.raises(PBInfeasibleError):
            PBScheduler(graph, capacity).solve()
        # ...and the entry point degrades to the heuristic only if that
        # pipeline fits; at this capacity neither does, so the error
        # propagates from the fallback itself.
        with pytest.raises(Exception):
            pb_plan_or_heuristic(graph, capacity)
