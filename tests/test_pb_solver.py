"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import Solver, luby


def brute_force_sat(nvars, clauses):
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for cl in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in cl):
                ok = False
                break
        if ok:
            return bits
    return None


def check_model(solver, clauses):
    model = solver.model()
    for cl in clauses:
        assert any(model[abs(l)] == (l > 0) for l in cl), cl


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers(self):
        # positions 2^k - 1 hold 2^(k-1)
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve()

    def test_single_unit(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve()
        assert s.value(a) is True
        assert s.value(-a) is False

    def test_unit_conflict_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert not s.solve()
        assert not s.ok

    def test_implication_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(20)]
        for i in range(19):
            s.add_clause([-vs[i], vs[i + 1]])
        s.add_clause([vs[0]])
        assert s.solve()
        assert all(s.value(v) for v in vs)

    def test_tautology_ignored(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, -a, b])
        s.add_clause([-b])
        assert s.solve()
        assert s.value(b) is False

    def test_duplicate_literals_collapsed(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a, a, a])
        assert s.solve()
        assert s.value(a) is True

    def test_zero_literal_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_xor_gadget(self):
        # a xor b == True
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, -b])
        assert s.solve()
        assert s.value(a) != s.value(b)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance.
        s = Solver()
        p = {(i, j): s.new_var() for i in range(3) for j in range(2)}
        for i in range(3):
            s.add_clause([p[i, 0], p[i, 1]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[i1, j], -p[i2, j]])
        assert not s.solve()

    def test_pigeonhole_5_into_4_unsat(self):
        s = Solver()
        n, m = 5, 4
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[i, j] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[i1, j], -p[i2, j]])
        assert not s.solve()


class TestIncremental:
    def test_add_clause_between_solves(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve()
        s.add_clause([-a])
        assert s.solve()
        assert s.value(b) is True
        s.add_clause([-b])
        assert not s.solve()

    def test_descending_cardinality(self):
        # Emulate the optimiser: repeatedly forbid the current model.
        s = Solver()
        vs = [s.new_var() for _ in range(6)]
        s.add_clause(vs)
        count = 0
        while s.solve():
            model = s.model()
            s.add_clause([-v if model[v] else v for v in vs])
            count += 1
            assert count <= 2**6
        assert count == 2**6 - 1  # all assignments except all-false


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a])
        assert s.value(b) is True

    def test_conflicting_assumptions(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.solve(assumptions=[-a])
        # formula itself still satisfiable
        assert s.solve()

    def test_assumptions_do_not_persist(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a, -b]) is False
        assert s.solve()


class TestRandomAgainstBruteForce:
    def test_random_3sat(self):
        rng = random.Random(42)
        for trial in range(200):
            n = rng.randint(3, 9)
            m = rng.randint(2, 4 * n)
            clauses = []
            for _ in range(m):
                k = rng.randint(1, 3)
                cl = [
                    rng.choice([1, -1]) * rng.randint(1, n) for _ in range(k)
                ]
                clauses.append(cl)
            s = Solver()
            s.ensure_vars(n)
            for cl in clauses:
                s.add_clause(cl)
            expected = brute_force_sat(n, clauses)
            got = s.solve()
            assert got == (expected is not None), (trial, clauses)
            if got:
                check_model(s, clauses)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(2, 7).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.lists(
                    st.integers(1, n).map(lambda v: v)
                    .flatmap(lambda v: st.sampled_from([v, -v])),
                    min_size=1,
                    max_size=3,
                ),
                min_size=1,
                max_size=20,
            ),
        )
    )
)
def test_hypothesis_matches_brute_force(case):
    n, clauses = case
    s = Solver()
    s.ensure_vars(n)
    for cl in clauses:
        s.add_clause(cl)
    expected = brute_force_sat(n, clauses)
    got = s.solve()
    assert got == (expected is not None)
    if got:
        check_model(s, clauses)
