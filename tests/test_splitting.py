"""Tests for operator splitting (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InfeasibleTemplateError,
    OperatorGraph,
    chunk_range,
    chunks_of,
    estimate_split,
    make_feasible,
    partition_data,
    select_chunks,
    split_operator,
)
from repro.core.graph import op_slots
from repro.runtime import reference_execute
from repro.templates import find_edges_graph, find_edges_inputs

rng = np.random.default_rng(7)


def conv_graph(h=100, w=100, k=5, mode="valid"):
    g = OperatorGraph("conv")
    g.add_data("A", (h, w), is_input=True)
    g.add_data("K", (k, k), is_input=True)
    if mode == "valid":
        g.add_data("B", (h - k + 1, w - k + 1), is_output=True)
    else:
        g.add_data("B", (h, w), is_output=True)
    g.add_operator("C", "conv2d", ["A", "K"], ["B"], mode=mode)
    return g


class TestPaperExample:
    """Section 3.2: 100x100 (*) 5x5 split in two -> two 100x52 inputs."""

    def test_split_sizes_and_offsets(self):
        g = conv_graph()
        parts = split_operator(g, "C", 2)
        assert len(parts) == 2
        g.validate()
        s0 = op_slots(g.ops[parts[0]], g)[0]
        s1 = op_slots(g.ops[parts[1]], g)[0]
        assert s0.rows == (0, 52)  # 48 output rows need 52 input rows
        assert s1.rows == (48, 100)
        # outputs are 48-row halves of the 96-row result
        assert g.data[g.ops[parts[0]].outputs[0]].shape == (48, 96)
        assert g.data[g.ops[parts[1]].outputs[0]].shape == (48, 96)

    def test_kernel_never_split(self):
        g = conv_graph()
        parts = split_operator(g, "C", 4)
        for p in parts:
            kslot = op_slots(g.ops[p], g)[1]
            assert kslot.rows is None
            assert kslot.chunks == ["K"]
        assert not g.data["K"].virtual

    def test_numerics_preserved(self):
        g = conv_graph()
        a = rng.standard_normal((100, 100)).astype(np.float32)
        kk = rng.standard_normal((5, 5)).astype(np.float32)
        ref = reference_execute(conv_graph(), {"A": a, "K": kk})["B"]
        split_operator(g, "C", 3)
        out = reference_execute(g, {"A": a, "K": kk})["B"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestPartitionData:
    def make(self):
        g = OperatorGraph()
        g.add_data("A", (10, 4), is_input=True)
        g.add_data("B", (10, 4), is_output=True)
        g.add_operator("op", "remap", ["A"], ["B"])
        return g

    def test_basic_partition(self):
        g = self.make()
        partition_data(g, "A", [5])
        assert g.data["A"].virtual
        names = chunks_of(g, "A")
        assert [chunk_range(g, n) for n in names] == [(0, 5), (5, 10)]
        # consumer rewired to both chunks
        assert set(g.ops["op"].inputs) == set(names)
        g.validate()

    def test_refinement_keeps_existing_cuts(self):
        g = self.make()
        partition_data(g, "A", [5])
        partition_data(g, "A", [2, 5, 8])
        names = chunks_of(g, "A")
        assert [chunk_range(g, n) for n in names] == [
            (0, 2), (2, 5), (5, 8), (8, 10),
        ]
        g.validate()

    def test_noop_partition(self):
        g = self.make()
        partition_data(g, "A", [])
        assert not g.data["A"].virtual
        partition_data(g, "A", [0, 10])
        assert not g.data["A"].virtual

    def test_repartition_same_cuts_is_stable(self):
        g = self.make()
        partition_data(g, "A", [5])
        before = chunks_of(g, "A")
        partition_data(g, "A", [5])
        assert chunks_of(g, "A") == before

    def test_producer_rewritten_to_scatter(self):
        g = self.make()
        partition_data(g, "B", [4])
        op = g.ops["op"]
        specs = op.params["out_specs"]
        assert [c for _, c in specs[0].chunks] == [(0, 4), (4, 10)]
        assert len(op.outputs) == 2
        g.validate()

    def test_output_flag_inherited(self):
        g = self.make()
        partition_data(g, "B", [4])
        for n in chunks_of(g, "B"):
            assert g.data[n].is_output

    def test_partitioning_a_chunk_rejected(self):
        g = self.make()
        partition_data(g, "A", [5])
        chunk = chunks_of(g, "A")[0]
        with pytest.raises(Exception):
            partition_data(g, chunk, [2])

    def test_select_chunks(self):
        g = self.make()
        partition_data(g, "A", [3, 7])
        assert len(select_chunks(g, "A", None)) == 3
        sel = select_chunks(g, "A", (2, 4))
        assert [chunk_range(g, n) for n in sel] == [(0, 3), (3, 7)]
        sel = select_chunks(g, "A", (3, 7))
        assert [chunk_range(g, n) for n in sel] == [(3, 7)]


class TestSplitOperator:
    def test_split_one_returns_original(self):
        g = conv_graph()
        assert split_operator(g, "C", 1) == ["C"]

    def test_split_capped_by_rows(self):
        g = conv_graph(h=8, w=8, k=3)
        parts = split_operator(g, "C", 100)
        assert len(parts) == 6  # output has 6 rows

    def test_unsplittable_kind_raises(self):
        g = OperatorGraph()
        g.add_data("a", (4, 4), is_input=True)
        g.add_data("b", (4, 4), is_output=True)
        g.add_operator("f", "fused", ["a"], ["b"], subgraph=None,
                       input_names=["a"], output_names=["b"])
        with pytest.raises(InfeasibleTemplateError):
            split_operator(g, "f", 2)

    def test_resplit_part(self):
        """Splitting a part again refines, preserving numerics."""
        g = conv_graph(mode="same")
        a = rng.standard_normal((100, 100)).astype(np.float32)
        kk = rng.standard_normal((5, 5)).astype(np.float32)
        ref = reference_execute(conv_graph(mode="same"), {"A": a, "K": kk})["B"]
        parts = split_operator(g, "C", 2)
        split_operator(g, parts[0], 2)
        g.validate()
        out = reference_execute(g, {"A": a, "K": kk})["B"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_multi_consumer_input_partition(self):
        """Partitioning an input rewires all its consumers."""
        g = OperatorGraph()
        g.add_data("A", (20, 4), is_input=True)
        g.add_data("B", (20, 4))
        g.add_data("C", (20, 4), is_output=True)
        g.add_operator("p", "remap", ["A"], ["B"])
        g.add_operator("q", "max", ["A", "B"], ["C"])
        split_operator(g, "q", 2)
        g.validate()
        assert g.data["A"].virtual
        # p (unsplit) now reads both chunks of A
        assert len(g.ops["p"].inputs) == 2

    def test_reduce_partial_split(self):
        g = OperatorGraph()
        g.add_data("X", (12, 5), is_input=True)
        g.add_data("S", (1, 5), is_output=True)
        g.add_operator("r", "reduce", ["X"], ["S"], fn="mean")
        x = rng.standard_normal((12, 5)).astype(np.float32)
        ref = x.mean(axis=0, keepdims=True)
        parts = split_operator(g, "r", 3)
        g.validate()
        assert any("combine" in p for p in parts)
        out = reference_execute(g, {"X": x})["S"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("fn", ["sum", "max"])
    def test_reduce_partial_split_fns(self, fn):
        g = OperatorGraph()
        g.add_data("X", (10, 3), is_input=True)
        g.add_data("S", (1, 3), is_output=True)
        g.add_operator("r", "reduce", ["X"], ["S"], fn=fn)
        x = rng.standard_normal((10, 3)).astype(np.float32)
        ref = getattr(x, fn)(axis=0, keepdims=True)
        split_operator(g, "r", 4)
        out = reference_execute(g, {"X": x})["S"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestEstimate:
    def test_estimate_matches_actual(self):
        for nparts in (2, 3, 5):
            g = conv_graph(mode="same")
            est = estimate_split(g, "C", nparts)
            parts = split_operator(g, "C", nparts)
            actual = max(g.op_footprint(p) for p in parts)
            assert est == actual, nparts

    def test_estimate_unsplit(self):
        g = conv_graph()
        assert estimate_split(g, "C", 1) == g.op_footprint("C")


class TestMakeFeasible:
    def test_noop_when_fits(self):
        g = find_edges_graph(32, 32, 5, 4)
        rep = make_feasible(g, 10**9)
        assert not rep.any_split
        assert rep.rounds == 0

    def test_footprints_bounded(self):
        for cap_frac in (1.0, 0.5, 0.25, 0.1):
            g = find_edges_graph(60, 40, 7, 4)
            cap = int(g.max_footprint() * cap_frac) + 100
            rep = make_feasible(g, cap)
            assert all(g.op_footprint(o) <= cap for o in g.ops)

    def test_numerics_across_capacities(self):
        inputs = find_edges_inputs(48, 40, 5, 4, seed=3)
        ref = reference_execute(find_edges_graph(48, 40, 5, 4), inputs)["Edg"]
        for cap in (6000, 3000, 1500, 800):
            g = find_edges_graph(48, 40, 5, 4)
            make_feasible(g, cap)
            out = reference_execute(g, inputs)["Edg"]
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_infeasible_when_kernel_alone_too_big(self):
        g = conv_graph(h=10, w=10, k=5)
        with pytest.raises(InfeasibleTemplateError):
            make_feasible(g, 20)  # kernel is 25 floats

    def test_capacity_must_be_positive(self):
        g = conv_graph()
        with pytest.raises(ValueError):
            make_feasible(g, 0)

    def test_report_contents(self):
        g = find_edges_graph(60, 40, 7, 4)
        cap = g.max_footprint() // 2
        rep = make_feasible(g, cap)
        assert rep.any_split
        assert rep.split_ops
        assert rep.partitioned_roots
        for root, n in rep.partitioned_roots.items():
            assert len(chunks_of(g, root)) == n


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(12, 40),
    w=st.integers(4, 16),
    cap_frac=st.floats(0.15, 1.0),
    seed=st.integers(0, 99),
)
def test_property_split_preserves_results_and_capacity(h, w, cap_frac, seed):
    """Random chain templates stay correct and within capacity when split."""
    r = np.random.default_rng(seed)
    g = OperatorGraph("chain")
    g.add_data("X", (h, w), is_input=True)
    g.add_data("T1", (h, w))
    g.add_data("T2", (h, w))
    g.add_data("Y", (h, w), is_output=True)
    g.add_operator("r1", "remap", ["X"], ["T1"])
    g.add_operator("t", "tanh", ["T1"], ["T2"])
    g.add_operator("m", "max", ["T1", "T2"], ["Y"])
    x = r.standard_normal((h, w)).astype(np.float32)
    ref = np.maximum(np.abs(x), np.tanh(np.abs(x)))
    cap = max(int(g.max_footprint() * cap_frac), 3 * w + 1)
    make_feasible(g, cap)
    assert all(g.op_footprint(o) <= cap for o in g.ops)
    out = reference_execute(g, {"X": x})["Y"]
    np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestTreeCombine:
    """Tree reduction when a flat combine would not fit device memory."""

    def build(self, H=400, W=8):
        g = OperatorGraph()
        g.add_data("X", (H, W), is_input=True)
        g.add_data("S", (1, W), is_output=True)
        g.add_operator("r", "reduce", ["X"], ["S"], fn="mean")
        return g

    @pytest.mark.parametrize("fn", ["sum", "max", "mean"])
    def test_numerics_with_tiny_capacity(self, fn):
        H, W = 400, 8
        g = self.build(H, W)
        g.ops["r"].params["fn"] = fn
        x = rng.standard_normal((H, W)).astype(np.float32)
        cap = 10 * W
        make_feasible(g, cap)
        assert all(g.op_footprint(o) <= cap for o in g.ops)
        out = reference_execute(g, {"X": x})["S"]
        ref = getattr(x, fn)(axis=0, keepdims=True)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_merge_tree_structure(self):
        g = self.build()
        make_feasible(g, 10 * 8)
        merges = [o for o in g.ops if "merge" in o or "combine" in o]
        assert len(merges) > 1  # an actual tree, not a flat combine

    def test_split_combine_direct(self):
        from repro.core import split_combine
        from repro.core.splitting import _split_reduction

        g = self.build(H=64, W=4)
        _split_reduction(g, "r", 8)
        combine = next(o for o in g.ops if o.endswith(".combine"))
        parts = split_combine(g, combine, fan_in=3)
        g.validate()
        assert len(parts) >= 3
        x = rng.standard_normal((64, 4)).astype(np.float32)
        out = reference_execute(g, {"X": x})["S"]
        np.testing.assert_allclose(
            out, x.mean(axis=0, keepdims=True), rtol=1e-4, atol=1e-5
        )

    def test_fan_in_below_two_rejected(self):
        from repro.core import split_combine
        from repro.core.splitting import _split_reduction

        g = self.build(H=64, W=4)
        _split_reduction(g, "r", 4)
        combine = next(o for o in g.ops if o.endswith(".combine"))
        with pytest.raises(InfeasibleTemplateError):
            split_combine(g, combine, fan_in=1)
