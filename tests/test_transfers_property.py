"""Hypothesis property tests for the transfer scheduler.

Beyond the fixed-example tests in test_transfers.py: random layered
graphs, random capacities and every policy combination must produce
plans that validate, stay within capacity, and satisfy the analytic
bracketing (I/O bound <= plan volume <= baseline volume).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OperatorGraph,
    baseline_transfer_floats,
    dfs_schedule,
    schedule_transfers,
    validate_plan,
)


def layered_graph(seed: int, n_layers: int, width: int) -> OperatorGraph:
    rng = random.Random(seed)
    g = OperatorGraph(f"prop{seed}")
    prev = []
    for i in range(width):
        g.add_data(f"in{i}", (rng.choice([2, 4, 8]), 2), is_input=True)
        prev.append(f"in{i}")
    for layer in range(n_layers):
        cur = []
        for i in range(width):
            name = f"d{layer}_{i}"
            src = rng.sample(prev, k=rng.randint(1, min(2, len(prev))))
            shape = g.data[src[0]].shape
            src = [s for s in src if g.data[s].shape == shape]
            g.add_data(name, shape, is_output=(layer == n_layers - 1))
            g.add_operator(
                f"o{layer}_{i}",
                "remap" if len(src) == 1 else "max",
                src,
                [name],
            )
            cur.append(name)
        prev = cur
    # Orphan intermediate sinks become outputs so plans must save them.
    for d, ds in g.data.items():
        if not ds.is_input and not ds.is_output and not g.consumers.get(d):
            ds.is_output = True
    g.validate()
    return g


def consumed_io(g: OperatorGraph) -> int:
    """I/O bound counting only inputs that are actually read (a random
    layer may never sample some input, which then never crosses the bus)."""
    return sum(
        ds.size
        for d, ds in g.data.items()
        if (ds.is_input and g.consumers.get(d)) or ds.is_output
    )


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_layers=st.integers(1, 4),
    width=st.integers(1, 4),
    policy=st.sampled_from(["belady", "cost", "ltu", "lru", "fifo"]),
    eager=st.booleans(),
    slack=st.floats(1.0, 4.0),
)
def test_property_plans_always_valid_and_bracketed(
    seed, n_layers, width, policy, eager, slack
):
    g = layered_graph(seed, n_layers, width)
    cap = max(int(g.max_footprint() * slack), g.max_footprint())
    order = dfs_schedule(g)
    plan = schedule_transfers(g, order, cap, policy=policy, eager_free=eager)
    peak = validate_plan(plan, g, cap)
    assert peak <= cap
    volume = plan.transfer_floats(g)
    assert volume >= consumed_io(g)
    # The baseline moves every operator's I/O; a persistent-memory plan
    # with eager freeing never moves more.
    if eager:
        assert volume <= baseline_transfer_floats(g)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy=st.sampled_from(["belady", "cost", "ltu", "lru", "fifo"]),
)
def test_property_ample_memory_hits_io_bound(seed, policy):
    """With capacity >= total footprint every policy is I/O-optimal."""
    g = layered_graph(seed, 3, 3)
    plan = schedule_transfers(
        g, dfs_schedule(g), g.total_data_size() + 10, policy=policy
    )
    assert plan.transfer_floats(g) == consumed_io(g)


def test_belady_beats_fifo_in_aggregate():
    """Belady eviction wins over FIFO in aggregate, though not on every
    instance: greedy furthest-next-use ignores writeback (dirty-eviction)
    costs, which is exactly why the paper qualifies its optimality claim
    ("provided all the data structures are of the same size and are
    consumed exactly once").  We assert the aggregate advantage and that
    strict wins occur, and record that occasional losses are expected."""
    wins = losses = 0
    total_belady = total_fifo = 0
    for seed in range(60):
        g = layered_graph(seed, 3, 3)
        cap = g.max_footprint() + 4
        order = dfs_schedule(g)
        b = schedule_transfers(g, order, cap, policy="belady").transfer_floats(g)
        f = schedule_transfers(g, order, cap, policy="fifo").transfer_floats(g)
        total_belady += b
        total_fifo += f
        wins += b < f
        losses += b > f
    assert total_belady <= total_fifo
    assert wins > losses


def test_belady_optimal_under_paper_conditions():
    """Pure chains: uniform sizes, every value consumed exactly once —
    the conditions under which the paper claims optimality.  The Belady
    plan then meets the consumed-I/O bound exactly at any capacity that
    fits the largest operator."""
    for n in (3, 6, 10):
        g = OperatorGraph(f"chain{n}")
        g.add_data("in", (4, 2), is_input=True)
        prev = "in"
        for i in range(n):
            name = f"d{i}"
            g.add_data(name, (4, 2), is_output=(i == n - 1))
            g.add_operator(f"o{i}", "tanh", [prev], [name])
            prev = name
        for cap in (g.max_footprint(), g.max_footprint() * 2):
            plan = schedule_transfers(g, dfs_schedule(g), cap, policy="belady")
            assert plan.transfer_floats(g) == consumed_io(g)


def test_cost_policy_beats_belady_in_aggregate():
    """The writeback-aware refinement never loses in aggregate and wins
    strictly on instances where plain Belady evicts dirty intermediates
    over clean data (the counterexample family documented above)."""
    total_b = total_c = 0
    wins = losses = 0
    for seed in range(80):
        g = layered_graph(seed, 3, 3)
        cap = g.max_footprint() + 4
        order = dfs_schedule(g)
        b = schedule_transfers(g, order, cap, policy="belady").transfer_floats(g)
        c_plan = schedule_transfers(g, order, cap, policy="cost")
        validate_plan(c_plan, g, cap)
        c = c_plan.transfer_floats(g)
        total_b += b
        total_c += c
        wins += c < b
        losses += c > b
    assert total_c <= total_b
    assert wins >= losses
