"""Golden-plan regression tests for the two paper templates.

The compilation pipeline is deterministic: the same template, device
and options must always produce the same plan.  These tests pin the
serialized plans (tests/golden/*.json) so an accidental change anywhere
in the pipeline — scheduling order, eviction choice, splitting
granularity, device assignment — shows up as a readable unified diff
rather than a silent perf or correctness drift.

To bless an *intentional* pipeline change, regenerate with:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_plans.py

and commit the updated JSON together with the change that caused it.
"""

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.core import CompileOptions, Framework, plan_from_dict, plan_to_dict
from repro.core.plan import validate_plan
from repro.gpusim import GpuDevice, homogeneous_group
from repro.multigpu import compile_multi
from repro.templates import cnn_graph, find_edges_graph
from repro.templates.cnn import CNNArch, ConvLayerSpec

GOLDEN_DIR = Path(__file__).parent / "golden"
KB = 1024

#: pinned compilation configs; changing these invalidates the goldens
DEVICE = GpuDevice(name="golden-dev", memory_bytes=256 * KB)
OPTIONS = CompileOptions(split_headroom=1.0)


def _edge_compiled():
    return Framework(DEVICE, options=OPTIONS).compile(
        find_edges_graph(64, 64, 5, 4)
    )


#: the paper's 11-layer CNN shape with narrow planes — SMALL_CNN's
#: ~1000 operators would make the golden diff unreadable, and the
#: pipeline behaviour being pinned is identical
GOLDEN_CNN = CNNArch(
    name="golden_cnn",
    conv1=ConvLayerSpec(1, 2),
    conv2=ConvLayerSpec(2, 3),
    conv3=ConvLayerSpec(3, 3),
    conv4=ConvLayerSpec(3, 2),
)


def _cnn_compiled():
    return Framework(DEVICE, options=OPTIONS).compile(
        cnn_graph(GOLDEN_CNN, 48, 48)
    )


def _edge_multi():
    group = homogeneous_group(DEVICE, 2)
    return compile_multi(
        find_edges_graph(64, 64, 5, 4), group, options=OPTIONS
    )


CASES = {
    "edge_plan": _edge_compiled,
    "cnn_plan": _cnn_compiled,
    "edge_multi2_plan": _edge_multi,
}


def _golden_dict(compiled) -> dict:
    """The serialized plan, minus free-text notes (wording may evolve)."""
    out = plan_to_dict(compiled.plan)
    out.pop("notes", None)
    return out


def _render(d: dict) -> list[str]:
    return json.dumps(d, indent=2, sort_keys=True).splitlines(keepends=True)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name):
    compiled = CASES[name]()
    got = _golden_dict(compiled)
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"golden file {path} missing; run with REGEN_GOLDEN=1 to create it"
    )
    want = json.loads(path.read_text())
    if got != want:
        diff = "".join(
            difflib.unified_diff(
                _render(want),
                _render(got),
                fromfile=f"golden/{name}.json (committed)",
                tofile=f"golden/{name}.json (recompiled)",
                n=3,
            )
        )
        raise AssertionError(
            f"plan for {name!r} drifted from its golden copy.\n"
            "If this change is intentional, regenerate with REGEN_GOLDEN=1 "
            "and commit the JSON.\n" + diff
        )


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_roundtrips_and_validates(name):
    """The committed goldens themselves deserialize into valid plans."""
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists()
    plan = plan_from_dict(json.loads(path.read_text()))
    compiled = CASES[name]()
    caps: object = compiled.plan.capacity_floats
    if plan.devices:
        caps = [DEVICE.usable_memory_floats] * plan.num_devices
    validate_plan(plan, compiled.graph, caps)


def test_compilation_is_deterministic():
    """Two fresh compiles of the same config agree exactly."""
    a = _golden_dict(_edge_compiled())
    b = _golden_dict(_edge_compiled())
    assert a == b
