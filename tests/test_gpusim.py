"""Tests for the GPU platform simulator substrate."""

import numpy as np
import pytest

from repro.gpusim import (
    CORE2_DESKTOP,
    GEFORCE_8800_GTX,
    MB,
    TESLA_C870,
    XEON_WORKSTATION,
    CostModel,
    DeviceAllocator,
    EventKind,
    GpuDevice,
    OutOfDeviceMemoryError,
    SimRuntime,
    device_by_name,
)


class TestDevicePresets:
    def test_paper_memory_sizes(self):
        assert TESLA_C870.memory_bytes == 1536 * MB
        assert GEFORCE_8800_GTX.memory_bytes == 768 * MB

    def test_same_compute_different_memory(self):
        """Both GPUs: 128 cores at 1.35 GHz; they differ only in memory."""
        assert TESLA_C870.num_cores == GEFORCE_8800_GTX.num_cores == 128
        assert TESLA_C870.clock_hz == GEFORCE_8800_GTX.clock_hz
        assert TESLA_C870.memory_bytes == 2 * GEFORCE_8800_GTX.memory_bytes

    def test_peak_flops(self):
        assert TESLA_C870.peak_flops == 128 * 1.35e9 * 2

    def test_usable_memory_reserve(self):
        assert TESLA_C870.usable_memory_floats < TESLA_C870.memory_floats

    def test_with_memory_retarget(self):
        big = TESLA_C870.with_memory(4096 * MB)
        assert big.memory_bytes == 4096 * MB
        assert big.num_cores == TESLA_C870.num_cores

    def test_lookup_by_name(self):
        assert device_by_name("tesla_c870") is TESLA_C870
        assert device_by_name("GeForce 8800 GTX") is GEFORCE_8800_GTX
        with pytest.raises(KeyError):
            device_by_name("rtx_4090")

    def test_hosts(self):
        assert XEON_WORKSTATION.memory_bytes == CORE2_DESKTOP.memory_bytes


class TestAllocator:
    def test_alloc_free_roundtrip(self):
        a = DeviceAllocator(1 << 20)
        off = a.alloc(1000)
        assert a.in_use >= 1000
        a.free(off)
        assert a.in_use == 0
        assert a.largest_free_block == 1 << 20

    def test_alignment(self):
        a = DeviceAllocator(1 << 20, alignment=256)
        o1 = a.alloc(1)
        o2 = a.alloc(1)
        assert o2 - o1 == 256

    def test_oom(self):
        a = DeviceAllocator(1024)
        a.alloc(512)
        with pytest.raises(OutOfDeviceMemoryError) as ei:
            a.alloc(1024)
        assert ei.value.requested == 1024

    def test_coalescing(self):
        a = DeviceAllocator(1024, alignment=1)
        o1, o2, o3 = a.alloc(256), a.alloc(256), a.alloc(256)
        a.free(o1)
        a.free(o3)
        assert a.largest_free_block == 256 + 256  # o3 merges with tail
        a.free(o2)
        assert a.largest_free_block == 1024

    def test_fragmentation_metric(self):
        a = DeviceAllocator(1024, alignment=1)
        offs = [a.alloc(128) for _ in range(8)]
        for o in offs[::2]:
            a.free(o)
        assert a.fragmentation() > 0
        for o in offs[1::2]:
            a.free(o)
        assert a.fragmentation() == 0.0

    def test_peak_tracking(self):
        a = DeviceAllocator(1024, alignment=1)
        o = a.alloc(512)
        a.free(o)
        a.alloc(128)
        assert a.peak_in_use == 512

    def test_double_free_rejected(self):
        a = DeviceAllocator(1024)
        o = a.alloc(10)
        a.free(o)
        with pytest.raises(ValueError):
            a.free(o)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            DeviceAllocator(0)
        with pytest.raises(ValueError):
            DeviceAllocator(100, alignment=3)
        a = DeviceAllocator(100)
        with pytest.raises(ValueError):
            a.alloc(-1)

    def test_reset(self):
        a = DeviceAllocator(1024)
        a.alloc(100)
        a.reset()
        assert a.in_use == 0


class TestCostModel:
    def test_transfer_monotonic_with_latency(self):
        c = CostModel(TESLA_C870)
        assert c.transfer_time(0) == 0.0
        t1 = c.transfer_time(1)
        t2 = c.transfer_time(10 * MB)
        assert 0 < t1 < t2
        assert t1 >= TESLA_C870.pcie_latency

    def test_transfer_floats(self):
        c = CostModel(TESLA_C870)
        assert c.transfer_time_floats(100) == c.transfer_time(400)

    def test_kernel_roofline(self):
        c = CostModel(TESLA_C870)
        compute_bound = c.kernel_time(1e12, 0)
        memory_bound = c.kernel_time(0, 1e12)
        assert compute_bound > TESLA_C870.launch_overhead
        assert memory_bound > TESLA_C870.launch_overhead

    def test_negative_rejected(self):
        c = CostModel(TESLA_C870)
        with pytest.raises(ValueError):
            c.transfer_time(-1)
        with pytest.raises(ValueError):
            c.kernel_time(-1, 0)

    def test_thrashing_threshold(self):
        c = CostModel(TESLA_C870, XEON_WORKSTATION)
        assert not c.thrashing(XEON_WORKSTATION.memory_bytes)
        assert c.thrashing(XEON_WORKSTATION.memory_bytes + 1)

    def test_host_copy_paging_penalty(self):
        c = CostModel(TESLA_C870, XEON_WORKSTATION)
        fast = c.host_copy_time(1 * MB, 0)
        slow = c.host_copy_time(1 * MB, XEON_WORKSTATION.memory_bytes * 2)
        assert slow == pytest.approx(fast * XEON_WORKSTATION.paging_penalty)

    def test_no_host(self):
        c = CostModel(TESLA_C870)
        assert c.host_copy_time(1 * MB) == 0.0
        assert not c.thrashing(10**18)


class TestSimRuntime:
    def make(self, mem_bytes=1 * MB):
        return SimRuntime(GpuDevice(name="t", memory_bytes=mem_bytes))

    def test_roundtrip(self):
        rt = self.make()
        data = np.arange(100, dtype=np.float32)
        rt.malloc("x", 400)
        rt.memcpy_h2d("x", data)
        out = rt.memcpy_d2h("x")
        np.testing.assert_array_equal(out, data)
        assert rt.clock > 0

    def test_capacity_enforced(self):
        rt = self.make(mem_bytes=1024)
        rt.malloc("a", 512)
        with pytest.raises(OutOfDeviceMemoryError):
            rt.malloc("b", 1024)

    def test_double_malloc_rejected(self):
        rt = self.make()
        rt.malloc("a", 4)
        with pytest.raises(ValueError):
            rt.malloc("a", 4)

    def test_free_unknown_rejected(self):
        rt = self.make()
        with pytest.raises(KeyError):
            rt.free("nope")

    def test_h2d_overflow_rejected(self):
        rt = self.make()
        rt.malloc("a", 4)
        with pytest.raises(ValueError):
            rt.memcpy_h2d("a", np.zeros(100, dtype=np.float32))

    def test_d2h_uninitialised_rejected(self):
        rt = self.make()
        rt.malloc("a", 4)
        with pytest.raises(RuntimeError):
            rt.memcpy_d2h("a")

    def test_profile_events(self):
        rt = self.make()
        rt.malloc("a", 400)
        rt.memcpy_h2d("a", np.zeros(100, dtype=np.float32))
        rt.launch("k", 1e6, 800)
        rt.memcpy_d2h("a")
        rt.free("a")
        counts = rt.profile.counts()
        assert counts[EventKind.H2D.value] == 1
        assert counts[EventKind.D2H.value] == 1
        assert counts[EventKind.KERNEL.value] == 1
        assert rt.profile.transfer_time > 0
        assert rt.profile.compute_time > 0
        bd = rt.profile.breakdown()
        assert bd["transfer"] + bd["compute"] + bd["host"] == pytest.approx(1.0)

    def test_bytes_transferred(self):
        rt = self.make()
        rt.malloc("a", 400)
        rt.memcpy_h2d("a", np.zeros(100, dtype=np.float32))
        rt.memcpy_d2h("a")
        assert rt.profile.bytes_transferred() == 800

    def test_thrashing_slows_transfers(self):
        dev = GpuDevice(name="t", memory_bytes=1 * MB)
        fast = SimRuntime(dev, XEON_WORKSTATION)
        slow = SimRuntime(dev, XEON_WORKSTATION)
        slow.host_working_set = XEON_WORKSTATION.memory_bytes * 2
        for rt in (fast, slow):
            rt.malloc("a", 4000)
            rt.memcpy_h2d("a", np.zeros(1000, dtype=np.float32))
        assert slow.clock > fast.clock
        assert slow.thrashed and not fast.thrashed

    def test_write_device_and_read_device(self):
        rt = self.make()
        rt.malloc("a", 400)
        rt.write_device("a", np.ones(100, dtype=np.float32))
        np.testing.assert_array_equal(rt.read_device("a"), np.ones(100))
        assert rt.resident("a")
        rt.free("a")
        assert not rt.resident("a")
