"""Tests for plan execution: reference, numeric-on-simulator, analytic."""

import numpy as np
import pytest

from repro.core import (
    Framework,
    baseline_plan,
    dfs_schedule,
    make_feasible,
    schedule_transfers,
)
from repro.gpusim import GpuDevice, SimRuntime, XEON_WORKSTATION
from repro.runtime import (
    execute_plan,
    reference_execute,
    simulate_plan,
)
from repro.templates import (
    SMALL_CNN,
    cnn_graph,
    cnn_inputs,
    find_edges_graph,
    find_edges_inputs,
)

DEV = GpuDevice(name="test-dev", memory_bytes=256 * 1024)  # 64k floats


class TestReferenceExecute:
    def test_edge_matches_numpy(self):
        from scipy.signal import correlate2d

        g = find_edges_graph(20, 16, 3, 2)
        inputs = find_edges_inputs(20, 16, 3, 2, seed=1)
        out = reference_execute(g, inputs)["Edg"]
        e1 = correlate2d(inputs["Img"], inputs["K1"], mode="same")
        e2 = np.abs(e1)
        np.testing.assert_allclose(out, np.maximum(e1, e2), rtol=1e-4, atol=1e-5)

    def test_missing_input_raises(self):
        g = find_edges_graph(10, 10, 3, 2)
        with pytest.raises(KeyError):
            reference_execute(g, {"Img": np.zeros((10, 10), np.float32)})


class TestExecutePlan:
    def build(self, cap_frac=0.5):
        g = find_edges_graph(48, 40, 5, 4)
        cap = int(g.max_footprint() * cap_frac)
        make_feasible(g, cap)
        plan = schedule_transfers(g, dfs_schedule(g), cap)
        return g, plan

    def test_matches_reference(self):
        inputs = find_edges_inputs(48, 40, 5, 4, seed=2)
        ref = reference_execute(find_edges_graph(48, 40, 5, 4), inputs)["Edg"]
        g, plan = self.build()
        rt = SimRuntime(DEV)
        res = execute_plan(plan, g, rt, inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)

    def test_result_accounting(self):
        g, plan = self.build()
        inputs = find_edges_inputs(48, 40, 5, 4, seed=2)
        rt = SimRuntime(DEV)
        res = execute_plan(plan, g, rt, inputs)
        assert res.h2d_floats == plan.h2d_floats(g)
        assert res.d2h_floats == plan.d2h_floats(g)
        assert res.elapsed > 0
        assert res.transfer_time > 0
        assert res.compute_time > 0
        assert res.elapsed == pytest.approx(rt.clock)

    def test_device_capacity_enforced_by_allocator(self):
        """A plan compiled for a big device fails on a smaller one."""
        from repro.gpusim import OutOfDeviceMemoryError

        g = find_edges_graph(48, 40, 5, 4)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        tiny = SimRuntime(GpuDevice(name="tiny", memory_bytes=10 * 1024))
        with pytest.raises(OutOfDeviceMemoryError):
            execute_plan(plan, g, tiny, find_edges_inputs(48, 40, 5, 4))

    def test_baseline_plan_executes(self):
        g = find_edges_graph(32, 24, 3, 2)
        inputs = find_edges_inputs(32, 24, 3, 2, seed=5)
        ref = reference_execute(g, inputs)["Edg"]
        plan = baseline_plan(g, 10**9)
        rt = SimRuntime(GpuDevice(name="big", memory_bytes=64 * 1024 * 1024))
        res = execute_plan(plan, g, rt, inputs)
        np.testing.assert_allclose(res.outputs["Edg"], ref, rtol=1e-4, atol=1e-5)


class TestSimulatePlan:
    def test_agrees_with_numeric_execution(self):
        g = find_edges_graph(48, 40, 5, 4)
        cap = int(g.max_footprint() * 0.5)
        make_feasible(g, cap)
        plan = schedule_transfers(g, dfs_schedule(g), cap)
        sim = simulate_plan(plan, g, DEV)
        rt = SimRuntime(DEV)
        res = execute_plan(plan, g, rt, find_edges_inputs(48, 40, 5, 4))
        assert sim.h2d_floats == res.h2d_floats
        assert sim.d2h_floats == res.d2h_floats
        assert sim.transfer_time == pytest.approx(res.transfer_time, rel=1e-6)
        assert sim.compute_time == pytest.approx(res.compute_time, rel=1e-6)

    def test_peak_device_usage(self):
        g = find_edges_graph(32, 24, 3, 2)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        sim = simulate_plan(plan, g, DEV)
        assert 0 < sim.peak_device_floats <= g.total_data_size()

    def test_thrashing_flag(self):
        """Transfers slow down and the run is flagged once the host
        working set exceeds RAM (Table 2's inconsistent entries)."""
        from repro.gpusim import HostSystem

        g = find_edges_graph(64, 48, 5, 4)
        cap = g.max_footprint() // 2
        make_feasible(g, cap)
        plan = schedule_transfers(g, dfs_schedule(g), cap)
        tiny_host = HostSystem(name="tiny-host", memory_bytes=1024)
        sim = simulate_plan(plan, g, DEV, tiny_host)
        ok = simulate_plan(plan, g, DEV, XEON_WORKSTATION)
        assert sim.thrashed and sim.inconsistent
        assert not ok.thrashed
        assert sim.total_time > ok.total_time

    def test_breakdown_fractions(self):
        g = find_edges_graph(32, 24, 3, 2)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        sim = simulate_plan(plan, g, DEV)
        bd = sim.breakdown()
        assert bd["transfer"] + bd["compute"] == pytest.approx(1.0)

    def test_record_events(self):
        g = find_edges_graph(32, 24, 3, 2)
        plan = schedule_transfers(g, dfs_schedule(g), 10**9)
        sim = simulate_plan(plan, g, DEV, record_events=True)
        assert len(sim.events) == len(plan.steps)


class TestCNNEndToEnd:
    def test_small_cnn_split_and_executed(self):
        g = cnn_graph(SMALL_CNN, 48, 48)
        inputs = cnn_inputs(SMALL_CNN, 48, 48, seed=9)
        ref = reference_execute(cnn_graph(SMALL_CNN, 48, 48), inputs)
        fw = Framework(GpuDevice(name="t", memory_bytes=64 * 1024))
        compiled = fw.compile(g)
        res = fw.execute(compiled, inputs)
        assert set(res.outputs) == set(ref)
        for k in ref:
            np.testing.assert_allclose(
                res.outputs[k], ref[k], rtol=1e-4, atol=1e-5
            )
