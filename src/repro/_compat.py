"""Deprecation shims for the pre-facade call shapes.

The public surface is keyword-only from the facade redesign onward
(`repro.compile(...)`, `Framework(device, host=...)`,
`CompileOptions(scheduler=...)`).  Old positional call shapes keep
working — routed through :func:`legacy_positional` — but emit a
:class:`DeprecationWarning` naming the replacement, and are exercised by
tests that pin byte-identical plans against the new surface.
"""

from __future__ import annotations

import warnings
from typing import Any, Sequence


#: distinguishes "not passed" from an explicit None/False keyword so the
#: legacy-positional shims can reject genuine duplicates
UNSET: Any = object()


def explicit_kwargs(**kwargs: Any) -> dict[str, Any]:
    """The subset of ``kwargs`` the caller actually passed (is not UNSET)."""
    return {k: v for k, v in kwargs.items() if v is not UNSET}


def legacy_positional(
    where: str,
    names: Sequence[str],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
) -> dict[str, Any]:
    """Fold deprecated positional ``args`` into ``kwargs``.

    ``names`` lists the keyword parameters the positionals map to, in
    declaration order.  Returns ``kwargs`` with the positionals merged
    in; raises ``TypeError`` for overflow or duplicates exactly like a
    native signature would.
    """
    if not args:
        return kwargs
    if len(args) > len(names):
        raise TypeError(
            f"{where} takes at most {len(names)} positional "
            f"argument{'s' if len(names) != 1 else ''} beyond the "
            f"required ones ({len(args)} given)"
        )
    shown = ", ".join(f"{n}=..." for n in names[: len(args)])
    warnings.warn(
        f"passing {', '.join(names[:len(args)])!s} positionally to {where} "
        f"is deprecated; use keyword arguments ({where}({shown}))",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if name in kwargs:
            raise TypeError(f"{where} got multiple values for argument {name!r}")
        kwargs[name] = value
    return kwargs


def deprecated_shape(old: str, new: str) -> None:
    """Warn that a legacy call shape was used, naming the replacement.

    The shape itself keeps working (the caller routes it onto the new
    surface); tests pin the two byte-identical.
    """
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=4,
    )


__all__ = ["UNSET", "deprecated_shape", "explicit_kwargs", "legacy_positional"]
