"""Multi-GPU scalability analysis (the fig8-style device-count sweep).

Compiles one template against 1..N identical devices and reports, per
device count: simulated total time, aggregate speedup over the
single-device plan, host<->device transfer volume (the paper's Table 1
metric — peer traffic excluded), peer volume, and partition imbalance.
The sweep is what the ``benchmarks/test_fig8_multigpu.py`` benchmark
renders and what ``cli.py --num-devices`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.framework import CompileOptions
from repro.core.graph import OperatorGraph
from repro.gpusim import GpuDevice, HostSystem, homogeneous_group
from repro.multigpu import compile_multi, simulate_multi


@dataclass
class ScalingRow:
    """One device count of a scaling sweep."""

    num_devices: int
    total_time: float
    speedup: float
    transfer_floats: int
    peer_floats: int
    device_times: list[float]
    imbalance: float
    launches: int


@dataclass
class ScalingReport:
    """Simulated strong-scaling behaviour of one template."""

    template: str
    device: str
    rows: list[ScalingRow]

    @property
    def monotonic_time(self) -> bool:
        """True when simulated time strictly decreases with device count."""
        times = [r.total_time for r in self.rows]
        return all(a > b for a, b in zip(times, times[1:]))

    def transfer_ratio(self) -> float:
        """Worst host-transfer inflation vs. the single-device plan."""
        base = self.rows[0].transfer_floats
        if not base:
            return 1.0
        return max(r.transfer_floats / base for r in self.rows)


def scaling_report(
    template: OperatorGraph,
    device: GpuDevice,
    device_counts: Sequence[int] = (1, 2, 4),
    host: HostSystem | None = None,
    options: CompileOptions | None = None,
    *,
    shared_bus: bool = False,
    transfer_mode: str = "peer",
) -> ScalingReport:
    """Sweep device counts; speedups are against the first count's time."""
    rows: list[ScalingRow] = []
    base_time: float | None = None
    for n in device_counts:
        group = homogeneous_group(device, n, shared_bus=shared_bus)
        compiled = compile_multi(
            template, group, host=host, options=options,
            transfer_mode=transfer_mode,
        )
        sim = simulate_multi(compiled)
        if base_time is None:
            base_time = sim.total_time
        rows.append(
            ScalingRow(
                num_devices=n,
                total_time=sim.total_time,
                speedup=(base_time / sim.total_time) if sim.total_time else 0.0,
                transfer_floats=sim.transfer_floats,
                peer_floats=sim.peer_floats,
                device_times=list(sim.device_times),
                imbalance=compiled.partition.imbalance,
                launches=sim.launches,
            )
        )
    return ScalingReport(
        template=template.name, device=device.name, rows=rows
    )


def render_scaling(report: ScalingReport) -> str:
    """Fixed-width table of a scaling report (CLI / benchmark output)."""
    lines = [
        f"{report.template} on {report.device}",
        f"{'gpus':>4} {'time (s)':>10} {'speedup':>8} "
        f"{'h<->d floats':>13} {'peer floats':>12} {'imbalance':>10}",
    ]
    for r in report.rows:
        lines.append(
            f"{r.num_devices:>4} {r.total_time:>10.4f} {r.speedup:>7.2f}x "
            f"{r.transfer_floats:>13} {r.peer_floats:>12} {r.imbalance:>10.2f}"
        )
    return "\n".join(lines)
