"""Analyses backing the evaluation figures/tables.

Memory-requirement curves and strategy regions (Figure 1(c)), transfer
lower bounds and comparisons (Table 1), and the "best possible"
reference configuration (Figure 8).
"""

from .dot import graph_to_dot
from .memory import (
    MemoryProfile,
    StrategyRegions,
    edge_strategy_regions,
    memory_profile,
    sweep_memory,
)
from .multigpu import (
    ScalingReport,
    ScalingRow,
    render_scaling,
    scaling_report,
)
from .timeline import TimelineRow, plan_timeline, render_timeline
from .transfers import (
    BestPossible,
    TransferComparison,
    best_possible,
    compare_transfers,
    io_lower_bound_floats,
)

__all__ = [
    "BestPossible",
    "MemoryProfile",
    "ScalingReport",
    "ScalingRow",
    "StrategyRegions",
    "TimelineRow",
    "TransferComparison",
    "best_possible",
    "compare_transfers",
    "edge_strategy_regions",
    "graph_to_dot",
    "io_lower_bound_floats",
    "memory_profile",
    "plan_timeline",
    "render_scaling",
    "render_timeline",
    "scaling_report",
    "sweep_memory",
]
