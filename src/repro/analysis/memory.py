"""Memory-requirement analysis (Figure 1(c)).

For a template family parameterised by input size, compute each
operator's memory footprint and derive the *execution-strategy regions*
the paper annotates over Figure 1(c):

1. everything fits in GPU memory;
2. the template footprint exceeds GPU memory but every operator fits
   (operators must be phased / intermediates staged);
3. the largest operator no longer fits and must be split;
4. further operator classes need splitting;
5. the input itself exceeds GPU memory (process in chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.graph import OperatorGraph


@dataclass(frozen=True)
class MemoryProfile:
    """Footprints (floats) of one template instance."""

    total_floats: int
    io_floats: int
    max_op_footprint: int
    input_floats: int
    per_op: dict[str, int]

    def op_classes(self) -> dict[str, int]:
        """Max footprint per operator-name prefix (C1..C4 -> 'C')."""
        out: dict[str, int] = {}
        for name, fp in self.per_op.items():
            key = name.rstrip("0123456789")
            out[key] = max(out.get(key, 0), fp)
        return out


def memory_profile(graph: OperatorGraph) -> MemoryProfile:
    per_op = {o: graph.op_footprint(o) for o in graph.ops}
    input_floats = sum(
        ds.size
        for ds in graph.data.values()
        if ds.is_input and not ds.virtual
    )
    return MemoryProfile(
        total_floats=graph.total_data_size(),
        io_floats=graph.io_size(),
        max_op_footprint=max(per_op.values(), default=0),
        input_floats=input_floats,
        per_op=per_op,
    )


@dataclass(frozen=True)
class StrategyRegions:
    """Input-size boundaries (in floats of input) between strategies.

    For the 8-orientation edge template on a C870 these land at the
    paper's 150 / 166.67 / 750 / 1500 MB marks.
    """

    all_fits_below: float  # total footprint == capacity
    largest_op_fits_below: float  # max op footprint == capacity
    conv_fits_below: float  # 2x-class operators == capacity
    input_fits_below: float  # input == capacity


def edge_strategy_regions(
    capacity_floats: int,
    num_orientations: int = 8,
) -> StrategyRegions:
    """Analytic region boundaries for the edge template (Figure 1(c)).

    With n orientations the template holds the image, n responses and
    the edge map (n+2 image-sized arrays, kernels negligible); the
    combine operator touches n+1 of them; convolutions/remaps touch 2.
    """
    n = num_orientations
    return StrategyRegions(
        all_fits_below=capacity_floats / (n + 2),
        largest_op_fits_below=capacity_floats / (n + 1),
        conv_fits_below=capacity_floats / 2,
        input_fits_below=float(capacity_floats),
    )


def sweep_memory(
    builder: Callable[[int], OperatorGraph],
    sizes: Sequence[int],
) -> list[tuple[int, MemoryProfile]]:
    """Evaluate :func:`memory_profile` over a family of template instances."""
    return [(s, memory_profile(builder(s))) for s in sizes]
