"""Graphviz DOT export of operator graphs.

Renders templates the way the paper draws them (Figure 1(b), Figure 7):
ellipses for operators, boxes for data structures, with sizes annotated
and split chunks grouped under their logical parent.  Output is plain
DOT text; render with ``dot -Tpng``/``-Tsvg`` where Graphviz exists.
"""

from __future__ import annotations

import io

from repro.core.graph import OperatorGraph


def _esc(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def _human(size: int) -> str:
    if size >= 1 << 20:
        return f"{size / (1 << 20):.1f}M"
    if size >= 1 << 10:
        return f"{size / (1 << 10):.1f}k"
    return str(size)


def graph_to_dot(
    graph: OperatorGraph,
    *,
    cluster_chunks: bool = True,
    max_nodes: int = 2000,
) -> str:
    """Emit DOT text for an operator graph.

    Raises on graphs beyond ``max_nodes`` total nodes — render a
    sub-template instead (a 7500-operator CNN is not a useful picture).
    """
    n_nodes = len(graph.ops) + sum(
        1 for ds in graph.data.values() if not ds.virtual
    )
    if n_nodes > max_nodes:
        raise ValueError(
            f"graph has {n_nodes} nodes (> {max_nodes}); too large to render"
        )
    w = io.StringIO()
    w.write(f"digraph {_esc(graph.name)} {{\n")
    w.write("  rankdir=TB;\n")
    w.write('  node [fontname="Helvetica", fontsize=10];\n')
    # Data structures, grouped by logical parent where split.
    by_parent: dict[str, list[str]] = {}
    for name, ds in graph.data.items():
        if ds.virtual:
            continue
        key = ds.parent if (cluster_chunks and ds.parent) else ""
        by_parent.setdefault(key, []).append(name)
    for parent, names in sorted(by_parent.items()):
        indent = "  "
        if parent:
            w.write(f"  subgraph {_esc('cluster_' + parent)} {{\n")
            w.write(f'    label="{parent} (split)"; style=dashed;\n')
            indent = "    "
        for name in names:
            ds = graph.data[name]
            style = "bold" if (ds.is_input or ds.is_output) else "solid"
            role = "in" if ds.is_input else ("out" if ds.is_output else "")
            label = f"{name}\\n{_human(ds.size)}f"
            if role:
                label += f" [{role}]"
            w.write(
                f"{indent}{_esc(name)} [shape=box, style={style}, "
                f'label="{label}"];\n'
            )
        if parent:
            w.write("  }\n")
    # Operators.
    for name, op in graph.ops.items():
        w.write(
            f"  {_esc('op:' + name)} [shape=ellipse, style=filled, "
            f'fillcolor=lightgray, label="{name}\\n({op.kind})"];\n'
        )
    # Edges.
    for name, op in graph.ops.items():
        for d in dict.fromkeys(op.inputs):
            w.write(f"  {_esc(d)} -> {_esc('op:' + name)};\n")
        for d in dict.fromkeys(op.outputs):
            w.write(f"  {_esc('op:' + name)} -> {_esc(d)};\n")
    w.write("}\n")
    return w.getvalue()
