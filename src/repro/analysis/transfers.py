"""Transfer-volume analysis (Table 1 columns).

Analytic quantities against which plans are compared:

* the *I/O lower bound* — template inputs + outputs must cross the bus
  once each, whatever the plan ("I/O transfers only" in Table 1);
* the *baseline volume* — every operator's inputs and outputs cross per
  use (:func:`repro.core.baseline.baseline_transfer_floats`);
* the *best-possible time* — the paper's Figure 8 reference: a single
  fused kernel on an infinite-memory GPU that transfers only the I/O and
  pays one launch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baseline import baseline_transfer_floats
from repro.core.graph import OperatorGraph
from repro.gpusim import CostModel, GpuDevice, HostSystem
from repro.ops import get_impl


def io_lower_bound_floats(graph: OperatorGraph) -> int:
    """Inputs + outputs: no correct execution can transfer less."""
    return graph.io_size()


@dataclass(frozen=True)
class BestPossible:
    """Figure 8's 'best possible' configuration."""

    time: float
    transfer_time: float
    compute_time: float
    transfer_floats: int


def best_possible(
    graph: OperatorGraph,
    device: GpuDevice,
    host: HostSystem | None = None,
) -> BestPossible:
    """Infinite memory + all operators merged into one GPU kernel.

    Transfers only the template I/O and pays a single launch overhead —
    "the optimal implementation in terms of data transfers ... and GPU
    call overhead" (Section 4.3).
    """
    cost = CostModel(device, host)
    io = io_lower_bound_floats(graph)
    transfer = cost.transfer_time_floats(io)
    flops = 0.0
    bytes_accessed = 0.0
    for op in graph.ops.values():
        impl = get_impl(op.kind)
        flops += impl.flops(op, graph)
        bytes_accessed += impl.bytes_accessed(op, graph)
    compute = cost.kernel_time(flops, bytes_accessed)
    return BestPossible(
        time=transfer + compute,
        transfer_time=transfer,
        compute_time=compute,
        transfer_floats=io,
    )


@dataclass(frozen=True)
class TransferComparison:
    """One row of Table 1."""

    template: str
    total_floats: int
    lower_bound_floats: int
    baseline_floats: int | None  # None = infeasible (the paper's N/A)
    optimized_floats: dict[str, int]

    def reduction(self, device: str) -> float | None:
        if self.baseline_floats is None:
            return None
        return self.baseline_floats / self.optimized_floats[device]


def compare_transfers(
    graph: OperatorGraph,
    optimized: dict[str, int],
    baseline_feasible: bool,
) -> TransferComparison:
    return TransferComparison(
        template=graph.name,
        total_floats=graph.total_data_size(),
        lower_bound_floats=io_lower_bound_floats(graph),
        baseline_floats=(
            baseline_transfer_floats(graph) if baseline_feasible else None
        ),
        optimized_floats=dict(optimized),
    )
