"""Figure-6-style plan timelines.

Renders an execution plan as the paper's Figure 6: one row per step,
showing the action, the data structures alive in GPU memory (with their
sizes), the running device occupancy, and which host copies exist.
Useful for eyeballing why a plan transfers what it transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import OperatorGraph
from repro.core.plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch


@dataclass
class TimelineRow:
    step: str
    gpu_resident: list[str]
    gpu_floats: int
    host_copies: list[str]


def plan_timeline(
    plan: ExecutionPlan, graph: OperatorGraph
) -> list[TimelineRow]:
    """Symbolically replay a plan into per-step memory snapshots."""
    on_gpu: dict[str, int] = {}
    on_host = {
        d for d, ds in graph.data.items() if ds.is_input and not ds.virtual
    }
    rows: list[TimelineRow] = []
    for step in plan.steps:
        if isinstance(step, CopyToGPU):
            on_gpu[step.data] = graph.data[step.data].size
            label = f"h2d  {step.data}"
        elif isinstance(step, CopyToCPU):
            on_host.add(step.data)
            label = f"d2h  {step.data}"
        elif isinstance(step, Free):
            on_gpu.pop(step.data, None)
            label = f"free {step.data}"
        elif isinstance(step, Launch):
            for d in graph.ops[step.op].outputs:
                on_gpu[d] = graph.data[d].size
                on_host.discard(d)  # device result supersedes host copy
            label = f"exec {step.op}"
        else:  # pragma: no cover - defensive
            label = str(step)
        rows.append(
            TimelineRow(
                step=label,
                gpu_resident=sorted(on_gpu),
                gpu_floats=sum(on_gpu.values()),
                host_copies=sorted(
                    d for d in on_host if not graph.data[d].is_input
                ),
            )
        )
    return rows


def render_timeline(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    capacity_floats: int | None = None,
    width: int = 24,
) -> str:
    """ASCII rendering (cf. Figure 6's host/GPU memory columns)."""
    # cap == 0 means the capacity is unknown (e.g. a hand-built plan):
    # render "?" bars rather than a misleading full-occupancy bar.
    cap = capacity_floats or plan.capacity_floats or 0
    rows = plan_timeline(plan, graph)
    lines = [
        f"{'step':28s} {'GPU memory':>{width}s} {'use':>9s}  host copies",
        "-" * (28 + width + 9 + 14),
    ]
    for row in rows:
        gpu = ",".join(row.gpu_resident)
        if len(gpu) > width:
            gpu = gpu[: width - 2] + ".."
        if cap:
            bar_len = min(int(10 * row.gpu_floats / cap), 10)
            bar = "#" * bar_len + "." * (10 - bar_len)
        else:
            bar = "?" * 10
        host = ",".join(row.host_copies)
        lines.append(
            f"{row.step:28s} {gpu:>{width}s} [{bar}]  {host}"
        )
    return "\n".join(lines)
