"""Dynamic run-time orchestration (Section 3.3.2's closing alternative).

"Alternatively, it is also possible to use a simple run-time library to
orchestrate execution of the corresponding templates on the GPU."

This is that library: instead of interpreting a statically derived
execution plan, it walks the operator graph at run time, transferring
inputs on demand, evicting under an *online* policy (LRU — no future
knowledge, unlike the static scheduler's Belady), and freeing data by
reference counting (a value dies when its last consumer has executed).

It serves two purposes: a simpler deployment path (no compilation
beyond splitting), and the baseline that quantifies what static
plan-ahead buys — the static Belady plan never transfers more than this
online executor (demonstrated in tests and the dynamic-vs-static
ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.graph import OperatorGraph, op_slots
from repro.gpusim import FLOAT_BYTES, SimRuntime
from repro.ops import get_impl

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs
from .executor import ExecutionResult


@dataclass
class _Entry:
    size_floats: int
    last_touch: int
    host_valid: bool
    refs_left: int  # launches still to read this data
    is_output: bool


class DynamicExecutor:
    """Run-time graph orchestration on a simulated device."""

    def __init__(
        self,
        graph: OperatorGraph,
        runtime: SimRuntime,
        *,
        headroom_floats: int = 0,
    ) -> None:
        self.graph = graph
        self.rt = runtime
        self.capacity = (
            runtime.device.usable_memory_floats - headroom_floats
        )
        self._tick = 0
        self._resident: dict[str, _Entry] = {}
        self._host: dict[str, np.ndarray] = {}
        self._h2d_floats = 0
        self._d2h_floats = 0

    # -- host/device movement ------------------------------------------------
    def _host_fetch(self, name: str, template_inputs) -> np.ndarray:
        if name not in self._host:
            ds = self.graph.data[name]
            if not ds.is_input:
                raise KeyError(f"{name!r} requested before being produced")
            self._host[name] = input_chunk_array(
                self.graph, name, template_inputs
            )
        return self._host[name]

    def _evict_one(self, pinned: set[str]) -> None:
        candidates = [d for d in self._resident if d not in pinned]
        if not candidates:
            raise RuntimeError(
                "dynamic executor: all resident data pinned; operator "
                "footprint exceeds device capacity (split the template)"
            )
        victim = min(candidates, key=lambda d: self._resident[d].last_touch)
        entry = self._resident.pop(victim)
        if not entry.host_valid and (entry.refs_left > 0 or entry.is_output):
            self._host[victim] = self.rt.memcpy_d2h(victim)
            self._d2h_floats += entry.size_floats
        self.rt.free(victim)

    def _make_room(self, need_floats: int, pinned: set[str]) -> None:
        used = sum(e.size_floats for e in self._resident.values())
        while used + need_floats > self.capacity:
            before = len(self._resident)
            self._evict_one(pinned)
            used = sum(e.size_floats for e in self._resident.values())
            if len(self._resident) == before:  # pragma: no cover - defensive
                raise RuntimeError("eviction made no progress")

    def _ensure_resident(
        self, name: str, pinned: set[str], template_inputs
    ) -> None:
        if name in self._resident:
            self._resident[name].last_touch = self._tick
            return
        ds = self.graph.data[name]
        self._make_room(ds.size, pinned)
        arr = self._host_fetch(name, template_inputs)
        self.rt.malloc(name, ds.size * FLOAT_BYTES)
        self.rt.memcpy_h2d(name, arr)
        self._h2d_floats += ds.size
        self._resident[name] = _Entry(
            size_floats=ds.size,
            last_touch=self._tick,
            host_valid=True,
            refs_left=self._refs[name],
            is_output=ds.is_output,
        )

    # -- main loop -----------------------------------------------------------
    def run(
        self,
        template_inputs: Mapping[str, np.ndarray],
        op_order: Sequence[str] | None = None,
    ) -> ExecutionResult:
        graph = self.graph
        order = (
            list(op_order) if op_order is not None else graph.topological_order()
        )
        # Reference counts: reads remaining per data structure.
        self._refs = {d: 0 for d in graph.data}
        for o in order:
            for d in graph.ops[o].inputs:
                self._refs[d] += 1
        for op_name in order:
            self._tick += 1
            op = graph.ops[op_name]
            impl = get_impl(op.kind)
            ins = list(dict.fromkeys(op.inputs))
            outs = list(dict.fromkeys(op.outputs))
            pinned = set(ins) | set(outs)
            for d in ins:
                self._ensure_resident(d, pinned, template_inputs)
            out_floats = sum(graph.data[d].size for d in outs)
            self._make_room(out_floats, pinned)
            inputs = [
                gather_slot(graph, s, self.rt.read_device)
                for s in op_slots(op, graph)
            ]
            results = impl.execute(op, inputs)

            def put(name: str, array: np.ndarray) -> None:
                self.rt.malloc(name, graph.data[name].size * FLOAT_BYTES)
                self.rt.write_device(name, array)
                self._resident[name] = _Entry(
                    size_floats=graph.data[name].size,
                    last_touch=self._tick,
                    host_valid=False,
                    refs_left=self._refs[name],
                    is_output=graph.data[name].is_output,
                )

            scatter_outputs(graph, op, results, put)
            self.rt.launch(
                op_name, impl.flops(op, graph), impl.bytes_accessed(op, graph)
            )
            # Reference counting: retire inputs whose last read this was.
            for d in ins:
                self._refs[d] -= 1
                entry = self._resident.get(d)
                if entry is not None:
                    entry.refs_left = self._refs[d]
                    if self._refs[d] == 0 and not entry.is_output:
                        self.rt.free(d)
                        del self._resident[d]
            # Outputs nobody reads (and that are not template outputs).
            for d in outs:
                if self._refs[d] == 0 and not graph.data[d].is_output:
                    self.rt.free(d)
                    del self._resident[d]
        # Drain: save template outputs still on device.
        for d in list(self._resident):
            entry = self._resident[d]
            if entry.is_output and not entry.host_valid:
                self._host[d] = self.rt.memcpy_d2h(d)
                self._d2h_floats += entry.size_floats
            self.rt.free(d)
            del self._resident[d]
        outputs = {
            name: assemble_root(graph, name, lambda n: self._host[n])
            for name, ds in graph.data.items()
            if ds.is_output and ds.parent is None
        }
        prof = self.rt.profile
        return ExecutionResult(
            outputs=outputs,
            elapsed=self.rt.clock,
            transfer_time=prof.transfer_time,
            compute_time=prof.compute_time,
            h2d_floats=self._h2d_floats,
            d2h_floats=self._d2h_floats,
            thrashed=self.rt.thrashed,
        )


def dynamic_execute(
    graph: OperatorGraph,
    runtime: SimRuntime,
    template_inputs: Mapping[str, np.ndarray],
    op_order: Sequence[str] | None = None,
) -> ExecutionResult:
    """Convenience wrapper over :class:`DynamicExecutor`."""
    return DynamicExecutor(graph, runtime).run(template_inputs, op_order)
