"""Plan execution: numeric (on the simulated device) and analytic."""

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs
from .dynamic import DynamicExecutor, dynamic_execute
from .events import (
    EventExecutionResult,
    EventTimeline,
    StreamEvent,
    execute_plan_events,
    plan_streams,
    simulate_plan_events,
    step_stream,
)
from .executor import ExecutionResult, SimulatedRun, execute_plan, simulate_plan
from .overlap import OverlapResult, simulate_plan_overlap
from .reference import reference_execute

__all__ = [
    "DynamicExecutor",
    "EventExecutionResult",
    "EventTimeline",
    "ExecutionResult",
    "OverlapResult",
    "SimulatedRun",
    "StreamEvent",
    "assemble_root",
    "dynamic_execute",
    "execute_plan",
    "execute_plan_events",
    "gather_slot",
    "input_chunk_array",
    "plan_streams",
    "reference_execute",
    "scatter_outputs",
    "simulate_plan",
    "simulate_plan_events",
    "simulate_plan_overlap",
    "step_stream",
]
