"""Plan execution: numeric (on the simulated device) and analytic."""

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs
from .dynamic import DynamicExecutor, dynamic_execute
from .executor import ExecutionResult, SimulatedRun, execute_plan, simulate_plan
from .overlap import OverlapResult, simulate_plan_overlap
from .reference import reference_execute

__all__ = [
    "DynamicExecutor",
    "ExecutionResult",
    "OverlapResult",
    "SimulatedRun",
    "assemble_root",
    "dynamic_execute",
    "execute_plan",
    "gather_slot",
    "input_chunk_array",
    "reference_execute",
    "scatter_outputs",
    "simulate_plan",
    "simulate_plan_overlap",
]
