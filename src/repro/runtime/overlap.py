"""Asynchronous copy/compute overlap (Section 3.3.2's extension).

"Current GPUs have the ability to perform asynchronous data transfer and
computation at the same time (as long as they are independent). ... We
did not overlap computation and communication in our experiments since
the GPUs that we used did not support this capability."

This module re-times an execution plan on a device *with* that
capability, using a two-engine dependency model:

* the **compute engine** executes launches in plan order (one compute
  queue, as on that hardware generation), each waiting for the uploads
  of its inputs;
* the **copy engine** executes transfers, issuing them out of order the
  way a stream runtime would: a download that waits on a kernel does not
  block later independent uploads;
* true dependencies are respected — a download of an operator's output
  waits for its launch; a (re-)upload of evicted data waits for the
  download that saved it.

Memory capacity is *not* re-checked here (the plan already bounds
simultaneous residency; overlapping can only shorten lifetimes of the
same residency set).

This module is a *predictor*: it re-times a finished plan without
executing it.  The prediction is exact, not merely optimistic — the
discrete-event engine (:mod:`repro.runtime.events`) executes plans on
real streams with the same dependency model, and its executed timeline
matches this module's figures bit-for-bit on the shared-copy-engine
configuration (asserted in ``tests/test_events.py``).  Use
:func:`repro.runtime.events.execute_plan_events` when you need the
overlapped run itself (payloads, per-stream profile); use this module
when you only need the numbers.  The gap between ``sync_total_time``
and ``total_time`` is the transfer cost the paper's synchronous
execution could have hidden — the objective-function change Section
3.3.2 sketches (count only non-overlapped transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import OperatorGraph
from repro.core.plan import CopyToCPU, CopyToGPU, ExecutionPlan, Launch
from repro.gpusim import CostModel, GpuDevice, HostSystem
from repro.ops import get_impl


@dataclass
class OverlapResult:
    """Timing of a plan with concurrent copy and compute engines."""

    total_time: float
    copy_busy: float
    compute_busy: float
    sync_total_time: float  # same plan, engines serialised

    @property
    def hidden_transfer_time(self) -> float:
        """Transfer time overlapped behind computation."""
        return self.sync_total_time - self.total_time

    @property
    def speedup(self) -> float:
        return self.sync_total_time / self.total_time if self.total_time else 1.0

    @property
    def exposed_transfer_fraction(self) -> float:
        """Fraction of copy time NOT hidden behind compute."""
        if self.copy_busy == 0:
            return 0.0
        exposed = max(self.total_time - self.compute_busy, 0.0)
        return min(exposed / self.copy_busy, 1.0)


def simulate_plan_overlap(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    device: GpuDevice,
    host: HostSystem | None = None,
    *,
    in_order_copy: bool = False,
) -> OverlapResult:
    """Dependency-driven two-engine timing of an execution plan.

    ``in_order_copy=True`` models a single copy stream fed in plan order
    (what a generated program enqueueing transfers sequentially gets);
    the default models out-of-order issue across streams.  The in-order
    mode is where the :func:`repro.core.planopt.hoist_uploads` prefetch
    pass pays off — it reorders the plan so even a FIFO copy stream
    works ahead of the compute queue.
    """
    cost = CostModel(device, host)
    # Assign step indexes and durations; build the dependency edges.
    durations: dict[int, float] = {}
    deps: dict[int, list[int]] = {}
    copy_steps: list[int] = []
    compute_steps: list[int] = []
    last_upload: dict[str, int] = {}  # data -> step idx of latest h2d
    last_download: dict[str, int] = {}
    producer_launch: dict[str, int] = {}  # data -> step idx of the launch
    prev_launch: int | None = None
    for i, step in enumerate(plan.steps):
        if isinstance(step, CopyToGPU):
            durations[i] = cost.transfer_time_floats(graph.data[step.data].size)
            # Re-uploading evicted data needs the saving download done.
            deps[i] = (
                [last_download[step.data]]
                if step.data in last_download
                else []
            )
            last_upload[step.data] = i
            copy_steps.append(i)
        elif isinstance(step, CopyToCPU):
            durations[i] = cost.transfer_time_floats(graph.data[step.data].size)
            deps[i] = (
                [producer_launch[step.data]]
                if step.data in producer_launch
                else []
            )
            last_download[step.data] = i
            copy_steps.append(i)
        elif isinstance(step, Launch):
            op = graph.ops[step.op]
            impl = get_impl(op.kind)
            durations[i] = cost.kernel_time(
                impl.flops(op, graph), impl.bytes_accessed(op, graph)
            )
            d = [last_upload[x] for x in op.inputs if x in last_upload]
            if prev_launch is not None:
                d.append(prev_launch)  # single in-order compute queue
            deps[i] = d
            for x in op.outputs:
                producer_launch[x] = i
                last_upload.pop(x, None)  # device-born: no upload needed
            prev_launch = i
            compute_steps.append(i)
        # Free has no timing effect.

    finish: dict[int, float] = {}
    copy_clock = 0.0
    compute_clock = 0.0
    next_compute = 0
    pending_copy = list(copy_steps)
    copy_busy = sum(durations[i] for i in copy_steps)
    compute_busy = sum(durations[i] for i in compute_steps)

    def ready(i: int) -> bool:
        return all(d in finish for d in deps[i])

    while next_compute < len(compute_steps) or pending_copy:
        progressed = False
        # Compute engine: strict plan order.
        if next_compute < len(compute_steps):
            i = compute_steps[next_compute]
            if ready(i):
                start = max(
                    compute_clock,
                    max((finish[d] for d in deps[i]), default=0.0),
                )
                compute_clock = start + durations[i]
                finish[i] = compute_clock
                next_compute += 1
                progressed = True
        # Copy engine: among ready transfers, issue the one that can
        # start earliest (out-of-order issue past blocked downloads, as
        # a multi-stream runtime would); plan order breaks ties.  With
        # in_order_copy only the head of the FIFO may issue.
        best_k = -1
        best_start = float("inf")
        candidates = pending_copy[:1] if in_order_copy else pending_copy
        for k, i in enumerate(candidates):
            if ready(i):
                start = max(
                    copy_clock,
                    max((finish[d] for d in deps[i]), default=0.0),
                )
                if start < best_start:
                    best_start = start
                    best_k = k
                if start <= copy_clock:
                    break  # cannot start earlier than the engine is free
        if best_k >= 0:
            i = pending_copy.pop(best_k)
            copy_clock = best_start + durations[i]
            finish[i] = copy_clock
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("overlap simulation deadlocked (cyclic deps?)")
    total = max(copy_clock, compute_clock)
    return OverlapResult(
        total_time=total,
        copy_busy=copy_busy,
        compute_busy=compute_busy,
        sync_total_time=copy_busy + compute_busy,
    )
