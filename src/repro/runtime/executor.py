"""Execution of plans.

Two modes:

* :func:`execute_plan` — run a plan on the :class:`~repro.gpusim.SimRuntime`
  with real numpy payloads.  Device capacity is *enforced by the
  allocator*, so an over-committing plan fails exactly like it would on
  hardware; results are numerically comparable to the host reference.

* :func:`simulate_plan` — walk the same steps analytically (no payloads)
  to produce timing/transfer figures for paper-scale workloads (the
  Table 1/2 configurations reach 17 GB footprints, which we account but
  never materialise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.graph import OperatorGraph, op_slots
from repro.core.plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch
from repro.gpusim import FLOAT_BYTES, CostModel, GpuDevice, HostSystem, SimRuntime
from repro.gpusim.profiler import Profile
from repro.obs.provenance import provenance_summary
from repro.ops import get_impl

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs


@dataclass
class ExecutionResult:
    """Outcome of a numeric plan execution."""

    outputs: dict[str, np.ndarray]
    elapsed: float
    transfer_time: float
    compute_time: float
    h2d_floats: int
    d2h_floats: int
    thrashed: bool
    #: the full simulated-device event timeline (Chrome-trace exportable)
    profile: Profile | None = None
    #: metrics snapshot: runtime/allocator counters plus plan provenance
    metrics: dict[str, object] = field(default_factory=dict)

    @property
    def transfer_floats(self) -> int:
        return self.h2d_floats + self.d2h_floats


def run_launch(graph: OperatorGraph, op_name: str, runtime: SimRuntime) -> None:
    """Execute one ``Launch`` step's numeric work on a ``SimRuntime``.

    Gathers the operator's input slots from device buffers, runs the
    library impl, scatters outputs into freshly-allocated device buffers
    and charges the kernel to the runtime clock.  Shared by the
    single-device executor and ``repro.multigpu``'s per-device executors.
    """
    op = graph.ops[op_name]
    impl = get_impl(op.kind)
    inputs = [
        gather_slot(graph, s, runtime.read_device) for s in op_slots(op, graph)
    ]
    results = impl.execute(op, inputs)

    def put(name: str, array: np.ndarray) -> None:
        runtime.malloc(name, graph.data[name].size * FLOAT_BYTES)
        runtime.write_device(name, array)

    scatter_outputs(graph, op, results, put)
    runtime.launch(op_name, impl.flops(op, graph), impl.bytes_accessed(op, graph))


def execute_plan(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    runtime: SimRuntime,
    template_inputs: Mapping[str, np.ndarray],
) -> ExecutionResult:
    """Run a validated plan on the simulated device with real payloads."""
    host: dict[str, np.ndarray] = {}

    def host_fetch(name: str) -> np.ndarray:
        if name not in host:
            ds = graph.data[name]
            if not ds.is_input:
                raise KeyError(f"host read of {name!r} before it was saved")
            host[name] = input_chunk_array(graph, name, template_inputs)
        return host[name]

    def update_working_set() -> None:
        inputs_bytes = sum(
            np.asarray(a).size * FLOAT_BYTES for a in template_inputs.values()
        )
        copies = sum(
            a.size * FLOAT_BYTES
            for n, a in host.items()
            if not graph.data[n].is_input
        )
        runtime.host_working_set = inputs_bytes + copies

    update_working_set()
    for step in plan.steps:
        if isinstance(step, CopyToGPU):
            arr = host_fetch(step.data)
            runtime.malloc(step.data, arr.size * FLOAT_BYTES)
            runtime.memcpy_h2d(step.data, arr)
        elif isinstance(step, CopyToCPU):
            host[step.data] = runtime.memcpy_d2h(step.data)
            update_working_set()
        elif isinstance(step, Free):
            runtime.free(step.data)
        elif isinstance(step, Launch):
            run_launch(graph, step.op, runtime)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step {step!r}")
    outputs = {
        name: assemble_root(graph, name, lambda n: host[n])
        for name, ds in graph.data.items()
        if ds.is_output and ds.parent is None
    }
    prof = runtime.profile
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None:
        metrics.counter("exec.steps").inc(len(plan.steps))
        metrics.gauge("exec.elapsed_seconds").set(runtime.clock)
        for reason, count in provenance_summary(plan).items():
            metrics.counter(f"plan.reason.{reason}").inc(count)
    return ExecutionResult(
        outputs=outputs,
        elapsed=runtime.clock,
        transfer_time=prof.transfer_time,
        compute_time=prof.compute_time,
        h2d_floats=plan.h2d_floats(graph),
        d2h_floats=plan.d2h_floats(graph),
        thrashed=getattr(runtime, "thrashed", False),
        profile=prof,
        metrics=metrics.snapshot() if metrics is not None else {},
    )


# ---------------------------------------------------------------------------
# Analytic simulation (paper-scale workloads)
# ---------------------------------------------------------------------------
@dataclass
class SimulatedRun:
    """Analytic timing of a plan (no payloads materialised)."""

    total_time: float
    transfer_time: float
    compute_time: float
    h2d_floats: int
    d2h_floats: int
    launches: int
    peak_device_floats: int
    peak_host_bytes: int
    thrashed: bool
    #: the paper reports such runs as erratic / inconsistent (Table 2)
    events: list[tuple[str, float]] = field(default_factory=list)

    @property
    def transfer_floats(self) -> int:
        return self.h2d_floats + self.d2h_floats

    @property
    def inconsistent(self) -> bool:
        return self.thrashed

    def breakdown(self) -> dict[str, float]:
        busy = self.transfer_time + self.compute_time
        if busy == 0:
            return {"transfer": 0.0, "compute": 0.0}
        return {
            "transfer": self.transfer_time / busy,
            "compute": self.compute_time / busy,
        }


def simulate_plan(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    device: GpuDevice,
    host: HostSystem | None = None,
    *,
    record_events: bool = False,
) -> SimulatedRun:
    """Walk a plan analytically against the device/host cost model.

    Host working set = template inputs + live host copies of
    intermediates; once it exceeds host RAM, subsequent transfers pay the
    paging penalty and the run is flagged ``thrashed`` (the paper's
    "inconsistent results ... thrashing effects in main memory").
    """
    cost = CostModel(device, host)
    # Last read of each data structure, from the plan's launch sequence.
    launch_at: dict[str, int] = {}
    last_read: dict[str, int] = {}
    t = 0
    for step in plan.steps:
        if isinstance(step, Launch):
            for d in graph.ops[step.op].inputs:
                last_read[d] = t
            launch_at[step.op] = t
            t += 1

    inputs_bytes = sum(
        ds.size * FLOAT_BYTES
        for ds in graph.data.values()
        if ds.is_input and not ds.virtual
    )
    host_copies: dict[str, int] = {}
    device_resident: dict[str, int] = {}
    transfer_time = 0.0
    compute_time = 0.0
    h2d = d2h = 0
    peak_dev = dev_used = 0
    peak_host = inputs_bytes
    thrashed = False
    launches = 0
    events: list[tuple[str, float]] = []
    t = 0

    def working_set() -> int:
        return inputs_bytes + sum(host_copies.values())

    def transfer(nfloats: int) -> float:
        nonlocal thrashed
        dt = cost.transfer_time_floats(nfloats)
        if cost.thrashing(working_set()):
            thrashed = True
            if host is not None:
                dt *= host.paging_penalty
        return dt

    for step in plan.steps:
        if isinstance(step, CopyToGPU):
            size = graph.data[step.data].size
            dt = transfer(size)
            transfer_time += dt
            h2d += size
            device_resident[step.data] = size
            dev_used += size
        elif isinstance(step, CopyToCPU):
            size = graph.data[step.data].size
            dt = transfer(size)
            transfer_time += dt
            d2h += size
            if not graph.data[step.data].is_input:
                host_copies[step.data] = size * FLOAT_BYTES
        elif isinstance(step, Free):
            dev_used -= device_resident.pop(step.data)
            dt = 0.0
        elif isinstance(step, Launch):
            op = graph.ops[step.op]
            impl = get_impl(op.kind)
            dt = cost.kernel_time(
                impl.flops(op, graph), impl.bytes_accessed(op, graph)
            )
            compute_time += dt
            launches += 1
            for d in op.outputs:
                size = graph.data[d].size
                device_resident[d] = size
                dev_used += size
            # Host copies of data never read again (and not outputs) die.
            for d in list(host_copies):
                ds = graph.data[d]
                if not ds.is_output and last_read.get(d, -1) <= t:
                    del host_copies[d]
            t += 1
        peak_dev = max(peak_dev, dev_used)
        peak_host = max(peak_host, working_set())
        if record_events:
            events.append((str(step), dt))
    return SimulatedRun(
        total_time=transfer_time + compute_time,
        transfer_time=transfer_time,
        compute_time=compute_time,
        h2d_floats=h2d,
        d2h_floats=d2h,
        launches=launches,
        peak_device_floats=peak_dev,
        peak_host_bytes=peak_host,
        thrashed=thrashed,
        events=events,
    )
