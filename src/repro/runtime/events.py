"""Discrete-event plan execution with explicit streams.

The synchronous executor (:func:`repro.runtime.executor.execute_plan`)
walks plan steps one at a time on a single simulated clock, so a plan's
elapsed time is the *sum* of its transfer and compute costs — exactly
the hardware limitation the paper worked under (Section 3.3.2: "We did
not overlap computation and communication in our experiments").
:mod:`repro.runtime.overlap` predicts what concurrent copy/compute
engines would do, but only by re-timing a finished plan.

This module closes that gap: plan steps become dependency-tracked
**events** issued onto explicit streams — one compute engine plus copy
engines (one per transfer direction, or a single shared engine) — and
each event *fires when its predecessors complete*, not in serialized
plan order.  Firing an event performs its numeric work, so the engine
is a real executor: outputs are byte-identical to the synchronous path
(the same numpy operator impls see the same operands in dependency
order) while the recorded timeline genuinely overlaps.

Dependency model (identical to :func:`simulate_plan_overlap`, which is
the validation oracle — see ``tests/test_events.py``):

* a launch waits on the uploads of its inputs and on the previous
  launch (one in-order compute queue);
* a download of an operator's output waits for that launch;
* a re-upload of evicted data waits for the download that saved it;
* frees are host-side bookkeeping events that wait on every prior step
  touching the buffer — they cost nothing and gate nothing.

Memory capacity is not re-checked here: the plan already bounds
simultaneous residency, and plans reach this engine after
:func:`validate_plan`.  Allocator-level fidelity (first-fit placement,
compaction, fault injection) stays with the synchronous executor; the
differential matrix pins this engine bitwise against it.

Invariants, asserted across the differential matrix and the overlap
benchmark gate:

* outputs are byte-identical to :func:`execute_plan`;
* ``total_time <= sync_total_time`` (overlap never loses);
* with a single shared copy engine the executed timeline equals
  :func:`simulate_plan_overlap`'s prediction exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.graph import OperatorGraph, op_slots
from repro.core.plan import (
    CopyToCPU,
    CopyToGPU,
    ExecutionPlan,
    Free,
    Launch,
    PeerCopy,
    Step,
)
from repro.gpusim import FLOAT_BYTES, CostModel, GpuDevice, HostSystem
from repro.gpusim.profiler import Event, EventKind, Profile
from repro.ops import get_impl

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs

#: stream (engine) identifiers
COMPUTE = "compute"
H2D_STREAM = "h2d"
D2H_STREAM = "d2h"
SHARED_COPY = "copy"
HOST_STREAM = "host"

#: ``copy_streams`` modes: one DMA engine per direction (what current
#: hardware exposes) or a single shared copy engine (the
#: ``simulate_plan_overlap`` hardware model, used for validation).
COPY_STREAM_MODES = ("per-direction", "shared")


def step_stream(step: Step, *, copy_streams: str = "per-direction") -> str:
    """The stream a plan step fires on (static assignment).

    Launches always take the compute engine; transfers take the copy
    engine for their direction (or the shared engine); frees and other
    bookkeeping run host-side.  ``PeerCopy`` is labelled ``p2p`` — the
    multi-GPU executor owns those steps.
    """
    if isinstance(step, Launch):
        return COMPUTE
    if isinstance(step, CopyToGPU):
        return SHARED_COPY if copy_streams == "shared" else H2D_STREAM
    if isinstance(step, CopyToCPU):
        return SHARED_COPY if copy_streams == "shared" else D2H_STREAM
    if isinstance(step, PeerCopy):
        return "p2p"
    return HOST_STREAM


def plan_streams(plan: ExecutionPlan, *, copy_streams: str = "per-direction") -> list[str]:
    """Stream assignment per plan step (the ``repro explain`` column).

    Multi-device plans prefix each stream with its device
    (``gpu1:h2d``); ``PeerCopy`` names both endpoints.
    """
    out: list[str] = []
    multi = plan.num_devices > 1
    for i, step in enumerate(plan.steps):
        name = step_stream(step, copy_streams=copy_streams)
        if isinstance(step, PeerCopy):
            out.append(f"gpu{step.src}->gpu{step.dst}:p2p")
        elif multi and name != HOST_STREAM:
            out.append(f"gpu{plan.device_of(i)}:{name}")
        else:
            out.append(name)
    return out


@dataclass(frozen=True)
class StreamEvent:
    """One fired plan step: where it ran and when."""

    index: int  # plan step index
    step: Step
    stream: str
    start: float
    finish: float
    deps: tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class EventTimeline:
    """The executed (or simulated) stream timeline of one plan."""

    events: list[StreamEvent]
    total_time: float
    copy_busy: float
    compute_busy: float
    sync_total_time: float  # same plan, engines serialised
    copy_streams: str = "per-direction"
    in_order_copy: bool = False

    @property
    def hidden_transfer_time(self) -> float:
        """Transfer time overlapped behind computation."""
        return self.sync_total_time - self.total_time

    @property
    def speedup(self) -> float:
        return self.sync_total_time / self.total_time if self.total_time else 1.0

    @property
    def hidden_transfer_fraction(self) -> float:
        """Fraction of copy time hidden behind compute, in [0, 1]."""
        if self.copy_busy == 0:
            return 0.0
        return min(max(self.hidden_transfer_time / self.copy_busy, 0.0), 1.0)

    def by_stream(self) -> dict[str, list[StreamEvent]]:
        out: dict[str, list[StreamEvent]] = {}
        for ev in self.events:
            out.setdefault(ev.stream, []).append(ev)
        return out

    def stream_table(self) -> list[str]:
        """Stream per plan step index, aligned to the source plan."""
        table = [HOST_STREAM] * (max((e.index for e in self.events), default=-1) + 1)
        for ev in self.events:
            table[ev.index] = ev.stream
        return table


# ---------------------------------------------------------------------------
# Event graph construction
# ---------------------------------------------------------------------------
@dataclass
class _EventGraph:
    durations: dict[int, float] = field(default_factory=dict)
    deps: dict[int, list[int]] = field(default_factory=dict)
    stream_of: dict[int, str] = field(default_factory=dict)
    compute_order: list[int] = field(default_factory=list)
    copy_queues: dict[str, list[int]] = field(default_factory=dict)
    free_order: list[int] = field(default_factory=list)


def _build_event_graph(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    cost: CostModel,
    *,
    copy_streams: str,
) -> _EventGraph:
    """Durations, dependency edges and stream assignment per plan step.

    The timed-step dependency construction is kept verbatim from
    :func:`simulate_plan_overlap` — that equality is load-bearing (the
    engine must reproduce the oracle's timing bit-for-bit on the shared
    copy-engine configuration).
    """
    if copy_streams not in COPY_STREAM_MODES:
        raise ValueError(
            f"copy_streams must be one of {COPY_STREAM_MODES}, "
            f"got {copy_streams!r}"
        )
    if plan.num_devices > 1 or any(
        isinstance(s, PeerCopy) for s in plan.steps
    ):
        raise ValueError(
            "the event engine executes single-device plans; multi-device "
            "plans run through repro.multigpu"
        )
    eg = _EventGraph()
    if copy_streams == "shared":
        eg.copy_queues[SHARED_COPY] = []
    else:
        eg.copy_queues[H2D_STREAM] = []
        eg.copy_queues[D2H_STREAM] = []
    last_upload: dict[str, int] = {}
    last_download: dict[str, int] = {}
    producer_launch: dict[str, int] = {}
    touched: dict[str, list[int]] = {}
    prev_launch: int | None = None
    for i, step in enumerate(plan.steps):
        stream = step_stream(step, copy_streams=copy_streams)
        eg.stream_of[i] = stream
        if isinstance(step, CopyToGPU):
            eg.durations[i] = cost.transfer_time_floats(graph.data[step.data].size)
            # Re-uploading evicted data needs the saving download done.
            eg.deps[i] = (
                [last_download[step.data]]
                if step.data in last_download
                else []
            )
            last_upload[step.data] = i
            eg.copy_queues[stream].append(i)
            touched.setdefault(step.data, []).append(i)
        elif isinstance(step, CopyToCPU):
            eg.durations[i] = cost.transfer_time_floats(graph.data[step.data].size)
            eg.deps[i] = (
                [producer_launch[step.data]]
                if step.data in producer_launch
                else []
            )
            last_download[step.data] = i
            eg.copy_queues[stream].append(i)
            touched.setdefault(step.data, []).append(i)
        elif isinstance(step, Launch):
            op = graph.ops[step.op]
            impl = get_impl(op.kind)
            eg.durations[i] = cost.kernel_time(
                impl.flops(op, graph), impl.bytes_accessed(op, graph)
            )
            d = [last_upload[x] for x in op.inputs if x in last_upload]
            if prev_launch is not None:
                d.append(prev_launch)  # single in-order compute queue
            eg.deps[i] = d
            for x in op.outputs:
                producer_launch[x] = i
                last_upload.pop(x, None)  # device-born: no upload needed
                touched.setdefault(x, []).append(i)
            for x in op.inputs:
                touched.setdefault(x, []).append(i)
            prev_launch = i
            eg.compute_order.append(i)
        elif isinstance(step, Free):
            # Host bookkeeping: fires after every prior touch of the
            # buffer; costs nothing; nothing depends on it.
            eg.durations[i] = 0.0
            eg.deps[i] = list(touched.get(step.data, []))
            eg.free_order.append(i)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step {step!r}")
    return eg


# ---------------------------------------------------------------------------
# The discrete-event loop
# ---------------------------------------------------------------------------
def _run_event_loop(
    plan: ExecutionPlan,
    eg: _EventGraph,
    *,
    in_order_copy: bool,
    fire: Callable[[int, Step, str, float, float], None] | None = None,
) -> EventTimeline:
    """Fire events onto their streams as dependencies complete.

    ``fire(index, step, stream, start, finish)`` is invoked the moment
    an event is issued — the numeric executor performs the step's work
    there, so execution order *is* the dependency order, not plan order.

    Engine policies match :func:`simulate_plan_overlap`: the compute
    engine issues in plan order; each copy engine issues the ready
    transfer that can start earliest (out-of-order past blocked
    downloads), or only its FIFO head with ``in_order_copy``.
    """
    finish: dict[int, float] = {}
    clocks: dict[str, float] = {name: 0.0 for name in eg.copy_queues}
    clocks[COMPUTE] = 0.0
    next_compute = 0
    pending_copy = {name: list(q) for name, q in eg.copy_queues.items()}
    pending_free = list(eg.free_order)
    fired: list[StreamEvent] = []
    copy_busy = sum(eg.durations[i] for q in eg.copy_queues.values() for i in q)
    compute_busy = sum(eg.durations[i] for i in eg.compute_order)

    def ready(i: int) -> bool:
        return all(d in finish for d in eg.deps[i])

    def issue(i: int, stream: str, start: float) -> None:
        end = start + eg.durations[i]
        finish[i] = end
        ev = StreamEvent(
            index=i,
            step=plan.steps[i],
            stream=stream,
            start=start,
            finish=end,
            deps=tuple(eg.deps[i]),
        )
        fired.append(ev)
        if fire is not None:
            fire(i, plan.steps[i], stream, start, end)

    while (
        next_compute < len(eg.compute_order)
        or any(pending_copy.values())
        or pending_free
    ):
        progressed = False
        # Compute engine: strict plan order.
        if next_compute < len(eg.compute_order):
            i = eg.compute_order[next_compute]
            if ready(i):
                start = max(
                    clocks[COMPUTE],
                    max((finish[d] for d in eg.deps[i]), default=0.0),
                )
                issue(i, COMPUTE, start)
                clocks[COMPUTE] = finish[i]
                next_compute += 1
                progressed = True
        # Copy engines: among ready transfers, issue the one that can
        # start earliest (out-of-order issue past blocked downloads, as
        # a multi-stream runtime would); plan order breaks ties.  With
        # in_order_copy only the head of each FIFO may issue.
        for stream, pending in pending_copy.items():
            best_k = -1
            best_start = float("inf")
            candidates = pending[:1] if in_order_copy else pending
            for k, i in enumerate(candidates):
                if ready(i):
                    start = max(
                        clocks[stream],
                        max((finish[d] for d in eg.deps[i]), default=0.0),
                    )
                    if start < best_start:
                        best_start = start
                        best_k = k
                    if start <= clocks[stream]:
                        break  # cannot start before the engine is free
            if best_k >= 0:
                i = pending.pop(best_k)
                issue(i, stream, best_start)
                clocks[stream] = finish[i]
                progressed = True
        # Host stream: frees fire as soon as their last toucher is done.
        still_pending: list[int] = []
        for i in pending_free:
            if ready(i):
                start = max((finish[d] for d in eg.deps[i]), default=0.0)
                issue(i, HOST_STREAM, start)
                progressed = True
            else:
                still_pending.append(i)
        pending_free = still_pending
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("event engine deadlocked (cyclic dependencies?)")
    total = max(clocks.values(), default=0.0)
    return EventTimeline(
        events=fired,
        total_time=total,
        copy_busy=copy_busy,
        compute_busy=compute_busy,
        sync_total_time=copy_busy + compute_busy,
        in_order_copy=in_order_copy,
    )


def simulate_plan_events(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    device: GpuDevice,
    host: HostSystem | None = None,
    *,
    copy_streams: str = "per-direction",
    in_order_copy: bool = False,
) -> EventTimeline:
    """Timing-only run of the event engine (no payloads materialised).

    With ``copy_streams="shared"`` this reproduces
    :func:`simulate_plan_overlap` exactly; the per-direction default can
    only be faster (independent uploads and downloads no longer contend
    for one DMA engine) and never slower than the synchronous walk.
    """
    cost = CostModel(device, host)
    eg = _build_event_graph(plan, graph, cost, copy_streams=copy_streams)
    timeline = _run_event_loop(plan, eg, in_order_copy=in_order_copy)
    timeline.copy_streams = copy_streams
    return timeline


# ---------------------------------------------------------------------------
# Numeric execution on the event engine
# ---------------------------------------------------------------------------
@dataclass
class EventExecutionResult:
    """Outcome of one plan executed on the discrete-event engine."""

    outputs: dict[str, np.ndarray]
    timeline: EventTimeline
    #: overlapping stream timeline, Chrome-trace exportable; event start
    #: times are the *fired* times, so concurrent streams overlap
    profile: Profile
    h2d_floats: int
    d2h_floats: int

    @property
    def total_time(self) -> float:
        return self.timeline.total_time

    @property
    def sync_total_time(self) -> float:
        return self.timeline.sync_total_time

    @property
    def transfer_time(self) -> float:
        return self.timeline.copy_busy

    @property
    def compute_time(self) -> float:
        return self.timeline.compute_busy

    @property
    def hidden_transfer_time(self) -> float:
        return self.timeline.hidden_transfer_time

    @property
    def hidden_transfer_fraction(self) -> float:
        return self.timeline.hidden_transfer_fraction

    @property
    def speedup(self) -> float:
        return self.timeline.speedup

    @property
    def overlap_efficiency(self) -> float:
        """Overlap achieved / overlap possible, from the executed profile
        (:func:`repro.obs.analyze.timeline_stats`)."""
        from repro.obs.analyze import timeline_stats

        return timeline_stats(self.profile).overlap_efficiency

    def stream_profiles(self) -> list[tuple[str, Profile]]:
        """One named profile per stream, for per-stream Chrome-trace
        tracks (``write_chrome_trace(path, profiles=...)``)."""
        shared = self.timeline.copy_streams == "shared"
        by_stream: dict[str, Profile] = {}
        for ev in self.profile.events:
            stream = _KIND_STREAMS.get(ev.kind, HOST_STREAM)
            if shared and stream in (H2D_STREAM, D2H_STREAM):
                stream = SHARED_COPY
            by_stream.setdefault(stream, Profile()).record(ev)
        order = [COMPUTE, H2D_STREAM, D2H_STREAM, SHARED_COPY, HOST_STREAM]
        return [(name, by_stream[name]) for name in order if name in by_stream]


_KIND_STREAMS = {
    EventKind.KERNEL: COMPUTE,
    EventKind.H2D: H2D_STREAM,
    EventKind.D2H: D2H_STREAM,
}


class _StreamStore:
    """Device-side payload store for the event engine.

    Payload coercions mirror :class:`~repro.gpusim.SimRuntime` exactly
    (contiguous float32 on write, defensive copy on download) so the
    event engine's outputs are byte-identical to the synchronous
    executor's.
    """

    def __init__(self) -> None:
        self._data: dict[str, np.ndarray] = {}

    def write(self, name: str, array: np.ndarray) -> None:
        self._data[name] = np.ascontiguousarray(array, dtype=np.float32)

    def read_device(self, name: str) -> np.ndarray:
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(f"device buffer {name!r} not resident") from None

    def download(self, name: str) -> np.ndarray:
        return self.read_device(name).copy()

    def free(self, name: str) -> None:
        self._data.pop(name, None)


def execute_plan_events(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    device: GpuDevice,
    template_inputs: Mapping[str, np.ndarray],
    host: HostSystem | None = None,
    *,
    copy_streams: str = "per-direction",
    in_order_copy: bool = False,
) -> EventExecutionResult:
    """Execute a validated plan on the discrete-event stream engine.

    Numeric work happens *inside* event firing: an upload materialises
    its host chunk onto the device store when the upload event fires, a
    launch gathers/computes/scatters when the compute engine reaches it,
    a download copies back when its producer has finished.  The recorded
    profile therefore carries genuinely overlapping start times — the
    executed timeline the paper's Section 3.3.2 extension describes.
    """
    cost = CostModel(device, host)
    eg = _build_event_graph(plan, graph, cost, copy_streams=copy_streams)
    store = _StreamStore()
    hostmem: dict[str, np.ndarray] = {}
    profile = Profile()

    def host_fetch(name: str) -> np.ndarray:
        if name not in hostmem:
            ds = graph.data[name]
            if not ds.is_input:
                raise KeyError(f"host read of {name!r} before it was saved")
            hostmem[name] = input_chunk_array(graph, name, template_inputs)
        return hostmem[name]

    def fire(i: int, step: Step, stream: str, start: float, end: float) -> None:
        if isinstance(step, CopyToGPU):
            arr = host_fetch(step.data)
            nbytes = arr.size * FLOAT_BYTES
            profile.record(Event(EventKind.ALLOC, step.data, start, 0.0, nbytes))
            profile.record(
                Event(EventKind.H2D, step.data, start, end - start, nbytes)
            )
            store.write(step.data, arr)
        elif isinstance(step, CopyToCPU):
            arr = store.download(step.data)
            hostmem[step.data] = arr
            profile.record(
                Event(
                    EventKind.D2H, step.data, start, end - start,
                    arr.size * FLOAT_BYTES,
                )
            )
        elif isinstance(step, Launch):
            op = graph.ops[step.op]
            impl = get_impl(op.kind)
            operands = [
                gather_slot(graph, s, store.read_device)
                for s in op_slots(op, graph)
            ]
            results = impl.execute(op, operands)

            def put(name: str, array: np.ndarray) -> None:
                profile.record(
                    Event(
                        EventKind.ALLOC, name, start, 0.0,
                        graph.data[name].size * FLOAT_BYTES,
                    )
                )
                store.write(name, array)

            scatter_outputs(graph, op, results, put)
            profile.record(
                Event(
                    EventKind.KERNEL, step.op, start, end - start,
                    int(impl.bytes_accessed(op, graph)),
                )
            )
        elif isinstance(step, Free):
            profile.record(
                Event(
                    EventKind.FREE, step.data, start, 0.0,
                    graph.data[step.data].size * FLOAT_BYTES,
                )
            )
            store.free(step.data)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step {step!r}")

    timeline = _run_event_loop(plan, eg, in_order_copy=in_order_copy, fire=fire)
    timeline.copy_streams = copy_streams
    outputs = {
        name: assemble_root(graph, name, lambda n: hostmem[n])
        for name, ds in graph.data.items()
        if ds.is_output and ds.parent is None
    }
    return EventExecutionResult(
        outputs=outputs,
        timeline=timeline,
        profile=profile,
        h2d_floats=plan.h2d_floats(graph),
        d2h_floats=plan.d2h_floats(graph),
    )


__all__ = [
    "COMPUTE",
    "COPY_STREAM_MODES",
    "D2H_STREAM",
    "EventExecutionResult",
    "EventTimeline",
    "H2D_STREAM",
    "HOST_STREAM",
    "SHARED_COPY",
    "StreamEvent",
    "execute_plan_events",
    "plan_streams",
    "simulate_plan_events",
    "step_stream",
]
