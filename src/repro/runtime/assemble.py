"""Gather/scatter between logical arrays and chunk data structures.

Split operators read *regions* of logical arrays that are physically
stored as chunk data structures (Section 3.2's size-and-offset
computation).  These helpers reassemble a slot's input region from the
chunks holding it, and scatter an operator's logical output rows into
the chunk buffers it produces.  They are shared by the reference
executor, the plan executor and the generated Python programs.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.graph import Operator, OperatorGraph, Slot, op_out_specs


def gather_slot(
    graph: OperatorGraph,
    slot: Slot,
    fetch: Callable[[str], np.ndarray],
) -> np.ndarray:
    """Assemble the input region a slot describes.

    ``fetch`` maps a concrete data-structure name to its array (host dict,
    device buffer, ...).  Chunks tile the root contiguously, so the
    selected chunks vstack into a contiguous block covering the slot rows.
    """
    if not slot.chunks:
        raise ValueError(f"slot on {slot.root!r} has no chunks")
    chunks = sorted(
        slot.chunks,
        key=lambda n: graph.data[n].row_range or (0, graph.data[n].rows),
    )
    arrays = [fetch(n) for n in chunks]
    block = arrays[0] if len(arrays) == 1 else np.vstack(arrays)
    first = graph.data[chunks[0]]
    start = first.row_range[0] if first.row_range else 0
    if slot.rows is None:
        return block
    a, b = slot.rows
    if a == start and b == start + block.shape[0]:
        return block
    if a < start or b > start + block.shape[0]:
        raise ValueError(
            f"slot rows {slot.rows} not covered by chunks of {slot.root!r} "
            f"(covered [{start}, {start + block.shape[0]}))"
        )
    return block[a - start : b - start]


def scatter_outputs(
    graph: OperatorGraph,
    op: Operator,
    results: Sequence[np.ndarray],
    store: Callable[[str, np.ndarray], None],
) -> None:
    """Distribute logical output rows into the operator's chunk buffers."""
    specs = op_out_specs(op, graph)
    if len(results) != len(specs):
        raise ValueError(
            f"{op.name}: produced {len(results)} arrays for {len(specs)} outputs"
        )
    for spec, arr in zip(specs, results):
        a, b = spec.rng
        if arr.shape[0] != b - a:
            raise ValueError(
                f"{op.name}: output rows {arr.shape[0]} != range {spec.rng}"
            )
        for name, (c0, c1) in spec.chunks:
            store(name, np.ascontiguousarray(arr[c0 - a : c1 - a]))


def input_chunk_array(
    graph: OperatorGraph,
    name: str,
    template_inputs: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Host array for a (possibly chunked) template-input data structure."""
    ds = graph.data[name]
    if ds.parent is not None:
        root = np.asarray(template_inputs[ds.parent], dtype=np.float32)
        r0, r1 = ds.row_range
        return root[r0:r1]
    return np.asarray(template_inputs[name], dtype=np.float32)


def assemble_root(
    graph: OperatorGraph,
    root: str,
    fetch: Callable[[str], np.ndarray],
) -> np.ndarray:
    """Reassemble a full logical array from its chunks (template outputs)."""
    from repro.core.splitting import chunk_range, chunks_of

    names = chunks_of(graph, root)
    if names == [root]:
        return fetch(root)
    parts = []
    expected = 0
    for n in names:
        a, b = chunk_range(graph, n)
        if a != expected:
            raise ValueError(f"chunks of {root!r} do not tile it (gap at {a})")
        expected = b
        parts.append(fetch(n))
    if expected != graph.data[root].rows:
        raise ValueError(f"chunks of {root!r} do not cover all rows")
    return np.vstack(parts)
