"""Host-only reference execution of an operator graph.

Runs every operator in topological order with the numpy operator
library, entirely in host memory (no device, no plan).  This is the
numerical ground truth: an optimized, split, scheduled plan executed on
the bounded-memory simulator must reproduce these results exactly.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.graph import OperatorGraph, op_slots
from repro.ops import get_impl

from .assemble import assemble_root, gather_slot, input_chunk_array, scatter_outputs


def reference_execute(
    graph: OperatorGraph,
    template_inputs: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Execute the graph on the host; returns the template outputs.

    ``template_inputs`` maps *root* input names (pre-splitting names) to
    arrays.  Outputs are returned under their root names, reassembled
    from chunks when the graph was split.
    """
    store: dict[str, np.ndarray] = {}

    def fetch(name: str) -> np.ndarray:
        if name not in store:
            ds = graph.data[name]
            if not ds.is_input:
                raise KeyError(f"data {name!r} read before being produced")
            store[name] = input_chunk_array(graph, name, template_inputs)
        return store[name]

    def put(name: str, array: np.ndarray) -> None:
        store[name] = array

    for op_name in graph.topological_order():
        op = graph.ops[op_name]
        impl = get_impl(op.kind)
        inputs = [gather_slot(graph, s, fetch) for s in op_slots(op, graph)]
        results = impl.execute(op, inputs)
        scatter_outputs(graph, op, results, put)

    outputs: dict[str, np.ndarray] = {}
    for name, ds in graph.data.items():
        if ds.is_output and ds.parent is None:
            outputs[name] = assemble_root(graph, name, fetch)
    return outputs
