"""Machine-readable benchmark trajectory: schema, recorder, comparator.

The paper's evaluation is a set of measured tables; this module makes
the reproduction's own numbers first-class artifacts instead of
free-form ``.txt`` renderings.  Every benchmark run writes one
``BENCH_<name>.json`` per table/figure:

* a **versioned schema** (``schema_version``) with the benchmark name,
  a numeric ``metrics`` map (transfer floats, simulated seconds, ...),
  the run ``config`` (template, device, planner), and an ``env``
  fingerprint (python / platform / numpy);
* a **recorder** (:class:`BenchRecorder`) used by ``benchmarks/`` next
  to the human-readable report writer;
* a **comparator** with relative-threshold regression verdicts —
  ``repro bench-compare <baseline> <candidate>`` is the CI gate.

Metrics are lower-is-better by default (bytes, floats, seconds).  Names
containing ``speedup``, ``efficiency`` or ``hidden_`` invert the
direction (more overlap hidden behind compute is better); names
starting with ``wall_`` are wall-clock measurements and therefore
*informational* — reported, never gated (they vary across machines).
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Iterable

SCHEMA_VERSION = 1

#: metric-name prefixes that are reported but never fail the gate
INFORMATIONAL_PREFIXES = ("wall_",)
#: substrings marking higher-is-better metrics
HIGHER_IS_BETTER = ("speedup", "efficiency", "hidden_")

DEFAULT_THRESHOLD = 0.10


def env_fingerprint() -> dict[str, str]:
    """Where a result was produced (schema ``env`` block)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "numpy": numpy_version,
    }


# ---------------------------------------------------------------------------
# Result schema
# ---------------------------------------------------------------------------
@dataclass
class BenchResult:
    """One benchmark's recorded numbers (the ``BENCH_*.json`` schema)."""

    name: str
    metrics: dict[str, float]
    config: dict[str, Any] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=env_fingerprint)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "config": dict(self.config),
            "env": dict(self.env),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "BenchResult":
        validate_bench_dict(raw)
        return cls(
            name=raw["name"],
            metrics=dict(raw["metrics"]),
            config=dict(raw.get("config", {})),
            env=dict(raw.get("env", {})),
            schema_version=raw["schema_version"],
        )


def validate_bench_dict(raw: Any) -> None:
    """Raise ``ValueError`` unless ``raw`` is a valid benchmark result."""
    if not isinstance(raw, dict):
        raise ValueError(f"benchmark result must be an object, got {type(raw).__name__}")
    version = raw.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported benchmark schema_version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("benchmark result needs a non-empty string 'name'")
    metrics = raw.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("benchmark result needs a 'metrics' object")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise ValueError(f"metric names must be strings, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"metric {key!r} must be a number, got {value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"metric {key!r} must be finite, got {value!r}")
    for block in ("config", "env"):
        if block in raw and not isinstance(raw[block], dict):
            raise ValueError(f"benchmark {block!r} must be an object")


def load_bench(path: str) -> BenchResult:
    """Read and schema-validate one ``BENCH_*.json`` file."""
    with open(path) as fh:
        raw = json.load(fh)
    try:
        return BenchResult.from_dict(raw)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


class BenchRecorder:
    """Writes schema-versioned ``BENCH_<name>.json`` files to one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def path_for(self, name: str) -> str:
        return os.path.join(self.directory, f"BENCH_{name}.json")

    def record(
        self,
        name: str,
        metrics: dict[str, float],
        config: dict[str, Any] | None = None,
    ) -> str:
        result = BenchResult(
            name=name, metrics=dict(metrics), config=dict(config or {})
        )
        raw = result.to_dict()
        validate_bench_dict(raw)  # never write what we would refuse to read
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(name)
        with open(path, "w") as fh:
            json.dump(raw, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path


# ---------------------------------------------------------------------------
# Comparator
# ---------------------------------------------------------------------------
VERDICT_OK = "ok"
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"
VERDICT_INFO = "info"
VERDICT_NEW = "new"
VERDICT_MISSING = "missing"


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-candidate verdict."""

    metric: str
    baseline: float | None
    candidate: float | None
    rel_change: float | None  # signed; positive = candidate is larger
    verdict: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "rel_change": self.rel_change,
            "verdict": self.verdict,
        }


@dataclass
class BenchComparison:
    """All metric verdicts for one benchmark pair."""

    name: str
    threshold: float
    deltas: list[MetricDelta]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.verdict == VERDICT_REGRESSION]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "threshold": self.threshold,
            "regressed": self.regressed,
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _informational(metric: str) -> bool:
    return metric.startswith(INFORMATIONAL_PREFIXES)


def _higher_is_better(metric: str) -> bool:
    return any(tag in metric for tag in HIGHER_IS_BETTER)


def _verdict(metric: str, base: float, cand: float, threshold: float) -> tuple[float, str]:
    if base == 0:
        rel = 0.0 if cand == 0 else math.inf
    else:
        rel = (cand - base) / abs(base)
    if _informational(metric):
        return rel, VERDICT_INFO
    worse = -rel if _higher_is_better(metric) else rel
    if worse >= threshold:
        return rel, VERDICT_REGRESSION
    if worse <= -threshold:
        return rel, VERDICT_IMPROVEMENT
    return rel, VERDICT_OK


def compare_results(
    baseline: BenchResult,
    candidate: BenchResult,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Relative-threshold comparison of two results of one benchmark.

    A metric regresses when it is worse than the baseline by *at least*
    ``threshold`` (relative), so the default 0.10 flags an exactly-10%
    transfer-bytes increase.  Metrics present on only one side are
    reported as ``new`` / ``missing`` but never gate.
    """
    deltas: list[MetricDelta] = []
    names = sorted(set(baseline.metrics) | set(candidate.metrics))
    for name in names:
        base = baseline.metrics.get(name)
        cand = candidate.metrics.get(name)
        if base is None:
            deltas.append(MetricDelta(name, None, cand, None, VERDICT_NEW))
        elif cand is None:
            deltas.append(MetricDelta(name, base, None, None, VERDICT_MISSING))
        else:
            rel, verdict = _verdict(name, base, cand, threshold)
            deltas.append(MetricDelta(name, base, cand, rel, verdict))
    return BenchComparison(
        name=candidate.name, threshold=threshold, deltas=deltas
    )


def _bench_files(directory: str) -> dict[str, str]:
    out = {}
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            out[entry] = os.path.join(directory, entry)
    return out


def compare_dirs(
    baseline_dir: str,
    candidate_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[BenchComparison], list[str], list[str]]:
    """Pair ``BENCH_*.json`` files by name and compare each pair.

    Returns ``(comparisons, baseline_only, candidate_only)``; unpaired
    files are listed, not failed — a smoke run regenerating a subset of
    the suite gates only on what it produced.
    """
    base_files = _bench_files(baseline_dir)
    cand_files = _bench_files(candidate_dir)
    comparisons = [
        compare_results(
            load_bench(base_files[name]), load_bench(cand_files[name]), threshold
        )
        for name in sorted(set(base_files) & set(cand_files))
    ]
    return (
        comparisons,
        sorted(set(base_files) - set(cand_files)),
        sorted(set(cand_files) - set(base_files)),
    )


def render_comparisons(
    comparisons: Iterable[BenchComparison],
    baseline_only: Iterable[str] = (),
    candidate_only: Iterable[str] = (),
) -> str:
    """Human-readable verdict table (the ``repro bench-compare`` output)."""
    lines: list[str] = []
    any_rows = False
    for comp in comparisons:
        any_rows = True
        flag = "REGRESSED" if comp.regressed else "ok"
        lines.append(f"[{flag}] {comp.name} (threshold {comp.threshold:.0%})")
        width = max((len(d.metric) for d in comp.deltas), default=6)
        for d in comp.deltas:
            if d.rel_change is None:
                detail = d.verdict
            else:
                rel = (
                    f"{d.rel_change:+.2%}"
                    if math.isfinite(d.rel_change)
                    else "+inf"
                )
                detail = f"{d.baseline:g} -> {d.candidate:g} ({rel}) {d.verdict}"
            lines.append(f"  {d.metric:{width}s}  {detail}")
    if not any_rows:
        lines.append("(no benchmark pairs to compare)")
    for name in baseline_only:
        lines.append(f"  baseline only (not regenerated): {name}")
    for name in candidate_only:
        lines.append(f"  candidate only (no baseline committed): {name}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_THRESHOLD",
    "SCHEMA_VERSION",
    "BenchComparison",
    "BenchRecorder",
    "BenchResult",
    "MetricDelta",
    "compare_dirs",
    "compare_results",
    "env_fingerprint",
    "load_bench",
    "render_comparisons",
    "validate_bench_dict",
]
