"""Crash-safe flight recorder: a segmented on-disk journal of telemetry.

The live event bus (:class:`repro.obs.live.EventLog`) is an in-memory
ring — perfect while its process is alive, gone the instant the process
is not.  A serving fleet needs the opposite guarantee: when a shard is
SIGKILLed mid-request, the events that explain *why* must survive the
process.  :class:`FlightRecorder` is that black box.  It tees every
published event into an append-only, segmented journal on disk:

* every record is one **frame** — the same fixed binary header
  discipline as :mod:`repro.service.ipc` (magic, version, flags,
  CRC-32, payload length) — followed by a JSON-encoded event dict.
  JSON, not pickle: a post-mortem must be readable even by tooling
  that cannot import this codebase, and a journal written by a crashed
  build must never be able to execute code in the reader;
* records append to numbered segment files (``segment-00000000.flight``,
  ...).  A segment that would exceed ``segment_bytes`` is closed and
  the next one opened — rotation is a plain create-new-file, so a
  reader never observes a half-renamed journal;
* total journal size is bounded: once the directory exceeds
  ``max_bytes`` the oldest closed segments are evicted, newest data
  always wins (the last seconds before a crash are the valuable ones);
* each record is flushed to the OS page cache as one buffered write.
  Page cache survives process death (SIGKILL included) — only a
  machine crash can lose it, and ``fsync=True`` closes that window for
  callers who want it at the cost of one fsync per record.

The reader side (:func:`read_journal`) is deliberately forgiving: a
truncated or corrupt tail — the expected signature of a crash mid-write
— terminates that segment's decode with a *warning*, never an
exception.  :func:`build_postmortem` then folds the recovered records
into the crash report the supervisor attaches to
:class:`~repro.service.ShardDiedError`: final event timeline, in-flight
request ids, reconstructed latency/outcome stats, active alerts, exit
code.

Like the rest of :mod:`repro.obs`, this module sits at the bottom of
the import graph: no ``repro.core`` / ``repro.gpusim`` / ``repro.service``
imports.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.live.events import EventLog, TelemetryEvent

MAGIC = b"RFLT"
JOURNAL_VERSION = 1

#: ``!`` network order: magic, version, flags, crc32, payload length —
#: deliberately the same shape as the shard IPC header (ipc._HEADER).
_HEADER = struct.Struct("!4sBBII")
HEADER_SIZE = _HEADER.size

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".flight"
DEFAULT_SEGMENT_BYTES = 1 << 20  # 1 MiB per segment
DEFAULT_MAX_BYTES = 16 << 20     # 16 MiB journal bound
POSTMORTEM_BASENAME = "postmortem.json"

#: event kinds that terminate a request's in-flight status
_TERMINAL_KINDS = frozenset({"service.done"})
#: the worker's clean-shutdown marker (a journal ending without one of
#: these, from a dead process, is a crash)
_SHUTDOWN_KINDS = frozenset({"service.close", "worker.stop"})


class JournalError(RuntimeError):
    """A journal record failed validation (magic/version/CRC/length)."""


def segment_name(index: int) -> str:
    """Filename of segment ``index`` (zero-padded so names sort)."""
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int | None:
    """Inverse of :func:`segment_name`; ``None`` for foreign files."""
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    stem = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return None


def list_segments(directory: str) -> list[str]:
    """Absolute paths of the journal's segments, oldest first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    indexed = sorted(
        (idx, name)
        for name in names
        if (idx := _segment_index(name)) is not None
    )
    return [os.path.join(directory, name) for _, name in indexed]


def journal_dir(flight_dir: str, shard_label: str) -> str:
    """The per-shard journal directory under a fleet ``flight_dir``.

    Shard labels use ``/`` as a namespace separator (``proc/0``) which
    cannot appear in a single path component; it maps to ``-``.
    """
    safe = shard_label.replace("/", "-").replace(os.sep, "-") or "shard"
    return os.path.join(flight_dir, safe)


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one event dict into a CRC-protected journal record."""
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        JOURNAL_VERSION,
        0,  # flags, reserved
        zlib.crc32(body) & 0xFFFFFFFF,
        len(body),
    )
    return header + body


def decode_records(data: bytes) -> tuple[list[dict[str, Any]], str | None]:
    """Decode a segment's bytes into (records, tail_warning).

    Decoding is sequential and stops at the first invalid frame: in a
    crash-written journal only the *tail* can be damaged (truncated
    write, torn page), so everything before the first bad frame is
    trusted and returned, and the damage is reported as a warning
    string instead of an exception.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            return records, (
                f"truncated header at byte {offset} "
                f"({total - offset} trailing bytes)"
            )
        magic, version, _flags, crc, length = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            return records, f"bad magic {magic!r} at byte {offset}"
        if version != JOURNAL_VERSION:
            return records, f"unknown journal version {version} at byte {offset}"
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            return records, (
                f"truncated record at byte {offset}: header claims "
                f"{length} payload bytes, {total - start} present"
            )
        body = data[start:end]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return records, f"CRC mismatch at byte {offset}"
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return records, f"undecodable payload at byte {offset}: {exc}"
        if not isinstance(payload, dict):
            return records, f"non-object payload at byte {offset}"
        records.append(payload)
        offset = end
    return records, None


class FlightRecorder:
    """Single-writer, crash-safe event journal for one shard process.

    Attach it to an :class:`EventLog` via
    ``log.add_sink(recorder.record)`` (or :meth:`attach`) and every
    published event is framed and appended before ``emit`` returns, so
    the on-disk journal is never behind the in-memory ring by more than
    the one record being written when the process dies.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        fsync: bool = False,
    ) -> None:
        if segment_bytes < HEADER_SIZE + 2:
            raise ValueError("segment_bytes too small to hold one record")
        if max_bytes < segment_bytes:
            raise ValueError("max_bytes must be >= segment_bytes")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.max_bytes = max_bytes
        self.fsync = fsync
        self._lock = threading.Lock()
        self._file = None
        self._file_size = 0
        self._closed = False
        self.appended = 0
        self.rotated = 0
        self.evicted = 0
        self.errors = 0
        os.makedirs(directory, exist_ok=True)
        # restarting over an existing journal continues its numbering
        existing = list_segments(directory)
        self._next_index = (
            (_segment_index(os.path.basename(existing[-1])) or 0) + 1
            if existing else 0
        )
        self._open_segment()

    # -- writer ----------------------------------------------------------
    def _open_segment(self) -> None:
        while True:
            path = os.path.join(self.directory, segment_name(self._next_index))
            self._next_index += 1
            try:
                self._file = open(path, "xb")
            except FileExistsError:
                continue  # another lifetime of this shard got there first
            self._file_size = 0
            return

    def _rotate(self) -> None:
        self._file.close()
        self.rotated += 1
        self._open_segment()
        self._evict()

    def _evict(self) -> None:
        """Drop oldest closed segments while the journal exceeds its bound."""
        segments = list_segments(self.directory)
        current = self._file.name if self._file else None
        sizes = []
        for path in segments:
            try:
                sizes.append((path, os.path.getsize(path)))
            except OSError:
                continue
        total = sum(size for _, size in sizes)
        for path, size in sizes:
            if total <= self.max_bytes:
                break
            if path == current:
                break  # never evict the segment being written
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evicted += 1

    def record(self, event: TelemetryEvent) -> None:
        """Append one event (EventLog sink signature).  Never raises —
        a broken disk must not take down the serving path."""
        try:
            frame = encode_record(event.to_dict())
        except Exception:
            self.errors += 1
            return
        with self._lock:
            if self._closed or self._file is None:
                return
            try:
                if (self._file_size
                        and self._file_size + len(frame) > self.segment_bytes):
                    self._rotate()
                self._file.write(frame)
                # one flush per record: the OS page cache survives
                # process death, which is the crash mode shards have
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
                self._file_size += len(frame)
                self.appended += 1
            except Exception:
                self.errors += 1

    def attach(self, log: EventLog) -> None:
        """Tee ``log``'s events into this journal."""
        log.add_sink(self.record)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "appended": self.appended,
                "rotated": self.rotated,
                "evicted": self.evicted,
                "errors": self.errors,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                try:
                    self._file.flush()
                    self._file.close()
                except Exception:
                    pass
                self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------
@dataclass
class JournalReadResult:
    """Everything recovered from one shard's on-disk journal."""

    directory: str
    records: list[dict[str, Any]] = field(default_factory=list)
    segments: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.warnings


def read_journal(directory: str) -> JournalReadResult:
    """Recover every decodable record from a journal directory.

    Records are returned in ``seq`` order.  Damage (truncated tail,
    CRC mismatch, missing segment) is reported in ``warnings`` — a
    crashed writer is the *normal* producer of this data, so no state
    of the directory raises.
    """
    result = JournalReadResult(directory=directory)
    if not os.path.isdir(directory):
        result.warnings.append(f"no journal directory at {directory}")
        return result
    for path in list_segments(directory):
        result.segments.append(path)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            result.warnings.append(f"{os.path.basename(path)}: unreadable ({exc})")
            continue
        records, tail = decode_records(data)
        result.records.extend(records)
        if tail is not None:
            result.warnings.append(f"{os.path.basename(path)}: {tail}")
    result.records.sort(key=lambda r: (r.get("seq", 0), r.get("ts", 0.0)))
    return result


def iter_journal_events(directory: str) -> Iterator[dict[str, Any]]:
    """Convenience iterator over :func:`read_journal` records."""
    yield from read_journal(directory).records


# ---------------------------------------------------------------------------
# Post-mortem synthesis
# ---------------------------------------------------------------------------
def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def describe_exit(exit_code: int | None) -> str:
    """Human phrasing of a process exit code (signal-aware)."""
    if exit_code is None:
        return "exit status unknown"
    if exit_code < 0:
        try:
            name = signal.Signals(-exit_code).name
        except ValueError:
            name = f"signal {-exit_code}"
        return f"killed by {name} ({exit_code})"
    return f"exit code {exit_code}"


def build_postmortem(
    records: list[dict[str, Any]],
    *,
    shard: str = "",
    exit_code: int | None = None,
    window_seconds: float = 60.0,
    timeline_limit: int = 50,
    warnings: list[str] | None = None,
) -> dict[str, Any]:
    """Fold recovered journal records into one crash report.

    The report answers the questions an operator asks first:

    * what were the final moments? — ``timeline`` (last
      ``window_seconds`` of events, newest ``timeline_limit``);
    * what was the shard working on? — ``in_flight`` (request ids
      admitted or started but never finished);
    * how was it performing? — ``window`` (count / ok / failed /
      latency percentiles reconstructed from ``service.done`` events);
    * was anything already on fire? — ``alerts_active`` (``alert.firing``
      without a matching ``alert.resolved``);
    * how did it die? — ``exit_code`` / ``exit_detail`` /
      ``clean_shutdown``.
    """
    last_ts = max((r.get("ts", 0.0) for r in records), default=0.0)
    horizon = last_ts - window_seconds

    in_flight: dict[int, str] = {}
    done_latencies: list[float] = []
    done_ok = 0
    done_failed = 0
    alerts: dict[str, dict[str, Any]] = {}
    clean_shutdown = False
    first_seq = records[0].get("seq") if records else None
    last_seq = records[-1].get("seq") if records else None

    for rec in records:
        kind = rec.get("kind", "")
        rid = rec.get("request_id")
        fields = rec.get("fields") or {}
        if rid is not None:
            if kind in _TERMINAL_KINDS:
                in_flight.pop(rid, None)
                status = str(fields.get("status", ""))
                if status == "ok":
                    done_ok += 1
                else:
                    done_failed += 1
                seconds = fields.get("seconds")
                if isinstance(seconds, (int, float)):
                    done_latencies.append(float(seconds))
            else:
                in_flight[rid] = kind  # latest known stage
        if kind == "alert.firing":
            name = str(fields.get("rule", fields.get("name", "alert")))
            alerts[name] = {"rule": name, "since_ts": rec.get("ts"), **fields}
        elif kind == "alert.resolved":
            alerts.pop(str(fields.get("rule", fields.get("name", "alert"))),
                       None)
        if kind in _SHUTDOWN_KINDS:
            clean_shutdown = True

    timeline = [r for r in records if r.get("ts", 0.0) >= horizon]
    if timeline_limit is not None and len(timeline) > timeline_limit:
        timeline = timeline[-timeline_limit:]

    done_latencies.sort()
    window = {
        "window_seconds": window_seconds,
        "count": done_ok + done_failed,
        "ok": done_ok,
        "failed": done_failed,
        "p50": _percentile(done_latencies, 0.50),
        "p95": _percentile(done_latencies, 0.95),
        "p99": _percentile(done_latencies, 0.99),
    }

    return {
        "shard": shard,
        "exit_code": exit_code,
        "exit_detail": describe_exit(exit_code),
        "clean_shutdown": clean_shutdown,
        "records": len(records),
        "first_seq": first_seq,
        "last_seq": last_seq,
        "last_ts": last_ts,
        "in_flight": [
            {"request_id": rid, "last_kind": kind}
            for rid, kind in sorted(in_flight.items())
        ],
        "window": window,
        "alerts_active": sorted(alerts.values(),
                                key=lambda a: str(a.get("rule", ""))),
        "timeline": timeline,
        "warnings": list(warnings or ()),
    }


def harvest_postmortem(
    directory: str,
    *,
    shard: str = "",
    exit_code: int | None = None,
    window_seconds: float = 60.0,
    timeline_limit: int = 50,
    write_artifact: bool = True,
) -> dict[str, Any]:
    """Read a dead shard's journal and synthesize (and persist) its
    post-mortem.

    When ``write_artifact`` is true the report is also written next to
    the segments as ``postmortem.json`` (atomic ``os.replace``), so the
    artifact survives for CI upload / later ``repro postmortem`` runs
    even after the supervisor process exits.
    """
    recovered = read_journal(directory)
    pm = build_postmortem(
        recovered.records,
        shard=shard,
        exit_code=exit_code,
        window_seconds=window_seconds,
        timeline_limit=timeline_limit,
        warnings=recovered.warnings,
    )
    pm["journal_dir"] = directory
    pm["segments"] = [os.path.basename(p) for p in recovered.segments]
    if write_artifact and os.path.isdir(directory):
        target = os.path.join(directory, POSTMORTEM_BASENAME)
        tmp = target + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(pm, fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return pm


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_SEGMENT_BYTES",
    "FlightRecorder",
    "HEADER_SIZE",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalReadResult",
    "MAGIC",
    "POSTMORTEM_BASENAME",
    "build_postmortem",
    "decode_records",
    "describe_exit",
    "encode_record",
    "harvest_postmortem",
    "iter_journal_events",
    "journal_dir",
    "list_segments",
    "read_journal",
    "segment_name",
]
