"""Structured trace spans for the compilation pipeline.

The paper's evaluation is built from profiler evidence ("time actually
spent inside the GPU device driver ... in memcopy"); this module gives
the *compiler* the same visibility.  A :class:`Tracer` records one
:class:`Span` per pipeline phase (splitting, offload-unit
identification, operator scheduling, transfer scheduling, PB
optimisation, validation) with wall-clock timings and per-phase
attributes — ops split, transfer floats, solver statistics — so every
future performance PR can be measured instead of guessed at.

Spans nest: entering a span inside another records the parent's name, so
exports (see :mod:`repro.obs.chrometrace`) can reconstruct the flame
graph of one ``Framework.compile`` call.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One timed phase; ``start``/``duration`` are wall-clock seconds
    relative to the owning tracer's epoch."""

    name: str
    start: float
    duration: float = 0.0
    parent: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (ops split, floats saved, ...)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans for one compilation (or any other timed activity).

    Usage::

        tracer = Tracer()
        with tracer.span("splitting") as sp:
            report = make_feasible(graph, cap)
            sp.set(split_ops=len(report.split_ops))
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self.spans: list[Span] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        parent = self._stack[-1].name if self._stack else None
        sp = Span(name=name, start=self._now(), parent=parent, attrs=dict(attrs))
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = self._now() - sp.start
            self._stack.pop()
            self.spans.append(sp)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous (zero-duration) marker."""
        parent = self._stack[-1].name if self._stack else None
        sp = Span(name=name, start=self._now(), parent=parent, attrs=dict(attrs))
        self.spans.append(sp)
        return sp

    def merge(self, other: "Tracer", *, prefix: str | None = None) -> None:
        """Fold another tracer's completed spans into this one.

        Spans are re-based onto this tracer's epoch (the other tracer's
        epoch offset is preserved so relative timings stay truthful) and
        optionally re-parented under ``prefix`` — the execution service
        uses this to collect per-request tracers into one service-wide
        timeline.
        """
        shift = other._epoch - self._epoch
        for sp in other.spans:
            self.spans.append(
                Span(
                    name=sp.name,
                    start=sp.start + shift,
                    duration=sp.duration,
                    parent=sp.parent if sp.parent is not None else prefix,
                    attrs=dict(sp.attrs),
                )
            )

    def find(self, name: str) -> list[Span]:
        """All completed spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def total_time(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [s.to_dict() for s in sorted(self.spans, key=lambda s: s.start)]


__all__ = ["Span", "Tracer"]
