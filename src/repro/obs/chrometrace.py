"""Chrome trace-event (``about://tracing`` / Perfetto) JSON export.

Serialises both sides of the system into one trace file:

* **compile spans** (wall-clock, from :class:`~repro.obs.trace.Tracer`)
  on their own process track, one complete ("X") event per phase, with
  span attributes in ``args``;
* the **gpusim timeline** (simulated time, from
  :class:`~repro.gpusim.Profile`) as one thread per stream — H2D, D2H,
  kernel, host — mirroring how the CUDA profiler the paper used lays
  out memcpy vs. kernel rows.  Zero-duration alloc/free events become
  instant ("i") markers on a bookkeeping track.

Everything is emitted in microseconds (the trace-event unit) and sorted
by timestamp, so the output loads directly in ``about://tracing``,
``ui.perfetto.dev``, or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from .trace import Span

#: process ids for the two time domains (wall clock vs. simulated time)
COMPILE_PID = 1
DEVICE_PID = 2

#: stream (thread) layout of the simulated device timeline
_KIND_TRACKS = {
    "memcpy_h2d": (1, "H2D"),
    "memcpy_d2h": (2, "D2H"),
    "memcpy_p2p": (3, "P2P"),
    "kernel": (4, "kernel"),
    "host": (5, "host"),
    "alloc": (6, "memory"),
    "free": (6, "memory"),
}
_OTHER_TRACK = 7
_SEC_TO_US = 1e6


def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    return {
        "ph": "M",
        "pid": pid,
        "tid": 0 if tid is None else tid,
        "ts": 0,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }


def spans_to_events(
    spans: Iterable[Span], pid: int = COMPILE_PID
) -> list[dict[str, Any]]:
    """Compile-phase spans as complete ("X") events on one track."""
    events: list[dict[str, Any]] = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": "compile",
                "ph": "X",
                "ts": span.start * _SEC_TO_US,
                "dur": span.duration * _SEC_TO_US,
                "pid": pid,
                "tid": 1,
                "args": {
                    k: v for k, v in span.attrs.items() if _jsonable(v)
                } | ({"parent": span.parent} if span.parent else {}),
            }
        )
    return events


def profile_to_events(profile, pid: int = DEVICE_PID) -> list[dict[str, Any]]:
    """The gpusim ``Profile`` timeline, one thread per stream.

    Alloc/free events additionally drive a counter ("C") series named
    ``device memory`` so Perfetto renders the per-device residency curve
    alongside the instant markers.
    """
    events: list[dict[str, Any]] = []
    bytes_in_use = 0
    for ev in profile.events:
        kind = getattr(ev.kind, "value", str(ev.kind))
        tid, _ = _KIND_TRACKS.get(kind, (_OTHER_TRACK, "other"))
        entry: dict[str, Any] = {
            "name": ev.name,
            "cat": kind,
            "ts": ev.start * _SEC_TO_US,
            "pid": pid,
            "tid": tid,
            "args": {"nbytes": ev.nbytes},
        }
        if ev.duration > 0:
            entry["ph"] = "X"
            entry["dur"] = ev.duration * _SEC_TO_US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
        if kind in ("alloc", "free"):
            bytes_in_use += ev.nbytes if kind == "alloc" else -ev.nbytes
            events.append(
                {
                    "name": "device memory",
                    "cat": "memory",
                    "ph": "C",
                    "ts": ev.start * _SEC_TO_US,
                    "pid": pid,
                    "tid": 0,
                    "args": {"bytes_in_use": bytes_in_use},
                }
            )
    return events


def simulated_to_events(
    step_events: Sequence[tuple[str, float]], pid: int = DEVICE_PID
) -> list[dict[str, Any]]:
    """Analytic ``simulate_plan(..., record_events=True)`` step timings.

    The analytic walk is serialized, so step start times are the running
    sum of durations.  Step labels ("h2d X", "exec op", ...) map onto
    the same stream tracks as the numeric profile.
    """
    prefix_tracks = {"h2d": 1, "d2h": 2, "p2p": 3, "exec": 4, "free": 6}
    events: list[dict[str, Any]] = []
    clock = 0.0
    for label, dt in step_events:
        action, _, name = label.partition(" ")
        tid = prefix_tracks.get(action, _OTHER_TRACK)
        entry: dict[str, Any] = {
            "name": name.strip() or label,
            "cat": action,
            "ts": clock * _SEC_TO_US,
            "pid": pid,
            "tid": tid,
            "args": {},
        }
        if dt > 0:
            entry["ph"] = "X"
            entry["dur"] = dt * _SEC_TO_US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
        clock += dt
    return events


def _device_track_meta(pid: int, label: str) -> list[dict[str, Any]]:
    out = [_meta(pid, label)]
    tracks = {tid: name for tid, name in _KIND_TRACKS.values()}
    tracks.setdefault(_OTHER_TRACK, "other")
    for tid, name in sorted(tracks.items()):
        out.append(_meta(pid, name, tid=tid))
    return out


def chrome_trace(
    spans: Iterable[Span] | None = None,
    profile=None,
    simulated_events: Sequence[tuple[str, float]] | None = None,
    metadata: dict[str, Any] | None = None,
    profiles: Sequence[tuple[str, Any]] | None = None,
) -> dict[str, Any]:
    """Assemble a trace-event JSON object from any subset of sources.

    ``profiles`` accepts multiple named timelines — e.g. one per device
    of a multi-GPU run — and lays each out as its own process (pid
    ``DEVICE_PID``, ``DEVICE_PID + 1``, ...) with the standard stream
    tracks, so Perfetto shows the devices as parallel swimlane groups.
    """
    events: list[dict[str, Any]] = []
    if spans is not None:
        spans = list(spans)
        if spans:
            events.append(_meta(COMPILE_PID, "compile (wall clock)"))
            events.append(_meta(COMPILE_PID, "phases", tid=1))
            events.extend(spans_to_events(spans))
    device_events: list[dict[str, Any]] = []
    if profile is not None:
        device_events.extend(profile_to_events(profile))
    if simulated_events is not None:
        device_events.extend(simulated_to_events(simulated_events))
    if device_events:
        events.extend(_device_track_meta(DEVICE_PID, "gpusim (simulated time)"))
        events.extend(device_events)
    if profiles:
        base = DEVICE_PID if not device_events else DEVICE_PID + 1
        for i, (label, prof) in enumerate(profiles):
            pid = base + i
            events.extend(
                _device_track_meta(pid, f"{label} (simulated time)")
            )
            events.extend(profile_to_events(prof, pid=pid))
    # Stable, monotonically ordered timestamps (metadata events first).
    events.sort(key=lambda e: (e["ph"] != "M", e["ts"]))
    trace: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["metadata"] = metadata
    return trace


def write_chrome_trace(path: str, **kwargs: Any) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(**kwargs), fh, indent=1)


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False


__all__ = [
    "COMPILE_PID",
    "DEVICE_PID",
    "chrome_trace",
    "profile_to_events",
    "simulated_to_events",
    "spans_to_events",
    "write_chrome_trace",
]
