"""Self-contained run reports from a :class:`~repro.obs.analyze.RunAnalysis`.

Renders the diagnosis layer's findings — residency curves, idle-gap and
overlap statistics, multi-GPU imbalance, the critical path, and the
transfer-attribution table — as a single Markdown document (the
``repro report`` surface) or a dependency-free HTML page wrapping the
same content.  Byte totals in the attribution table are printed
unrounded so the report is auditable against
``Profile.bytes_transferred()`` exactly.
"""

from __future__ import annotations

from typing import Any

from .analyze import RunAnalysis

#: at most this many points of the occupancy curve are tabulated; longer
#: curves are downsampled evenly (the JSON output keeps every point)
CURVE_POINTS = 32
_TOP_ROWS = 12


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.2f} MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.2f} KiB"
    return f"{int(nbytes)} B"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    out.extend("| " + " | ".join(r) + " |" for r in rows)
    return out


def _downsample(curve: list[tuple[float, int]]) -> list[tuple[float, int]]:
    if len(curve) <= CURVE_POINTS:
        return curve
    step = len(curve) / CURVE_POINTS
    picked = [curve[int(i * step)] for i in range(CURVE_POINTS)]
    if picked[-1] != curve[-1]:
        picked.append(curve[-1])
    return picked


def render_report(analysis: RunAnalysis, fmt: str = "md") -> str:
    """Render a run analysis as ``md`` or ``html``."""
    if fmt == "md":
        return _render_markdown(analysis)
    if fmt == "html":
        return _render_html(analysis)
    raise ValueError(f"unknown report format {fmt!r} (use 'md' or 'html')")


def _render_markdown(analysis: RunAnalysis) -> str:
    lines: list[str] = [f"# Run analysis — {analysis.label or 'unnamed run'}"]
    if analysis.metadata:
        lines.append("")
        for key, value in sorted(analysis.metadata.items()):
            lines.append(f"- **{key}**: {value}")

    # -- summary ------------------------------------------------------------
    lines += ["", "## Summary", ""]
    crit = analysis.critical
    imb = analysis.imbalance
    rows = [
        ["devices", str(analysis.num_devices)],
        ["makespan", _fmt_s(imb.makespan)],
        ["critical device", f"gpu{crit.device} ({crit.dominant}-bound)"],
    ]
    if analysis.attribution is not None:
        rows.append(
            ["host transfer bytes", str(analysis.attribution.host_bytes())]
        )
        if analysis.attribution.peer_bytes():
            rows.append(
                ["peer transfer bytes", str(analysis.attribution.peer_bytes())]
            )
    lines += _table(["metric", "value"], rows)

    # -- residency ----------------------------------------------------------
    lines += ["", "## Residency & device occupancy", ""]
    for dev in analysis.devices:
        res = dev.residency
        lines += [
            f"### gpu{dev.device}",
            "",
            f"- peak occupancy: {res.peak_bytes} bytes "
            f"({_fmt_bytes(res.peak_bytes)})",
            f"- mean occupancy: {_fmt_bytes(res.mean_bytes)} over "
            f"{_fmt_s(res.horizon)}",
            f"- buffer lifetimes: {len(res.intervals)}",
            "",
            "Occupancy curve (simulated seconds, bytes in use):",
            "",
        ]
        curve_rows = [
            [f"{t:.6f}", str(b)] for t, b in _downsample(res.curve)
        ] or [["0.000000", "0"]]
        lines += _table(["t (s)", "bytes"], curve_rows)
        top = sorted(
            res.byte_seconds().items(), key=lambda kv: -kv[1]
        )[:_TOP_ROWS]
        if top:
            lines += ["", "Top buffers by resident byte-seconds:", ""]
            lines += _table(
                ["buffer", "byte-seconds"],
                [[name, f"{bs:.6g}"] for name, bs in top],
            )
        lines.append("")

    # -- idle gaps / overlap -------------------------------------------------
    lines += ["## Idle gaps & overlap", ""]
    gap_rows = []
    for dev in analysis.devices:
        ts = dev.timeline
        gap_rows.append(
            [
                f"gpu{dev.device}",
                _fmt_s(ts.span),
                _fmt_s(ts.busy),
                _fmt_s(ts.idle),
                _fmt_s(ts.largest_gap),
                f"{ts.overlap_efficiency:.2%}",
            ]
        )
    lines += _table(
        ["device", "span", "busy", "idle", "largest gap", "overlap eff."],
        gap_rows,
    )

    # -- imbalance (multi-GPU) ------------------------------------------------
    if analysis.num_devices > 1:
        lines += ["", "## Multi-GPU imbalance", ""]
        lines += _table(
            ["device", "busy", "finish"],
            [
                [f"gpu{i}", _fmt_s(b), _fmt_s(f)]
                for i, (b, f) in enumerate(zip(imb.busy, imb.finish))
            ],
        )
        lines.append(
            f"\nImbalance (max busy / mean busy): {imb.imbalance:.3f}"
        )

    # -- critical path --------------------------------------------------------
    lines += ["", "## Critical path", ""]
    lines.append(
        f"gpu{crit.device} finishes last at {_fmt_s(crit.finish)} "
        f"with {_fmt_s(crit.idle)} idle; time by stream:"
    )
    lines.append("")
    lines += _table(
        ["stream", "seconds"],
        [
            [kind, f"{secs:.6f}"]
            for kind, secs in sorted(
                crit.by_kind.items(), key=lambda kv: -kv[1]
            )
        ]
        or [["none", "0"]],
    )

    # -- transfer attribution -------------------------------------------------
    att = analysis.attribution
    if att is not None:
        lines += ["", "## Transfer attribution", ""]
        lines.append(
            f"Host transfer bytes: **{att.host_bytes()}** "
            f"(must equal the profiles' `bytes_transferred()`); "
            f"peer bytes: {att.peer_bytes()}."
        )
        lines += ["", "Per buffer (host transfers only):", ""]
        lines += _table(
            ["buffer", "bytes"],
            [
                [name, str(b)]
                for name, b in sorted(
                    att.by_buffer().items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            or [["(none)", "0"]],
        )
        lines += ["", "Per reason class:", ""]
        lines += _table(
            ["reason", "bytes"],
            [
                [name, str(b)]
                for name, b in sorted(
                    att.by_reason().items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            or [["(none)", "0"]],
        )
        lines += ["", "Per operator (top):", ""]
        op_rows = sorted(
            att.by_operator().items(), key=lambda kv: (-kv[1], kv[0])
        )[:_TOP_ROWS]
        lines += _table(
            ["operator", "bytes"],
            [[name, str(b)] for name, b in op_rows] or [["(none)", "0"]],
        )
        lines += ["", "Every transfer (step, device, cause):", ""]
        lines += _table(
            ["step", "device", "dir", "buffer", "bytes", "operator", "reason"],
            [
                [
                    str(r.step_index),
                    f"gpu{r.device}",
                    r.direction,
                    r.buffer,
                    str(r.nbytes),
                    r.operator or "-",
                    r.reason.replace("|", "\\|"),
                ]
                for r in att.records
            ]
            or [["-"] * 7],
        )
    lines.append("")
    return "\n".join(lines)


_HTML_SHELL = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: ui-monospace, monospace; max-width: 72rem;
       margin: 2rem auto; padding: 0 1rem; color: #1a1a1a; }}
pre {{ background: #f6f6f4; padding: 1rem; overflow-x: auto;
      border-radius: 6px; }}
</style>
</head>
<body>
<pre>
{body}
</pre>
</body>
</html>
"""


def _render_html(analysis: RunAnalysis) -> str:
    """Self-contained HTML wrapper around the Markdown rendering."""
    md = _render_markdown(analysis)
    escaped = (
        md.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return _HTML_SHELL.format(
        title=f"Run analysis — {analysis.label or 'unnamed run'}",
        body=escaped,
    )


def report_to_dict(analysis: RunAnalysis) -> dict[str, Any]:
    """The ``repro report --format json`` body."""
    return analysis.to_dict()


# ---------------------------------------------------------------------------
# Shard post-mortems (repro postmortem --format md)
# ---------------------------------------------------------------------------
def render_postmortem(pm: dict[str, Any], fmt: str = "md") -> str:
    """Render one :func:`repro.obs.flight.build_postmortem` dict.

    ``md`` is the report surface; ``html`` wraps the same content in the
    dependency-free shell used by run reports.
    """
    if fmt == "md":
        return _render_postmortem_markdown(pm)
    if fmt == "html":
        md = _render_postmortem_markdown(pm)
        escaped = (
            md.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        return _HTML_SHELL.format(
            title=f"Post-mortem — {pm.get('shard') or 'shard'}",
            body=escaped,
        )
    raise ValueError(f"unknown report format {fmt!r} (use 'md' or 'html')")


def _render_postmortem_markdown(pm: dict[str, Any]) -> str:
    shard = pm.get("shard") or "shard"
    lines: list[str] = [f"# Post-mortem — {shard}", ""]
    rows = [
        ["exit", str(pm.get("exit_detail", "unknown"))],
        ["clean shutdown", "yes" if pm.get("clean_shutdown") else "no"],
        ["journal records", str(pm.get("records", 0))],
        ["in-flight at death", str(len(pm.get("in_flight", [])))],
        ["active alerts at death", str(len(pm.get("alerts_active", [])))],
    ]
    if pm.get("journal_dir"):
        rows.append(["journal", str(pm["journal_dir"])])
    lines += _table(["field", "value"], rows)

    warnings = pm.get("warnings", [])
    if warnings:
        lines += ["", "## Journal warnings", ""]
        lines += [f"- {w}" for w in warnings]

    in_flight = pm.get("in_flight", [])
    if in_flight:
        lines += ["", "## In-flight requests", ""]
        lines += _table(
            ["request", "last event"],
            [
                [str(e.get("request_id")), str(e.get("last_kind", "?"))]
                for e in in_flight
            ],
        )

    window = pm.get("window") or {}
    lines += ["", "## Final window", ""]
    lines += _table(
        ["metric", "value"],
        [
            ["window", f"{window.get('window_seconds', 0):g} s"],
            ["completed", str(window.get("count", 0))],
            ["ok", str(window.get("ok", 0))],
            ["failed", str(window.get("failed", 0))],
            ["p50", _fmt_s(float(window.get("p50", 0.0)))],
            ["p95", _fmt_s(float(window.get("p95", 0.0)))],
            ["p99", _fmt_s(float(window.get("p99", 0.0)))],
        ],
    )

    alerts = pm.get("alerts_active", [])
    if alerts:
        lines += ["", "## Alerts firing at death", ""]
        lines += _table(
            ["rule", "detail"],
            [
                [
                    str(a.get("rule", "?")),
                    str(a.get("description", ""))
                    or str(a.get("rule_kind", "")),
                ]
                for a in alerts
            ],
        )

    timeline = pm.get("timeline", [])
    lines += ["", "## Final timeline", ""]
    if timeline:
        epoch = timeline[0].get("ts", 0.0)
        lines += _table(
            ["t (s)", "seq", "kind", "request", "fields"],
            [
                [
                    f"+{max(e.get('ts', 0.0) - epoch, 0.0):.3f}",
                    str(e.get("seq", "")),
                    str(e.get("kind", "")),
                    str(e.get("request_id", "") or "-"),
                    ", ".join(
                        f"{k}={v}"
                        for k, v in sorted((e.get("fields") or {}).items())
                    ).replace("|", "\\|") or "-",
                ]
                for e in timeline
            ],
        )
    else:
        lines.append("(no events recovered)")
    lines.append("")
    return "\n".join(lines)


__all__ = [
    "CURVE_POINTS",
    "render_postmortem",
    "render_report",
    "report_to_dict",
]
