"""Observability: tracing, metrics, trace export, and plan provenance.

The paper's whole evaluation rests on profiler evidence; ``repro.obs``
makes the reproduction equally measurable end to end:

* :mod:`repro.obs.trace` — structured wall-clock spans for every
  compilation phase;
* :mod:`repro.obs.metrics` — counters / gauges / histograms populated
  by the simulated runtime, the allocator, and the executor;
* :mod:`repro.obs.chrometrace` — Chrome trace-event / Perfetto JSON
  export of compile spans and the simulated device timeline;
* :mod:`repro.obs.provenance` — per-step reasons on execution plans,
  surfaced by ``repro explain``.

This package sits at the bottom of the import graph: it never imports
``repro.core`` / ``repro.gpusim`` so every layer above can use it.
"""

from .chrometrace import (
    chrome_trace,
    profile_to_events,
    simulated_to_events,
    spans_to_events,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .provenance import (
    StepExplanation,
    explain_plan,
    explain_to_dicts,
    provenance_summary,
    render_explain,
)
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StepExplanation",
    "Tracer",
    "chrome_trace",
    "explain_plan",
    "explain_to_dicts",
    "profile_to_events",
    "provenance_summary",
    "render_explain",
    "simulated_to_events",
    "spans_to_events",
    "write_chrome_trace",
]
