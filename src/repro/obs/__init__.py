"""Observability: tracing, metrics, trace export, and plan provenance.

The paper's whole evaluation rests on profiler evidence; ``repro.obs``
makes the reproduction equally measurable end to end:

* :mod:`repro.obs.trace` — structured wall-clock spans for every
  compilation phase;
* :mod:`repro.obs.metrics` — counters / gauges / histograms populated
  by the simulated runtime, the allocator, and the executor;
* :mod:`repro.obs.chrometrace` — Chrome trace-event / Perfetto JSON
  export of compile spans and the simulated device timeline;
* :mod:`repro.obs.provenance` — per-step reasons on execution plans,
  surfaced by ``repro explain``;
* :mod:`repro.obs.analyze` — the diagnosis layer: residency timelines,
  occupancy curves, idle-gap/overlap/critical-path analysis, multi-GPU
  imbalance, and byte-exact transfer attribution;
* :mod:`repro.obs.report` — self-contained Markdown/HTML rendering of a
  run analysis (``repro report``);
* :mod:`repro.obs.bench` — versioned benchmark-result schema, recorder,
  and the regression comparator behind ``repro bench-compare``;
* :mod:`repro.obs.live` — the push-based live telemetry plane: the
  request-correlated event bus, sliding-window/SLO aggregation, alert
  rules, the Prometheus text exporter, and the HTTP status endpoint;
* :mod:`repro.obs.flight` — the crash-safe flight recorder: a
  CRC-framed, segmented on-disk journal of the event bus, plus the
  post-mortem synthesis behind ``repro postmortem``.

This package sits at the bottom of the import graph: it never imports
``repro.core`` / ``repro.gpusim`` so every layer above can use it.
"""

from .analyze import (
    RunAnalysis,
    TransferAttribution,
    TransferRecord,
    analyze_run,
    attribute_transfers,
    critical_path,
    imbalance_stats,
    residency_timelines,
    timeline_stats,
)
from .bench import (
    BenchComparison,
    BenchRecorder,
    BenchResult,
    compare_dirs,
    compare_results,
    load_bench,
    render_comparisons,
    validate_bench_dict,
)
from .chrometrace import (
    chrome_trace,
    profile_to_events,
    simulated_to_events,
    spans_to_events,
    write_chrome_trace,
)
from .flight import (
    FlightRecorder,
    build_postmortem,
    harvest_postmortem,
    read_journal,
)
from .live import (
    AlertEngine,
    AlertRule,
    EventLog,
    SlidingWindow,
    SloObjective,
    SloTracker,
    StatusServer,
    TelemetryEvent,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .provenance import (
    StepExplanation,
    explain_plan,
    explain_to_dicts,
    provenance_summary,
    render_explain,
)
from .report import render_postmortem, render_report, report_to_dict
from .trace import Span, Tracer

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BenchComparison",
    "BenchRecorder",
    "BenchResult",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunAnalysis",
    "SlidingWindow",
    "SloObjective",
    "SloTracker",
    "Span",
    "StatusServer",
    "StepExplanation",
    "TelemetryEvent",
    "Tracer",
    "TransferAttribution",
    "TransferRecord",
    "analyze_run",
    "attribute_transfers",
    "build_postmortem",
    "chrome_trace",
    "compare_dirs",
    "compare_results",
    "critical_path",
    "explain_plan",
    "explain_to_dicts",
    "harvest_postmortem",
    "imbalance_stats",
    "load_bench",
    "profile_to_events",
    "provenance_summary",
    "read_journal",
    "render_comparisons",
    "render_explain",
    "render_postmortem",
    "render_report",
    "report_to_dict",
    "residency_timelines",
    "simulated_to_events",
    "spans_to_events",
    "timeline_stats",
    "validate_bench_dict",
    "write_chrome_trace",
]
