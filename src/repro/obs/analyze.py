"""Run analysis: structured findings from recorded telemetry.

The paper's evaluation is entirely profiler-driven — transfer volumes
(Table 1), timeline breakdowns (Figure 2), schedule impact (Figure 3).
This module is the diagnosis layer that turns the raw telemetry the
rest of ``repro.obs`` records (a :class:`~repro.gpusim.Profile` per
device, plan provenance notes) into the findings those figures are made
of:

* **residency timelines** — per-buffer alloc..free intervals and the
  device-memory occupancy step curve derived from alloc/free events;
* **idle-gap / overlap analysis** — span vs. busy (union) vs.
  serialized (sum) time of the event timeline, the gaps in between,
  and how much transfer time is hidden under compute;
* **critical path** — which device finishes last and what its time is
  spent on;
* **imbalance** — per-device busy/finish times for multi-GPU runs;
* **transfer attribution** — every H2D/D2H/P2P byte blamed on the
  (operator, buffer, provenance reason) that caused it, by joining the
  plan's transfer steps with the recorded transfer events per device.

Like the rest of the package, this module never imports ``repro.core``
or ``repro.gpusim``: profiles are consumed through the ``events`` /
``kind.value`` duck-type and plans through ``str(step)`` + ``notes`` +
``device_of`` — so the observability layer stays at the bottom of the
import graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

# Event-kind strings (mirrors repro.gpusim.profiler.EventKind values).
H2D = "memcpy_h2d"
D2H = "memcpy_d2h"
P2P = "memcpy_p2p"
KERNEL = "kernel"
HOST = "host"
ALLOC = "alloc"
FREE = "free"

_TRANSFER_KINDS = (H2D, D2H)
_STEP_DIRECTIONS = {"h2d": H2D, "d2h": D2H}

#: provenance note shapes that name the operator a transfer feeds
_OP_PATTERNS = (
    re.compile(r"input of (\S+) \(launch \d+\)"),
    re.compile(r"stage: (\S+) \(launch \d+\)"),
)
_P2P_ROUTE = re.compile(r"gpu(\d+)->gpu(\d+)")


def _kind(event) -> str:
    return getattr(event.kind, "value", str(event.kind))


def _durations(profile):
    """Events with positive duration (the busy timeline)."""
    return [e for e in profile.events if e.duration > 0]


# ---------------------------------------------------------------------------
# Residency timelines & occupancy curves
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ResidencyInterval:
    """One alloc..free lifetime of a device buffer."""

    buffer: str
    start: float
    end: float | None  # None: still allocated at the end of the run
    nbytes: int

    def length(self, horizon: float) -> float:
        return (horizon if self.end is None else self.end) - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "buffer": self.buffer,
            "start": self.start,
            "end": self.end,
            "nbytes": self.nbytes,
        }


@dataclass
class ResidencySummary:
    """Per-buffer lifetimes plus the device occupancy curve they induce."""

    intervals: list[ResidencyInterval]
    #: step curve: (time, bytes in use *after* the alloc/free at `time`)
    curve: list[tuple[float, int]]
    peak_bytes: int
    mean_bytes: float  # time-weighted over the run
    horizon: float

    def byte_seconds(self) -> dict[str, float]:
        """Resident bytes x seconds per buffer (who occupies the device)."""
        out: dict[str, float] = {}
        for iv in self.intervals:
            out[iv.buffer] = out.get(iv.buffer, 0.0) + (
                iv.nbytes * iv.length(self.horizon)
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "peak_bytes": self.peak_bytes,
            "mean_bytes": self.mean_bytes,
            "horizon": self.horizon,
            "curve": [[t, b] for t, b in self.curve],
            "intervals": [iv.to_dict() for iv in self.intervals],
        }


def residency_timelines(profile) -> ResidencySummary:
    """Buffer lifetimes and the occupancy step curve from alloc/free events.

    Buffers allocated more than once (evicted then re-uploaded) produce
    one interval per lifetime.  Buffers never freed stay open
    (``end=None``) and are charged to the run horizon.
    """
    horizon = profile.total_time()
    open_at: dict[str, tuple[float, int]] = {}
    intervals: list[ResidencyInterval] = []
    curve: list[tuple[float, int]] = []
    in_use = 0
    peak = 0
    # time-weighted mean: integrate the step curve
    area = 0.0
    last_t = 0.0
    for ev in profile.events:
        kind = _kind(ev)
        if kind not in (ALLOC, FREE):
            continue
        area += in_use * (ev.start - last_t)
        last_t = ev.start
        if kind == ALLOC:
            open_at[ev.name] = (ev.start, ev.nbytes)
            in_use += ev.nbytes
        else:
            start, nbytes = open_at.pop(ev.name, (ev.start, ev.nbytes))
            intervals.append(
                ResidencyInterval(ev.name, start, ev.start, nbytes)
            )
            in_use -= nbytes
        peak = max(peak, in_use)
        if curve and curve[-1][0] == ev.start:
            curve[-1] = (ev.start, in_use)
        else:
            curve.append((ev.start, in_use))
    area += in_use * (horizon - last_t)
    for name, (start, nbytes) in sorted(open_at.items()):
        intervals.append(ResidencyInterval(name, start, None, nbytes))
    intervals.sort(key=lambda iv: (iv.start, iv.buffer))
    mean = area / horizon if horizon > 0 else 0.0
    return ResidencySummary(
        intervals=intervals,
        curve=curve,
        peak_bytes=peak,
        mean_bytes=mean,
        horizon=horizon,
    )


# ---------------------------------------------------------------------------
# Idle gaps / overlap efficiency
# ---------------------------------------------------------------------------
@dataclass
class TimelineStats:
    """How one device's timeline spends (and wastes) its span."""

    span: float  # first start .. last end
    busy: float  # union of event intervals
    idle: float  # span - busy
    serialized: float  # sum of event durations
    overlap: float  # serialized - busy (time >= 2 streams were active)
    overlap_efficiency: float  # overlap / min(transfer, compute), in [0, 1]
    largest_gap: float
    gaps: list[tuple[float, float]]
    by_kind: dict[str, float]  # serialized seconds per event kind

    def to_dict(self) -> dict[str, Any]:
        return {
            "span": self.span,
            "busy": self.busy,
            "idle": self.idle,
            "serialized": self.serialized,
            "overlap": self.overlap,
            "overlap_efficiency": self.overlap_efficiency,
            "largest_gap": self.largest_gap,
            "gaps": [[a, b] for a, b in self.gaps],
            "by_kind": dict(self.by_kind),
        }


def timeline_stats(profile) -> TimelineStats:
    """Idle-gap and overlap analysis of one profile's busy timeline."""
    events = _durations(profile)
    by_kind: dict[str, float] = {}
    for e in events:
        k = _kind(e)
        by_kind[k] = by_kind.get(k, 0.0) + e.duration
    if not events:
        return TimelineStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, [], by_kind)
    intervals = sorted((e.start, e.end) for e in events)
    first, last = intervals[0][0], max(end for _, end in intervals)
    span = last - first
    busy = 0.0
    gaps: list[tuple[float, float]] = []
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            gaps.append((cur_end, start))
            busy += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    busy += cur_end - cur_start
    serialized = sum(e.duration for e in events)
    overlap = serialized - busy
    transfer = sum(by_kind.get(k, 0.0) for k in (H2D, D2H, P2P))
    compute = by_kind.get(KERNEL, 0.0)
    potential = min(transfer, compute)
    efficiency = min(1.0, overlap / potential) if potential > 0 else 0.0
    gaps.sort(key=lambda g: g[0] - g[1])  # largest first
    return TimelineStats(
        span=span,
        busy=busy,
        idle=span - busy,
        serialized=serialized,
        overlap=overlap,
        overlap_efficiency=efficiency,
        largest_gap=max((b - a for a, b in gaps), default=0.0),
        gaps=gaps[:10],
        by_kind=by_kind,
    )


# ---------------------------------------------------------------------------
# Critical path & multi-device imbalance
# ---------------------------------------------------------------------------
@dataclass
class CriticalPath:
    """The device chain that determines the makespan."""

    device: int
    finish: float
    by_kind: dict[str, float]
    idle: float
    dominant: str  # event kind the critical device spends most time in

    def to_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "finish": self.finish,
            "by_kind": dict(self.by_kind),
            "idle": self.idle,
            "dominant": self.dominant,
        }


def critical_path(profiles: Sequence) -> CriticalPath:
    """Blame the makespan on the last-finishing device's timeline."""
    finishes = [p.total_time() for p in profiles]
    dev = max(range(len(profiles)), key=lambda i: finishes[i]) if profiles else 0
    stats = timeline_stats(profiles[dev]) if profiles else None
    by_kind = stats.by_kind if stats else {}
    dominant = max(by_kind, key=by_kind.get) if by_kind else "none"
    return CriticalPath(
        device=dev,
        finish=finishes[dev] if profiles else 0.0,
        by_kind=by_kind,
        idle=stats.idle if stats else 0.0,
        dominant=dominant,
    )


@dataclass
class ImbalanceStats:
    """Per-device load spread for a multi-GPU run."""

    busy: list[float]
    finish: list[float]
    makespan: float
    imbalance: float  # max busy / mean busy; 1.0 = perfectly balanced

    def to_dict(self) -> dict[str, Any]:
        return {
            "busy": list(self.busy),
            "finish": list(self.finish),
            "makespan": self.makespan,
            "imbalance": self.imbalance,
        }


def imbalance_stats(profiles: Sequence) -> ImbalanceStats:
    busy = [timeline_stats(p).busy for p in profiles]
    finish = [p.total_time() for p in profiles]
    mean = sum(busy) / len(busy) if busy else 0.0
    return ImbalanceStats(
        busy=busy,
        finish=finish,
        makespan=max(finish, default=0.0),
        imbalance=max(busy) / mean if mean > 0 else 1.0,
    )


# ---------------------------------------------------------------------------
# Transfer attribution
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TransferRecord:
    """One transfer's bytes, blamed on the step that caused it."""

    step_index: int
    device: int
    direction: str  # "h2d" | "d2h" | "p2p"
    buffer: str
    nbytes: int
    operator: str | None  # consuming operator, when provenance names one
    reason_class: str  # "upload", "evicted", "output save", ...
    reason: str
    peer_src: int | None = None  # p2p only
    peer_dst: int | None = None  # p2p only

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "step_index": self.step_index,
            "device": self.device,
            "direction": self.direction,
            "buffer": self.buffer,
            "nbytes": self.nbytes,
            "operator": self.operator,
            "reason_class": self.reason_class,
            "reason": self.reason,
        }
        if self.direction == "p2p":
            out["peer_src"] = self.peer_src
            out["peer_dst"] = self.peer_dst
        return out


@dataclass
class TransferAttribution:
    """Every moved byte with its cause; sums match the profiles exactly."""

    records: list[TransferRecord]

    def host_bytes(self) -> int:
        """H2D + D2H bytes — must equal ``Profile.bytes_transferred()``."""
        return sum(r.nbytes for r in self.records if r.direction != "p2p")

    def peer_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.direction == "p2p")

    def by_buffer(self) -> dict[str, int]:
        """Host-transfer bytes per buffer (peer copies excluded)."""
        out: dict[str, int] = {}
        for r in self.records:
            if r.direction == "p2p":
                continue
            out[r.buffer] = out.get(r.buffer, 0) + r.nbytes
        return out

    def by_operator(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            key = r.operator or "(none)"
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.reason_class] = out.get(r.reason_class, 0) + r.nbytes
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "host_bytes": self.host_bytes(),
            "peer_bytes": self.peer_bytes(),
            "by_buffer": self.by_buffer(),
            "by_operator": self.by_operator(),
            "by_reason": self.by_reason(),
            "records": [r.to_dict() for r in self.records],
        }


def _parse_operator(note: str) -> str | None:
    for pat in _OP_PATTERNS:
        m = pat.search(note)
        if m:
            return m.group(1)
    return None


def _reason_class(note: str) -> str:
    return note.split(":", 1)[0].strip() if note else "unknown"


def attribute_transfers(
    plan,
    profiles: Sequence | None = None,
    graph=None,
) -> TransferAttribution:
    """Blame every transferred byte on its plan step.

    With ``profiles`` (one :class:`Profile` per device, in device order)
    the bytes come from the recorded events: the executor walks the plan
    in order, so each device's H2D/D2H events align 1:1 — in order, per
    direction — with that device's transfer steps.  A mismatch (profile
    from a different plan) raises ``ValueError`` rather than guessing.

    Without profiles, ``graph`` supplies analytic sizes
    (``graph.data[name].size`` floats, 4 bytes each).

    ``PeerCopy`` steps are attributed from the destination device's
    incoming P2P events (each peer copy records an event on both
    endpoints; counting one side keeps byte totals physical).
    """
    if profiles is None and graph is None:
        raise ValueError("attribute_transfers needs profiles or a graph")
    notes = list(getattr(plan, "notes", None) or [])
    ndev = plan.num_devices

    # Per-device transfer steps, split by direction.
    step_queues: list[dict[str, list[tuple[int, str, str]]]] = [
        {H2D: [], D2H: [], P2P: []} for _ in range(ndev)
    ]
    for i, step in enumerate(plan.steps):
        text = str(step)
        action = text.split(None, 1)[0] if text else ""
        note = notes[i] if i < len(notes) else ""
        dev = plan.device_of(i)
        if action in _STEP_DIRECTIONS:
            step_queues[dev][_STEP_DIRECTIONS[action]].append((i, text, note))
        elif action == "p2p":
            # PeerCopy steps are device-tagged with their destination.
            step_queues[dev][P2P].append((i, text, note))

    # Matching event queues, when profiles are given.
    event_queues: list[dict[str, list]] | None = None
    if profiles is not None:
        if len(profiles) < ndev:
            raise ValueError(
                f"plan uses {ndev} devices but only "
                f"{len(profiles)} profiles were given"
            )
        event_queues = [{H2D: [], D2H: [], P2P: []} for _ in range(ndev)]
        for dev, prof in enumerate(profiles[:ndev]):
            for e in prof.events:
                kind = _kind(e)
                if kind in _TRANSFER_KINDS:
                    event_queues[dev][kind].append(e)
                elif kind == P2P and "<-" in e.name:
                    event_queues[dev][P2P].append(e)  # incoming side only

    records: list[TransferRecord] = []
    for dev in range(ndev):
        for kind, steps in step_queues[dev].items():
            events = event_queues[dev][kind] if event_queues else None
            if events is not None and len(events) != len(steps):
                raise ValueError(
                    f"device {dev}: plan has {len(steps)} {kind} steps but "
                    f"profile recorded {len(events)} events — profile does "
                    "not correspond to this plan"
                )
            for j, (i, text, note) in enumerate(steps):
                parts = text.split()
                buffer = parts[1] if len(parts) > 1 else text
                src = dst = None
                if kind == P2P:
                    m = _P2P_ROUTE.search(text)
                    if m:
                        src, dst = int(m.group(1)), int(m.group(2))
                if events is not None:
                    ev = events[j]
                    if not ev.name.startswith(buffer):
                        raise ValueError(
                            f"device {dev}: step {i} moves {buffer!r} but "
                            f"the matching event is {ev.name!r}"
                        )
                    nbytes = ev.nbytes
                else:
                    nbytes = graph.data[buffer].size * 4
                direction = {H2D: "h2d", D2H: "d2h", P2P: "p2p"}[kind]
                records.append(
                    TransferRecord(
                        step_index=i,
                        device=dev,
                        direction=direction,
                        buffer=buffer,
                        nbytes=nbytes,
                        operator=_parse_operator(note),
                        reason_class=_reason_class(note),
                        reason=note or "(no provenance recorded)",
                        peer_src=src,
                        peer_dst=dst,
                    )
                )
    records.sort(key=lambda r: r.step_index)
    return TransferAttribution(records=records)


# ---------------------------------------------------------------------------
# Whole-run analysis
# ---------------------------------------------------------------------------
@dataclass
class DeviceAnalysis:
    """One device's residency + timeline findings."""

    device: int
    residency: ResidencySummary
    timeline: TimelineStats

    def to_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "residency": self.residency.to_dict(),
            "timeline": self.timeline.to_dict(),
        }


@dataclass
class RunAnalysis:
    """Every finding ``repro report`` renders, in one machine-readable bag."""

    label: str
    num_devices: int
    devices: list[DeviceAnalysis]
    imbalance: ImbalanceStats
    critical: CriticalPath
    attribution: TransferAttribution | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "num_devices": self.num_devices,
            "metadata": dict(self.metadata),
            "devices": [d.to_dict() for d in self.devices],
            "imbalance": self.imbalance.to_dict(),
            "critical_path": self.critical.to_dict(),
            "attribution": (
                self.attribution.to_dict() if self.attribution else None
            ),
        }


def analyze_run(
    profiles: Sequence,
    plan=None,
    graph=None,
    label: str = "",
    metadata: dict[str, Any] | None = None,
) -> RunAnalysis:
    """Analyze one run: per-device findings plus cross-device diagnosis.

    ``profiles`` is one :class:`Profile` per device (a single-element
    sequence for single-GPU runs).  ``plan`` enables transfer
    attribution; without it the attribution section is ``None``.
    """
    profiles = list(profiles)
    devices = [
        DeviceAnalysis(
            device=i,
            residency=residency_timelines(p),
            timeline=timeline_stats(p),
        )
        for i, p in enumerate(profiles)
    ]
    attribution = (
        attribute_transfers(plan, profiles=profiles, graph=graph)
        if plan is not None
        else None
    )
    return RunAnalysis(
        label=label,
        num_devices=len(profiles),
        devices=devices,
        imbalance=imbalance_stats(profiles),
        critical=critical_path(profiles),
        attribution=attribution,
        metadata=metadata or {},
    )


__all__ = [
    "CriticalPath",
    "DeviceAnalysis",
    "ImbalanceStats",
    "ResidencyInterval",
    "ResidencySummary",
    "RunAnalysis",
    "TimelineStats",
    "TransferAttribution",
    "TransferRecord",
    "analyze_run",
    "attribute_transfers",
    "critical_path",
    "imbalance_stats",
    "residency_timelines",
    "timeline_stats",
]
