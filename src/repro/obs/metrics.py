"""Metrics registry: counters, gauges, and histograms.

A process-local, dependency-free take on the usual metrics trio, sized
for the simulator: `SimRuntime` counts bytes moved per direction and
thrashing episodes, :class:`~repro.gpusim.DeviceAllocator` tracks peak
usage and fragmentation, the transfer scheduler counts evictions by
reason, and the executor snapshots everything into
:class:`~repro.runtime.ExecutionResult`.  Snapshots are plain nested
dicts so they serialize with ``json.dumps`` unmodified (the CLI's
``--json`` output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """Monotonically increasing count (events, bytes, moves)."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value, with the historical peak kept alongside."""

    value: float = 0
    peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)


@dataclass
class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean/percentiles).

    Percentiles come from a bounded sample reservoir: all observations
    are kept up to :data:`MAX_SAMPLES`, after which the reservoir is
    deterministically decimated (every 2nd sample dropped, stride
    doubled) so memory stays bounded while quantiles remain exact for
    the simulator's typical populations and approximate beyond.
    """

    MAX_SAMPLES = 4096

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    _samples: list[float] = field(default_factory=list, repr=False)
    _stride: int = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.MAX_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the sampled observations, p in [0, 100].

        Raises :class:`ValueError` on an empty histogram — a fabricated
        0.0 latency is worse than a loud error.  The extremes come from
        the exactly-tracked ``min``/``max``, not the reservoir, so
        ``percentile(100)`` equals the observed maximum even after
        reservoir decimation has dropped the extreme samples.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            raise ValueError("percentile of an empty histogram")
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        ordered = sorted(self._samples)
        rank = math.ceil(p / 100 * len(ordered))
        return ordered[rank - 1]

    def to_dict(self) -> dict[str, float]:
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass
class MetricsRegistry:
    """Named metrics, created lazily on first touch.

    Names are dotted paths (``gpu.bytes_h2d``, ``plan.evictions``); the
    snapshot groups them by family so downstream consumers need no
    schema knowledge.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram())

    #: gauge-name suffixes merged by maximum instead of last-write-wins
    PEAK_GAUGE_SUFFIXES = ("_peak", ".peak")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add and histograms combine — both order-independent.
        Gauges are last-write-wins by definition, which *is* order
        dependent: merging per-request registries in completion order
        would leave an arbitrary request's value behind.  Two rules keep
        merged snapshots truthful:

        * every gauge's ``peak`` field takes the max of both peaks;
        * a gauge whose *name* marks it as a high-water mark (ending in
          ``_peak`` or ``.peak``) takes the **max of both values**, so
          the merged value is the fleet-wide peak no matter which
          registry merged first.  Other gauges keep the other
          registry's last value (the newest observation wins).
        """
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            gauge = self.gauge(name)
            if name.endswith(self.PEAK_GAUGE_SUFFIXES):
                gauge.set(max(gauge.value, g.value))
            else:
                gauge.set(g.value)
            gauge.peak = max(gauge.peak, g.peak)
        for name, h in other.histograms.items():
            mine = self.histogram(name)
            if h.count:
                mine.count += h.count
                mine.total += h.total
                mine.min = min(mine.min, h.min)
                mine.max = max(mine.max, h.max)
                mine._samples.extend(h._samples)
                mine._stride = max(mine._stride, h._stride)
                while len(mine._samples) > Histogram.MAX_SAMPLES:
                    mine._samples = mine._samples[::2]
                    mine._stride *= 2

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready nested dict of every metric's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "peak": g.peak}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
        }


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
