"""Plan provenance: machine-readable reasons for every plan step.

The transfer scheduler (and the eviction policy inside it) annotates
each ``CopyToGPU`` / ``CopyToCPU`` / ``Free`` step with the reason it
exists — "evicted: policy=belady, next use of X at step 41", "d2h
skipped: host copy valid" — carried on ``ExecutionPlan.notes`` parallel
to ``ExecutionPlan.steps``.  This module turns those annotations into
the ``repro explain`` surface: structured records, an aligned text
rendering, and JSON.

Plans produced without provenance (baseline plans, deserialized legacy
plans, PB-optimal plans) still explain: a generic reason is derived
from the step itself so the rendering never has holes.

This module deliberately does not import :mod:`repro.core` — plan steps
are consumed through their ``str()`` form — so the observability layer
sits below every other package in the import graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

_DEFAULT_REASONS = {
    "h2d": "upload (no provenance recorded)",
    "d2h": "download (no provenance recorded)",
    "exec": "launch (no provenance recorded)",
    "free": "free (no provenance recorded)",
}

_P2P_ROUTE = re.compile(r"gpu(\d+)->gpu(\d+)")


@dataclass(frozen=True)
class StepExplanation:
    """One plan step with its provenance.

    ``device`` is the executing device for steps of a device-tagged
    (multi-GPU) plan, ``None`` on single-device plans.  ``PeerCopy``
    steps additionally carry their route as ``peer_src``/``peer_dst``
    (the plan tags them with the *destination* device).
    """

    index: int
    step: str
    reason: str
    device: int | None = None
    peer_src: int | None = None
    peer_dst: int | None = None
    stream: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "index": self.index,
            "step": self.step,
            "reason": self.reason,
        }
        if self.stream is not None:
            out["stream"] = self.stream
        if self.device is not None:
            out["device"] = self.device
        if self.peer_src is not None:
            out["peer_src"] = self.peer_src
            out["peer_dst"] = self.peer_dst
        return out


def explain_plan(plan, streams=None) -> list[StepExplanation]:
    """Pair every plan step with its recorded (or derived) reason.

    ``streams`` is an optional parallel list of stream labels — the
    event engine's static assignment (see
    :func:`repro.runtime.plan_streams`).  It is passed in rather than
    computed here so this module keeps its position at the bottom of
    the import graph.
    """
    notes = list(getattr(plan, "notes", None) or [])
    devices = list(getattr(plan, "devices", None) or [])
    streams = list(streams or [])
    out: list[StepExplanation] = []
    for i, step in enumerate(plan.steps):
        text = str(step)
        action = text.split(None, 1)[0] if text else ""
        src = dst = None
        if action == "p2p":
            m = _P2P_ROUTE.search(text)
            if m:
                src, dst = int(m.group(1)), int(m.group(2))
        if i < len(notes) and notes[i]:
            reason = notes[i]
        elif action == "p2p":
            route = f"gpu{src}->gpu{dst}" if src is not None else "peer"
            reason = f"peer copy {route} (no provenance recorded)"
        else:
            reason = _DEFAULT_REASONS.get(action, "(no provenance recorded)")
        out.append(
            StepExplanation(
                index=i,
                step=text,
                reason=reason,
                device=devices[i] if i < len(devices) else None,
                peer_src=src,
                peer_dst=dst,
                stream=streams[i] if i < len(streams) else None,
            )
        )
    return out


def render_explain(plan, streams=None) -> str:
    """Human-readable ``repro explain`` table.

    Device-tagged plans get a ``dev`` column; ``PeerCopy`` rows show
    their source->destination route in the step text itself.  When
    ``streams`` is given (the event engine's per-step assignment) a
    ``stream`` column shows which engine each step fires on.
    """
    rows = explain_plan(plan, streams)
    if not rows:
        return "(empty plan)"
    step_w = max(len(r.step) for r in rows)
    idx_w = len(str(rows[-1].index))
    with_streams = any(r.stream is not None for r in rows)
    strm_w = 0
    if with_streams:
        strm_w = max(len("stream"), max(len(r.stream or "") for r in rows))

    def strm(r: StepExplanation) -> str:
        if not with_streams:
            return ""
        return f"{(r.stream or ''):{strm_w}s}  "

    strm_hdr = f"{'stream':{strm_w}s}  " if with_streams else ""
    with_devices = any(r.device is not None for r in rows)
    if with_devices:
        dev_w = max(len(f"gpu{r.device}") for r in rows if r.device is not None)
        lines = [
            f"{'#':>{idx_w}s}  {'dev':{dev_w}s}  {strm_hdr}"
            f"{'step':{step_w}s}  reason",
            "-" * (idx_w + dev_w + strm_w + step_w + 32),
        ]
        for r in rows:
            dev = f"gpu{r.device}" if r.device is not None else ""
            lines.append(
                f"{r.index:>{idx_w}d}  {dev:{dev_w}s}  {strm(r)}"
                f"{r.step:{step_w}s}  {r.reason}"
            )
        return "\n".join(lines)
    lines = [
        f"{'#':>{idx_w}s}  {strm_hdr}{'step':{step_w}s}  reason",
        "-" * (idx_w + strm_w + step_w + 30),
    ]
    for r in rows:
        lines.append(
            f"{r.index:>{idx_w}d}  {strm(r)}{r.step:{step_w}s}  {r.reason}"
        )
    return "\n".join(lines)


def explain_to_dicts(plan, streams=None) -> list[dict[str, Any]]:
    """JSON-ready provenance records (the ``repro explain --json`` body)."""
    return [r.to_dict() for r in explain_plan(plan, streams)]


def provenance_summary(plan) -> dict[str, int]:
    """Tally of provenance reason classes (the part before the first ':').

    Gives the metrics layer its "evictions by policy reason" counters
    without re-parsing free text downstream.
    """
    out: dict[str, int] = {}
    for note in getattr(plan, "notes", None) or []:
        key = note.split(":", 1)[0].strip() if note else "unknown"
        out[key] = out.get(key, 0) + 1
    return out


__all__ = [
    "StepExplanation",
    "explain_plan",
    "explain_to_dicts",
    "provenance_summary",
    "render_explain",
]
