"""Rolling-window aggregation and SLO tracking for live serving.

The all-time histograms in :mod:`repro.obs.metrics` answer "what has
this process ever done"; a serving tier needs "what is happening *right
now*".  :class:`SlidingWindow` keeps a bounded, time-pruned sample of
recent observations and derives count / rate / mean / percentiles over
a configurable horizon, so p99 latency reflects the last minute of
traffic instead of everything since boot.

:class:`SloTracker` layers objectives on top: each
:class:`SloObjective` classifies every completed request as *good* or
*bad* (an availability objective counts non-ok outcomes as bad; a
latency objective counts requests slower than its threshold as bad)
and accounts for the **error budget** — out of the window's ``total``
requests, an objective targeting fraction ``target`` may tolerate
``(1 - target) * total`` bad ones before it is breached.  The snapshot
reports compliance, budget consumed/remaining, and the breach flag, the
numbers a pager (or ``repro top``) wants.

Everything here is lock-protected and clock-injectable; nothing imports
``repro.core`` / ``repro.gpusim`` / ``repro.service``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any

DEFAULT_WINDOW_SECONDS = 60.0
#: bound on retained samples per window, independent of the time horizon
MAX_WINDOW_SAMPLES = 8192


def _nearest_rank(ordered: list[float], p: float) -> float:
    """Nearest-rank percentile of a pre-sorted, non-empty sample."""
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = math.ceil(p / 100 * len(ordered))
    return ordered[rank - 1]


class SlidingWindow:
    """Time-bounded sample of (timestamp, value) observations.

    Samples older than ``window_seconds`` are pruned on every write and
    read; the sample count is additionally capped at ``max_samples``
    (oldest dropped first) so a traffic spike cannot grow the window
    without bound.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        *,
        clock=time.monotonic,
        max_samples: int = MAX_WINDOW_SAMPLES,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.window_seconds = window_seconds
        self.max_samples = max_samples
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: list[tuple[float, float]] = []  # (ts, value)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        i = 0
        n = len(self._samples)
        while i < n and self._samples[i][0] <= horizon:
            i += 1
        if i:
            del self._samples[:i]
        overflow = len(self._samples) - self.max_samples
        if overflow > 0:
            del self._samples[:overflow]

    def observe(self, value: float) -> None:
        now = self._clock()
        with self._lock:
            self._samples.append((now, float(value)))
            self._prune(now)

    def _values(self) -> list[float]:
        with self._lock:
            self._prune(self._clock())
            return [v for _, v in self._samples]

    def samples(self) -> list[tuple[float, float]]:
        """The live ``(timestamp, value)`` samples (pruned first).

        This is the window's raw material — a multi-process shard
        aggregator ships these to the parent and merges them with
        :func:`merge_window_samples` so fleet-level percentiles are
        computed over the union of samples, not averaged per shard
        (percentiles do not average).
        """
        with self._lock:
            self._prune(self._clock())
            return list(self._samples)

    # -- aggregates ------------------------------------------------------
    def count(self) -> int:
        return len(self._values())

    def rate(self) -> float:
        """Observations per second over the window."""
        return self.count() / self.window_seconds

    def mean(self) -> float:
        values = self._values()
        return sum(values) / len(values) if values else 0.0

    def total(self) -> float:
        return sum(self._values())

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the windowed values, p in [0, 100].

        Raises :class:`ValueError` on an empty window — live dashboards
        should render "no traffic", never a fabricated 0.0 latency.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        values = sorted(self._values())
        if not values:
            raise ValueError("percentile of an empty window")
        return _nearest_rank(values, p)

    def snapshot(self) -> dict[str, float]:
        """JSON-ready summary; zeros (with ``count=0``) when empty."""
        values = sorted(self._values())
        if not values:
            return {
                "window_seconds": self.window_seconds,
                "count": 0, "rate": 0.0, "sum": 0.0, "mean": 0.0,
                "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "window_seconds": self.window_seconds,
            "count": len(values),
            "rate": len(values) / self.window_seconds,
            "sum": sum(values),
            "mean": sum(values) / len(values),
            "min": values[0],
            "max": values[-1],
            "p50": _nearest_rank(values, 50),
            "p95": _nearest_rank(values, 95),
            "p99": _nearest_rank(values, 99),
        }


def merge_window_samples(
    sample_sets: "list[list[tuple[float, float]]]",
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
) -> dict[str, float]:
    """Combine raw window samples from several shards into one snapshot.

    Percentiles are not averageable: a fleet p99 must be computed over
    the union of every shard's samples.  Each element of
    ``sample_sets`` is one shard's :meth:`SlidingWindow.samples`; the
    result has the same shape as :meth:`SlidingWindow.snapshot`.
    Timestamps are assumed comparable (``time.monotonic`` is
    machine-wide on the platforms we support) and only used for
    cross-shard consistency of the rate denominator.
    """
    values = sorted(v for samples in sample_sets for _, v in samples)
    if not values:
        return {
            "window_seconds": window_seconds,
            "count": 0, "rate": 0.0, "sum": 0.0, "mean": 0.0,
            "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    return {
        "window_seconds": window_seconds,
        "count": len(values),
        "rate": len(values) / window_seconds,
        "sum": sum(values),
        "mean": sum(values) / len(values),
        "min": values[0],
        "max": values[-1],
        "p50": _nearest_rank(values, 50),
        "p95": _nearest_rank(values, 95),
        "p99": _nearest_rank(values, 99),
    }


@dataclass(frozen=True, kw_only=True)
class SloObjective:
    """One service-level objective over the rolling window.

    ``target`` is the required good fraction (0.99 = "99% of windowed
    requests").  With ``latency_threshold`` set, a request is *bad* when
    it is slower than the threshold (an ok-but-slow request still burns
    budget); without it, the objective is availability and a request is
    bad exactly when its outcome was not ``ok``.
    """

    name: str
    target: float
    latency_threshold: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        if self.latency_threshold is not None and self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be > 0 seconds")

    def is_good(self, *, ok: bool, latency: float) -> bool:
        if self.latency_threshold is not None:
            return ok and latency <= self.latency_threshold
        return ok


def default_objectives() -> tuple[SloObjective, ...]:
    """The stock serving SLOs: 99.9% availability, 99% under 1 s."""
    return (
        SloObjective(name="availability", target=0.999),
        SloObjective(name="latency_1s", target=0.99, latency_threshold=1.0),
    )


class SloTracker:
    """Error-budget accounting for a set of objectives over one window."""

    def __init__(
        self,
        objectives: tuple[SloObjective, ...] | list[SloObjective] = (),
        *,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        clock=time.monotonic,
        max_samples: int = MAX_WINDOW_SAMPLES,
    ) -> None:
        self.objectives = tuple(objectives) or default_objectives()
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.window_seconds = window_seconds
        self._clock = clock
        self.max_samples = max_samples
        self._lock = threading.Lock()
        #: (ts, ok, latency_seconds)
        self._samples: list[tuple[float, bool, float]] = []

    def record(self, *, ok: bool, latency: float) -> None:
        """Account one completed request (any terminal status)."""
        now = self._clock()
        with self._lock:
            self._samples.append((now, bool(ok), float(latency)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        i = 0
        n = len(self._samples)
        while i < n and self._samples[i][0] <= horizon:
            i += 1
        if i:
            del self._samples[:i]
        overflow = len(self._samples) - self.max_samples
        if overflow > 0:
            del self._samples[:overflow]

    def snapshot(self) -> dict[str, Any]:
        """Per-objective compliance and error-budget accounting.

        ``budget_total`` is the number of bad requests the window may
        absorb (``(1 - target) * total``); ``budget_consumed`` is how
        many it has; ``budget_remaining_fraction`` is the unspent share
        (1.0 with an empty window — no traffic burns no budget);
        ``breached`` flips when consumption exceeds the budget, i.e.
        when compliance drops below target.
        """
        with self._lock:
            self._prune(self._clock())
            samples = list(self._samples)
        total = len(samples)
        objectives: list[dict[str, Any]] = []
        for obj in self.objectives:
            good = sum(
                1 for _, ok, lat in samples
                if obj.is_good(ok=ok, latency=lat)
            )
            bad = total - good
            budget = (1.0 - obj.target) * total
            remaining = 1.0 if total == 0 else (
                max(budget - bad, 0.0) / budget if budget > 0
                else (1.0 if bad == 0 else 0.0)
            )
            objectives.append({
                "name": obj.name,
                "target": obj.target,
                "latency_threshold": obj.latency_threshold,
                "total": total,
                "good": good,
                "bad": bad,
                "compliance": 1.0 if total == 0 else good / total,
                "budget_total": budget,
                "budget_consumed": float(bad),
                "budget_remaining_fraction": remaining,
                "breached": total > 0 and bad > budget,
            })
        return {
            "window_seconds": self.window_seconds,
            "total": total,
            "objectives": objectives,
        }


def merge_slo_snapshots(snapshots: "list[dict]") -> dict:
    """Combine per-shard :meth:`SloTracker.snapshot` dicts fleet-wide.

    Good/bad counts add; compliance and error budgets are recomputed
    from the summed counts (never averaged — a busy shard must weigh
    more than an idle one).  Objectives are matched by name; shards are
    expected to share one objective set (they are spawned from one
    config), but stragglers missing an objective simply contribute
    nothing to it.
    """
    window_seconds = max(
        (s.get("window_seconds", DEFAULT_WINDOW_SECONDS) for s in snapshots),
        default=DEFAULT_WINDOW_SECONDS,
    )
    merged: dict[str, dict] = {}
    order: list[str] = []
    for snap in snapshots:
        for obj in snap.get("objectives", []):
            name = obj["name"]
            if name not in merged:
                merged[name] = {
                    "name": name,
                    "target": obj["target"],
                    "latency_threshold": obj.get("latency_threshold"),
                    "total": 0,
                    "good": 0,
                    "bad": 0,
                }
                order.append(name)
            acc = merged[name]
            acc["total"] += obj.get("total", 0)
            acc["good"] += obj.get("good", 0)
            acc["bad"] += obj.get("bad", 0)
    objectives = []
    total_requests = 0
    for name in order:
        acc = merged[name]
        total, good, bad = acc["total"], acc["good"], acc["bad"]
        total_requests = max(total_requests, total)
        budget = (1.0 - acc["target"]) * total
        remaining = 1.0 if total == 0 else (
            max(budget - bad, 0.0) / budget if budget > 0
            else (1.0 if bad == 0 else 0.0)
        )
        objectives.append({
            **acc,
            "compliance": 1.0 if total == 0 else good / total,
            "budget_total": budget,
            "budget_consumed": float(bad),
            "budget_remaining_fraction": remaining,
            "breached": total > 0 and bad > budget,
        })
    return {
        "window_seconds": window_seconds,
        "total": total_requests,
        "objectives": objectives,
    }


__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "MAX_WINDOW_SAMPLES",
    "SlidingWindow",
    "SloObjective",
    "SloTracker",
    "default_objectives",
    "merge_slo_snapshots",
    "merge_window_samples",
]
