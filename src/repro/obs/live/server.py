"""Stdlib HTTP status endpoint for the live telemetry plane.

A tiny, dependency-free exposition server (``http.server`` +
``ThreadingHTTPServer`` on a daemon thread) publishing four endpoints:

* ``GET /metrics``  — Prometheus text exposition (version 0.0.4);
* ``GET /slo``      — JSON live snapshot: rolling windows, SLO error
  budgets, queue/cache occupancy, per-shard breakdown;
* ``GET /requests`` — newline-delimited JSON event stream from the
  :class:`~repro.obs.live.events.EventLog` ring (``?request_id=N``
  filters to one request's end-to-end timeline, ``?limit=N`` keeps the
  newest N events);
* ``GET /healthz``  — JSON liveness summary.

The server knows nothing about the execution service: it is constructed
from four callables, so anything — today's in-process
:class:`~repro.service.ExecutionService`, tomorrow's multi-process
shards — can publish into the same contract by providing the same four
views.  Handler exceptions become HTTP 500s with the error text, never
a dead scrape loop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class StatusServer:
    """Serves the live-telemetry endpoints for one provider.

    ``metrics`` returns the Prometheus text; ``slo`` and ``health``
    return JSON-ready dicts; ``requests`` takes ``(request_id, limit)``
    (both optional) and returns the NDJSON body.  ``port=0`` binds an
    ephemeral port (read it back from ``.port`` — tests and parallel
    CI jobs never collide).
    """

    def __init__(
        self,
        *,
        metrics: Callable[[], str],
        slo: Callable[[], dict[str, Any]],
        requests: Callable[[int | None, int | None], str],
        health: Callable[[], dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._providers = {
            "metrics": metrics,
            "slo": slo,
            "requests": requests,
            "health": health,
        }
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            # Status scrapes are high-frequency; never log to stderr.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _reply(self, code: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                url = urlsplit(self.path)
                try:
                    if url.path == "/metrics":
                        self._reply(
                            200, PROM_CONTENT_TYPE,
                            outer._providers["metrics"](),
                        )
                    elif url.path == "/slo":
                        self._reply(
                            200, JSON_CONTENT_TYPE,
                            json.dumps(
                                outer._providers["slo"](), sort_keys=True
                            ),
                        )
                    elif url.path == "/requests":
                        query = parse_qs(url.query)

                        def _int(key: str) -> int | None:
                            raw = query.get(key, [None])[0]
                            return None if raw is None else int(raw)

                        self._reply(
                            200, NDJSON_CONTENT_TYPE,
                            outer._providers["requests"](
                                _int("request_id"), _int("limit")
                            ),
                        )
                    elif url.path == "/healthz":
                        self._reply(
                            200, JSON_CONTENT_TYPE,
                            json.dumps(
                                outer._providers["health"](), sort_keys=True
                            ),
                        )
                    else:
                        self._reply(
                            404, JSON_CONTENT_TYPE,
                            json.dumps({
                                "error": f"unknown path {url.path!r}",
                                "endpoints": [
                                    "/metrics", "/slo", "/requests",
                                    "/healthz",
                                ],
                            }),
                        )
                except ValueError as exc:  # bad query parameters
                    self._reply(
                        400, JSON_CONTENT_TYPE,
                        json.dumps({"error": str(exc)}),
                    )
                except Exception as exc:  # provider bug: loud, not fatal
                    self._reply(
                        500, JSON_CONTENT_TYPE,
                        json.dumps(
                            {"error": f"{type(exc).__name__}: {exc}"}
                        ),
                    )

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-status",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


__all__ = [
    "JSON_CONTENT_TYPE",
    "NDJSON_CONTENT_TYPE",
    "PROM_CONTENT_TYPE",
    "StatusServer",
]
