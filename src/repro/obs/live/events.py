"""The structured event bus: a bounded ring of request-correlated events.

Post-hoc observability (tracers, metrics snapshots, run reports) tells
you what happened after a run completes; a *serving* tier needs to be
watched while traffic is live.  :class:`EventLog` is the push side of
that plane: every layer that participates in a request — admission,
plan-cache lookup, compile, simulated execution, retries, completion —
publishes one typed, timestamped :class:`TelemetryEvent` carrying the
``request_id`` it is working on, so a single request has one end-to-end
trace from admission to completion and the whole log is a queryable,
bounded window onto the service's recent past.

Correlation is ambient: the service binds ``(event_log, request_id)``
into a :mod:`contextvars` context around each request's processing, and
any code below it — :meth:`repro.core.Framework.compile`,
:class:`repro.core.plancache.PlanCache`, :class:`repro.gpusim.SimRuntime`
— calls :func:`publish` without threading parameters through every
signature.  Outside a bound context :func:`publish` is a no-op costing
one context-variable read, so library code pays nothing when no one is
watching.

The ring is bounded (``capacity`` events, oldest dropped first, drops
counted — never silently) and every mutation is lock-protected, so many
worker threads can publish while an exporter thread reads.  A capacity
of 0 disables the log entirely: ``emit`` returns immediately, which is
the telemetry-off configuration the overhead benchmark measures against.

This module sits at the bottom of the import graph (no ``repro.core`` /
``repro.gpusim`` imports), like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped occurrence on the event bus.

    ``seq`` is a monotonically increasing position in the log (stable
    across ring-buffer drops, so consumers can detect gaps); ``ts`` is
    wall-clock epoch seconds; ``kind`` is a dotted type name
    (``service.admitted``, ``plancache.hit``, ``compile.done``, ...);
    ``request_id`` correlates the event to one service request (``None``
    for events outside any request).
    """

    seq: int
    ts: float
    kind: str
    request_id: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "request_id": self.request_id,
            **({"fields": dict(self.fields)} if self.fields else {}),
        }


class EventLog:
    """Bounded, thread-safe ring buffer of :class:`TelemetryEvent`.

    The oldest events are dropped once ``capacity`` is reached;
    ``dropped`` counts how many.  ``capacity=0`` disables the log
    (every ``emit`` is a cheap no-op returning ``None``).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock=time.time,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list[TelemetryEvent] = []
        self._start = 0  # ring read index
        self._seq = 0
        self._sinks: list = []
        self.sink_errors = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def emit(
        self, kind: str, *, request_id: int | None = None, **fields: Any
    ) -> TelemetryEvent | None:
        """Append one event; returns it (or ``None`` when disabled)."""
        if self.capacity == 0:
            return None
        ts = self._clock()
        with self._lock:
            event = TelemetryEvent(
                seq=self._seq,
                ts=ts,
                kind=kind,
                request_id=request_id,
                fields=fields,
            )
            self._seq += 1
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:  # overwrite the oldest slot
                self._events[self._start] = event
                self._start = (self._start + 1) % self.capacity
            # Sinks run inside the lock so a durable tee (the flight
            # recorder) sees events in exact seq order; they must be
            # fast, and they must never break the publishing request.
            for sink in self._sinks:
                try:
                    sink(event)
                except Exception:
                    self.sink_errors += 1
        return event

    def add_sink(self, sink) -> None:
        """Tee every future event into ``sink(event)``.

        Sinks are invoked synchronously inside the ring lock (events
        arrive in strict ``seq`` order, with no reordering window for a
        crash to exploit); exceptions are swallowed and counted in
        ``sink_errors`` — observability must never fail the request
        being observed.
        """
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a sink added with :meth:`add_sink` (no-op if absent)."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    # -- queries ---------------------------------------------------------
    def events(
        self,
        *,
        request_id: int | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[TelemetryEvent]:
        """Events in emission order, optionally filtered.

        ``request_id`` keeps only one request's trace; ``kind`` filters
        by exact kind or dotted prefix (``"service."``); ``limit`` keeps
        the *newest* N after filtering.
        """
        with self._lock:
            ordered = self._events[self._start:] + self._events[: self._start]
        if request_id is not None:
            ordered = [e for e in ordered if e.request_id == request_id]
        if kind is not None:
            if kind.endswith("."):
                ordered = [e for e in ordered if e.kind.startswith(kind)]
            else:
                ordered = [e for e in ordered if e.kind == kind]
        if limit is not None and limit >= 0:
            ordered = ordered[len(ordered) - min(limit, len(ordered)):]
        return ordered

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total_emitted(self) -> int:
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (0 while under capacity)."""
        with self._lock:
            return self._seq - len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._start = 0

    def to_ndjson(
        self, *, request_id: int | None = None, limit: int | None = None
    ) -> str:
        """Newline-delimited JSON export of the (filtered) log."""
        lines = [
            json.dumps(e.to_dict(), sort_keys=True)
            for e in self.events(request_id=request_id, limit=limit)
        ]
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Ambient request context
# ---------------------------------------------------------------------------
_CONTEXT: contextvars.ContextVar[tuple[EventLog, int | None] | None] = (
    contextvars.ContextVar("repro_obs_live_context", default=None)
)


@contextmanager
def bind(log: EventLog, request_id: int | None = None) -> Iterator[None]:
    """Make ``log``/``request_id`` the ambient publish target.

    Context variables are per-thread (and per-async-task), so worker
    threads binding different request ids never observe each other's.
    """
    token = _CONTEXT.set((log, request_id))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def publish(kind: str, **fields: Any) -> TelemetryEvent | None:
    """Emit onto the ambient event log; no-op when none is bound."""
    ctx = _CONTEXT.get()
    if ctx is None:
        return None
    log, request_id = ctx
    return log.emit(kind, request_id=request_id, **fields)


def current_request_id() -> int | None:
    """The request id of the ambient context, if any."""
    ctx = _CONTEXT.get()
    return None if ctx is None else ctx[1]


# ---------------------------------------------------------------------------
# Chrome-trace export of one request's timeline
# ---------------------------------------------------------------------------
def timeline_to_chrome(
    events: list[TelemetryEvent], *, track: str | None = None
) -> list[dict[str, Any]]:
    """Render one request's event list as a single Chrome-trace track.

    Every event becomes an instant ("i") marker; events carrying a
    ``seconds`` field (``compile.done``, ``service.execute_done``, ...)
    additionally contribute a complete ("X") span ending at the event's
    timestamp, so the trace shows both the milestone stream and the
    stage durations.  Timestamps are microseconds relative to the first
    event, which is what ``chrome://tracing`` / Perfetto expect.
    """
    if not events:
        return []
    epoch = events[0].ts
    rid = events[0].request_id
    name = track or (f"request {rid}" if rid is not None else "events")
    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": name,
            "tid": name,
            "args": {"name": name},
        }
    ]
    for e in events:
        ts_us = (e.ts - epoch) * 1e6
        args = {"seq": e.seq, "request_id": e.request_id, **e.fields}
        seconds = e.fields.get("seconds")
        if isinstance(seconds, (int, float)) and seconds > 0:
            out.append({
                "name": e.kind,
                "ph": "X",
                "ts": max(ts_us - seconds * 1e6, 0.0),
                "dur": seconds * 1e6,
                "pid": name,
                "tid": name,
                "args": args,
            })
        else:
            out.append({
                "name": e.kind,
                "ph": "i",
                "s": "t",
                "ts": ts_us,
                "pid": name,
                "tid": name,
                "args": args,
            })
    return out


__all__ = [
    "DEFAULT_CAPACITY",
    "EventLog",
    "TelemetryEvent",
    "bind",
    "current_request_id",
    "publish",
    "timeline_to_chrome",
]
