"""Alert rules over the live windows: from dashboards to pagers.

:class:`~repro.obs.live.SlidingWindow` and
:class:`~repro.obs.live.SloTracker` compute the numbers; this module
decides when a human should look at them.  An :class:`AlertRule` is a
declarative predicate over one evaluation's snapshots:

* a **threshold** rule compares one window statistic (``p99``, ``mean``,
  ``rate``, ``count``, ...) against an ``above``/``below`` bound —
  "page when windowed p99 latency exceeds 500 ms";
* a **budget-burn** rule watches one SLO objective's remaining error
  budget — "page when the availability objective has burned more than
  half its budget".

:class:`AlertEngine` holds the rules plus the firing state machine.
Each :meth:`~AlertEngine.evaluate` classifies every rule as firing or
not and emits ``alert.firing`` / ``alert.resolved`` telemetry events on
the *transitions* only — an alert that stays red does not spam the
event bus, and because those events flow through the normal
:class:`~repro.obs.live.EventLog` they are teed into the flight
recorder's journal, so a post-mortem can answer "was anything already
on fire when the shard died?".

Stateless inputs, explicit state: the engine never reads clocks or
windows itself — callers pass snapshots in, which keeps evaluation
deterministic and trivially testable (and means one engine can serve
both a live service and a replayed journal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.live.events import EventLog

#: window-snapshot statistics a threshold rule may watch
THRESHOLD_METRICS = (
    "count", "rate", "sum", "mean", "min", "max", "p50", "p95", "p99",
)
RULE_KINDS = ("threshold", "budget_burn")


@dataclass(frozen=True, kw_only=True)
class AlertRule:
    """One declarative firing condition.

    ``kind="threshold"`` watches ``metric`` (a
    :meth:`SlidingWindow.snapshot` key) and fires when it is strictly
    greater than ``above`` and/or strictly less than ``below``;
    ``min_count`` suppresses firing until the window holds at least
    that many samples, so one slow request on an idle shard does not
    page anyone.

    ``kind="budget_burn"`` watches the SLO ``objective`` by name and
    fires when its burned budget fraction (1 − remaining) strictly
    exceeds ``max_burn`` — or immediately on breach.
    """

    name: str
    kind: str = "threshold"
    # threshold rules
    metric: str = "p99"
    above: float | None = None
    below: float | None = None
    min_count: int = 1
    # budget-burn rules
    objective: str = ""
    max_burn: float = 0.5
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert rule needs a name")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"kind must be one of {RULE_KINDS}, got {self.kind!r}"
            )
        if self.kind == "threshold":
            if self.metric not in THRESHOLD_METRICS:
                raise ValueError(
                    f"metric must be one of {THRESHOLD_METRICS}, "
                    f"got {self.metric!r}"
                )
            if self.above is None and self.below is None:
                raise ValueError(
                    "threshold rule needs at least one of above/below"
                )
            if self.min_count < 0:
                raise ValueError("min_count must be >= 0")
        else:
            if not self.objective:
                raise ValueError("budget_burn rule needs an objective name")
            if not 0.0 <= self.max_burn <= 1.0:
                raise ValueError("max_burn must be in [0, 1]")

    # -- evaluation ------------------------------------------------------
    def check(
        self,
        window: Mapping[str, Any] | None,
        slo: Mapping[str, Any] | None,
    ) -> tuple[bool, dict[str, Any]]:
        """(firing?, detail) for one evaluation's snapshots."""
        if self.kind == "threshold":
            if not window or window.get("count", 0) < self.min_count:
                return False, {}
            value = window.get(self.metric)
            if not isinstance(value, (int, float)):
                return False, {}
            firing = False
            detail: dict[str, Any] = {"metric": self.metric, "value": value}
            if self.above is not None and value > self.above:
                firing = True
                detail["above"] = self.above
            if self.below is not None and value < self.below:
                firing = True
                detail["below"] = self.below
            return firing, detail
        # budget_burn
        for obj in (slo or {}).get("objectives", []):
            if obj.get("name") != self.objective:
                continue
            remaining = float(obj.get("budget_remaining_fraction", 1.0))
            burn = 1.0 - remaining
            firing = bool(obj.get("breached")) or burn > self.max_burn
            return firing, {
                "objective": self.objective,
                "burn": burn,
                "max_burn": self.max_burn,
                "breached": bool(obj.get("breached")),
            }
        return False, {}

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == "threshold":
            out["metric"] = self.metric
            if self.above is not None:
                out["above"] = self.above
            if self.below is not None:
                out["below"] = self.below
            out["min_count"] = self.min_count
        else:
            out["objective"] = self.objective
            out["max_burn"] = self.max_burn
        if self.description:
            out["description"] = self.description
        return out


def default_alert_rules() -> tuple[AlertRule, ...]:
    """The stock serving alerts, matching
    :func:`repro.obs.live.default_objectives`: latency p99 over 1 s,
    and either SLO burning more than half its error budget."""
    return (
        AlertRule(
            name="latency_p99_high",
            metric="p99",
            above=1.0,
            min_count=5,
            description="windowed p99 latency above 1 s",
        ),
        AlertRule(
            name="availability_budget_burn",
            kind="budget_burn",
            objective="availability",
            max_burn=0.5,
            description="availability error budget more than half burned",
        ),
        AlertRule(
            name="latency_slo_budget_burn",
            kind="budget_burn",
            objective="latency_1s",
            max_burn=0.5,
            description="latency SLO error budget more than half burned",
        ),
    )


class AlertEngine:
    """Firing/resolved state machine over a rule set.

    Not internally locked: callers serialize :meth:`evaluate` (the
    execution service evaluates under its own alert lock, since any
    worker thread may complete the request that trips a rule).
    """

    def __init__(self, rules: tuple[AlertRule, ...] | list[AlertRule] = ()):
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {names}")
        #: rule name -> detail dict of the firing evaluation
        self._active: dict[str, dict[str, Any]] = {}
        self.fired_total = 0
        self.resolved_total = 0

    def __bool__(self) -> bool:
        return bool(self.rules)

    def evaluate(
        self,
        window: Mapping[str, Any] | None,
        slo: Mapping[str, Any] | None,
        *,
        event_log: EventLog | None = None,
    ) -> list[dict[str, Any]]:
        """Re-classify every rule; emit transition events; return the
        currently-active alert list (same shape as :meth:`active`)."""
        for rule in self.rules:
            firing, detail = rule.check(window, slo)
            was_firing = rule.name in self._active
            if firing and not was_firing:
                # "rule_kind", not "kind": the event bus already uses
                # "kind" for the event type itself.
                record = {"rule": rule.name, "rule_kind": rule.kind, **detail}
                if rule.description:
                    record["description"] = rule.description
                self._active[rule.name] = record
                self.fired_total += 1
                if event_log is not None:
                    event_log.emit("alert.firing", **record)
            elif firing and was_firing:
                # refresh the measured value, keep the firing identity
                self._active[rule.name].update(detail)
            elif was_firing:
                record = self._active.pop(rule.name)
                self.resolved_total += 1
                if event_log is not None:
                    event_log.emit(
                        "alert.resolved", rule=rule.name, rule_kind=rule.kind
                    )
        return self.active()

    def active(self) -> list[dict[str, Any]]:
        """Currently-firing alerts, stable order by rule name."""
        return [dict(self._active[name]) for name in sorted(self._active)]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary for ``live_snapshot()`` / ``/slo``."""
        return {
            "rules": len(self.rules),
            "active": self.active(),
            "fired_total": self.fired_total,
            "resolved_total": self.resolved_total,
        }


def merge_alert_snapshots(snapshots: "list[dict]") -> dict:
    """Fleet view of per-shard :meth:`AlertEngine.snapshot` dicts:
    counters add, active alerts union (deduped by rule name, any shard
    firing keeps the alert active fleet-wide)."""
    active: dict[str, dict[str, Any]] = {}
    fired = resolved = rules = 0
    for snap in snapshots:
        rules = max(rules, int(snap.get("rules", 0)))
        fired += int(snap.get("fired_total", 0))
        resolved += int(snap.get("resolved_total", 0))
        for alert in snap.get("active", []):
            name = str(alert.get("rule", ""))
            if name not in active:
                active[name] = dict(alert)
    return {
        "rules": rules,
        "active": [active[name] for name in sorted(active)],
        "fired_total": fired,
        "resolved_total": resolved,
    }


__all__ = [
    "AlertEngine",
    "AlertRule",
    "RULE_KINDS",
    "THRESHOLD_METRICS",
    "default_alert_rules",
    "merge_alert_snapshots",
]
