"""Live telemetry plane: event bus, rolling windows, exporters.

Where the rest of :mod:`repro.obs` is *post-hoc* (spans, snapshots,
reports produced after a run), ``repro.obs.live`` is the **push-based**
layer a serving tier is operated with:

* :mod:`~repro.obs.live.events` — :class:`EventLog`, a bounded ring of
  typed, timestamped, request-correlated events, with an ambient
  :func:`bind`/:func:`publish` context so every layer (service, compile,
  plan cache, simulator) reports into one end-to-end request trace;
* :mod:`~repro.obs.live.windows` — :class:`SlidingWindow` rolling
  percentiles/rates and :class:`SloTracker` error-budget accounting;
* :mod:`~repro.obs.live.alerts` — :class:`AlertEngine`, declarative
  threshold / budget-burn rules over those windows, with firing and
  resolved transitions published as events;
* :mod:`~repro.obs.live.promtext` — Prometheus text-format exposition;
* :mod:`~repro.obs.live.server` — the stdlib HTTP status endpoint
  (``/metrics``, ``/slo``, ``/requests``, ``/healthz``) behind
  ``repro serve --status-port`` and ``repro top``.

Like its parent package, nothing here imports ``repro.core`` /
``repro.gpusim`` / ``repro.service`` — the contract is callables and
plain dicts, which is what lets future multi-process shards publish
into the same exporters.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    default_alert_rules,
    merge_alert_snapshots,
)
from .events import (
    EventLog,
    TelemetryEvent,
    bind,
    current_request_id,
    publish,
    timeline_to_chrome,
)
from .promtext import PROM_NAME_RE, PromText, prom_name, registry_to_prom
from .server import StatusServer
from .windows import (
    SlidingWindow,
    SloObjective,
    SloTracker,
    default_objectives,
    merge_slo_snapshots,
    merge_window_samples,
)

__all__ = [
    "PROM_NAME_RE",
    "AlertEngine",
    "AlertRule",
    "EventLog",
    "PromText",
    "SlidingWindow",
    "SloObjective",
    "SloTracker",
    "StatusServer",
    "TelemetryEvent",
    "bind",
    "current_request_id",
    "default_alert_rules",
    "default_objectives",
    "merge_alert_snapshots",
    "merge_slo_snapshots",
    "merge_window_samples",
    "prom_name",
    "publish",
    "registry_to_prom",
    "timeline_to_chrome",
]
