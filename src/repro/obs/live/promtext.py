"""Prometheus text-format exposition (version 0.0.4).

Renders the live telemetry plane — metrics-registry snapshots, sliding
windows, plan-cache stats — as the plain-text format every Prometheus
scraper understands, without importing any client library.  Naming
follows the upstream conventions:

* one flat namespace under a ``repro_`` prefix, dotted registry names
  mapped to underscores (``service.queue_depth`` →
  ``repro_service_queue_depth``);
* counters get a ``_total`` suffix; gauges keep their base name and
  additionally expose their high-water mark as ``<name>_peak``;
* histograms and sliding windows render as **summaries**: one
  ``{quantile="0.5|0.95|0.99"}`` sample per percentile plus ``_sum``
  and ``_count``;
* units are part of the name (``_seconds``, ``_bytes``), which the
  registry's dotted names already follow.

:class:`PromText` is an order-preserving builder; families are emitted
grouped with their ``# HELP`` / ``# TYPE`` headers, as the format
requires.  The usual entry point is
:meth:`repro.service.ExecutionService.prom_text`, served at
``GET /metrics`` by :class:`repro.obs.live.server.StatusServer`.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

#: a valid Prometheus metric name (used by tests to validate output)
PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
#: the summary quantiles exposed for histograms and sliding windows
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def prom_name(name: str, *, prefix: str = "repro") -> str:
    """Map a dotted registry name onto a valid Prometheus name."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    full = f"{prefix}_{flat}" if prefix else flat
    if not PROM_NAME_RE.match(full):
        full = "_" + full
    return full


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class PromText:
    """Accumulates metric families and renders the exposition text."""

    def __init__(self, *, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lines: list[str] = []
        self._seen: set[str] = set()

    def _header(self, name: str, kind: str, help_text: str | None) -> None:
        if name in self._seen:
            raise ValueError(f"metric family {name!r} emitted twice")
        self._seen.add(name)
        if help_text:
            self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def _sample(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        if labels:
            body = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items()
            )
            self._lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self._lines.append(f"{name} {_fmt(value)}")

    # -- family emitters -------------------------------------------------
    def counter(
        self, name: str, value: float, *, help_text: str | None = None
    ) -> None:
        full = prom_name(name, prefix=self.prefix)
        if not full.endswith("_total"):
            full += "_total"
        self._header(full, "counter", help_text)
        self._sample(full, value)

    def gauge(
        self,
        name: str,
        value: float,
        *,
        peak: float | None = None,
        help_text: str | None = None,
    ) -> None:
        full = prom_name(name, prefix=self.prefix)
        self._header(full, "gauge", help_text)
        self._sample(full, value)
        if peak is not None:
            self._header(f"{full}_peak", "gauge", None)
            self._sample(f"{full}_peak", peak)

    def summary(
        self,
        name: str,
        stats: Mapping[str, float],
        *,
        help_text: str | None = None,
    ) -> None:
        """A quantile summary from a histogram/window snapshot dict.

        ``stats`` must carry ``count`` and ``sum``; ``p50``/``p95``/
        ``p99`` are emitted as quantile samples when the count is
        non-zero (an empty summary still exposes ``_sum``/``_count`` so
        the family never disappears between scrapes).
        """
        full = prom_name(name, prefix=self.prefix)
        self._header(full, "summary", help_text)
        count = stats.get("count", 0)
        if count:
            for quantile, key in SUMMARY_QUANTILES:
                if key in stats:
                    self._sample(full, stats[key], {"quantile": quantile})
        self._sample(f"{full}_sum", stats.get("sum", 0.0))
        self._sample(f"{full}_count", count)

    def event_log(self, stats: Mapping[str, Any]) -> None:
        """Expose an event-ring's health from a ``live_snapshot()``'s
        ``events`` dict: emitted/dropped counters plus the capacity
        gauge.  Ring overflow (``repro_events_dropped_total`` climbing)
        is the scrape-visible sign that ``telemetry_events`` is too
        small for the traffic."""
        self.counter(
            "events.emitted",
            stats.get("emitted", 0),
            help_text="Telemetry events published to the live event ring",
        )
        self.counter(
            "events.dropped",
            stats.get("dropped", 0),
            help_text="Telemetry events evicted by the ring capacity bound",
        )
        self.gauge(
            "events.capacity",
            stats.get("capacity", 0),
            help_text="Configured capacity of the live event ring",
        )

    def registry(self, snapshot: Mapping[str, Any]) -> None:
        """Emit every metric of a :meth:`MetricsRegistry.snapshot` dict."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name, value)
        for name, g in snapshot.get("gauges", {}).items():
            self.gauge(name, g["value"], peak=g.get("peak"))
        for name, h in snapshot.get("histograms", {}).items():
            self.summary(name, h)

    def render(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def registry_to_prom(
    snapshot: Mapping[str, Any], *, prefix: str = "repro"
) -> str:
    """One-call exposition of a full metrics-registry snapshot."""
    out = PromText(prefix=prefix)
    out.registry(snapshot)
    return out.render()


__all__ = [
    "PROM_NAME_RE",
    "SUMMARY_QUANTILES",
    "PromText",
    "prom_name",
    "registry_to_prom",
]
