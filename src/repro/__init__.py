"""repro — reproduction of "A framework for efficient and scalable
execution of domain-specific templates on GPUs" (IPDPS 2009).

Stable public facade
--------------------
* :func:`repro.compile` / :func:`repro.execute` / :func:`repro.simulate`
  — compile + run templates against one GPU or a device group
* :func:`repro.compile_multi` — explicit multi-GPU compilation
* :class:`repro.CompileOptions` — keyword-only compilation knobs
* :class:`repro.ExecutionService` / :class:`repro.ServiceConfig` — the
  concurrent execution service (``repro serve`` / ``repro submit``)
* :class:`repro.AsyncExecutionService` — the asyncio front end over the
  same core; all services share the :class:`repro.service.Submitter`
  contract

Layered packages (power users)
------------------------------
* :class:`repro.core.OperatorGraph` — the parallel operator graph IR
* :class:`repro.core.Framework` / :func:`repro.core.run_template` —
  compile + execute templates against a target GPU
* :mod:`repro.templates` — ``find_edges_graph`` and the CNN factories
* :mod:`repro.gpusim` — the simulated GPU platforms (Tesla C870,
  GeForce 8800 GTX) plus the deterministic fault injector
* :mod:`repro.service` — bounded worker pool, single-flight dedupe,
  deadlines, retries with exponential backoff
* :mod:`repro.pb` — the from-scratch SAT/PB optimiser behind the exact
  Figure-5 scheduling
"""

from . import (
    analysis,
    api,
    codegen,
    core,
    gpusim,
    multigpu,
    obs,
    ops,
    pb,
    runtime,
    service,
    templates,
)
from .api import compile, compile_multi, execute, simulate
from .core import CompileOptions, Framework, OperatorGraph, run_template
from .gpusim import GEFORCE_8800_GTX, TESLA_C870, GpuDevice, HostSystem
from .service import (
    AsyncExecutionService,
    ExecutionService,
    ServiceConfig,
    ServiceRequest,
    Submitter,
)

__version__ = "1.2.0"

__all__ = [
    "AsyncExecutionService",
    "CompileOptions",
    "ExecutionService",
    "Framework",
    "GEFORCE_8800_GTX",
    "GpuDevice",
    "HostSystem",
    "OperatorGraph",
    "ServiceConfig",
    "ServiceRequest",
    "Submitter",
    "TESLA_C870",
    "analysis",
    "api",
    "codegen",
    "compile",
    "compile_multi",
    "core",
    "execute",
    "gpusim",
    "multigpu",
    "obs",
    "ops",
    "pb",
    "run_template",
    "runtime",
    "service",
    "simulate",
    "templates",
]
