"""repro — reproduction of "A framework for efficient and scalable
execution of domain-specific templates on GPUs" (IPDPS 2009).

Public API highlights
---------------------
* :class:`repro.core.OperatorGraph` — the parallel operator graph IR
* :class:`repro.core.Framework` / :func:`repro.core.run_template` —
  compile + execute templates against a target GPU
* :mod:`repro.templates` — ``find_edges_graph`` and the CNN factories
* :mod:`repro.gpusim` — the simulated GPU platforms (Tesla C870,
  GeForce 8800 GTX)
* :mod:`repro.pb` — the from-scratch SAT/PB optimiser behind the exact
  Figure-5 scheduling
"""

from . import analysis, codegen, core, gpusim, ops, pb, runtime, templates
from .core import CompileOptions, Framework, OperatorGraph, run_template
from .gpusim import GEFORCE_8800_GTX, TESLA_C870, GpuDevice, HostSystem

__version__ = "1.0.0"

__all__ = [
    "CompileOptions",
    "Framework",
    "GEFORCE_8800_GTX",
    "GpuDevice",
    "HostSystem",
    "OperatorGraph",
    "TESLA_C870",
    "analysis",
    "codegen",
    "core",
    "gpusim",
    "ops",
    "pb",
    "run_template",
    "runtime",
    "templates",
]
