"""Execution plans.

"The execution sequence of operators on the GPU, and data transfers to
and from the GPU memory, is referred to as an execution plan" (Section
3.3.2, example).  A plan is a flat list of typed steps:

* ``CopyToGPU(data)`` — host-to-device transfer (allocates on device)
* ``CopyToCPU(data)`` — device-to-host transfer (device copy remains)
* ``Launch(op)``      — execute one offload unit; allocates its outputs
* ``Free(data)``      — release the device copy without transferring
* ``PeerCopy(data, src, dst)`` — direct device-to-device transfer
  (multi-GPU plans only; allocates on ``dst``, the ``src`` copy remains)

Plans may carry a *device dimension* (:attr:`ExecutionPlan.devices`, a
list parallel to ``steps`` naming the device each step runs on).  A plan
without it is a single-device plan — every step implicitly runs on
device 0 — which keeps the paper's original single-GPU pipeline exactly
as it was.

Plans are validated symbolically (:func:`validate_plan`) before they are
handed to the code generator or the simulator-backed executor: memory
stays within capacity at every step on every device, every launch has
its inputs resident on its device and its dependencies executed, and
every template output ends up in host memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .graph import OperatorGraph


class PlanError(RuntimeError):
    """An execution plan violates feasibility or correctness invariants."""


@dataclass(frozen=True)
class Step:
    """Base class for plan steps."""


@dataclass(frozen=True)
class CopyToGPU(Step):
    data: str

    def __str__(self) -> str:
        return f"h2d  {self.data}"


@dataclass(frozen=True)
class CopyToCPU(Step):
    data: str

    def __str__(self) -> str:
        return f"d2h  {self.data}"


@dataclass(frozen=True)
class Launch(Step):
    op: str

    def __str__(self) -> str:
        return f"exec {self.op}"


@dataclass(frozen=True)
class Free(Step):
    data: str

    def __str__(self) -> str:
        return f"free {self.data}"


@dataclass(frozen=True)
class PeerCopy(Step):
    """Direct device-to-device copy of ``data`` from ``src`` to ``dst``."""

    data: str
    src: int
    dst: int

    def __str__(self) -> str:
        return f"p2p  {self.data} gpu{self.src}->gpu{self.dst}"


@dataclass
class ExecutionPlan:
    """An ordered offload/transfer schedule for one template + device."""

    steps: list[Step] = field(default_factory=list)
    capacity_floats: int = 0
    label: str = ""
    #: optional provenance, parallel to ``steps``: a machine-readable
    #: reason for each step ("evicted: next use of X at step 41", ...).
    #: Empty for plans built without provenance; see ``repro.obs``.
    notes: list[str] = field(default_factory=list)
    #: optional device dimension, parallel to ``steps``: the device index
    #: each step runs on.  Empty for single-device plans (all device 0).
    #: ``PeerCopy`` steps are tagged with their *destination* device.
    devices: list[int] = field(default_factory=list)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    # -- device dimension ------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return max(self.devices, default=0) + 1

    def device_of(self, i: int) -> int:
        """Device index of step ``i`` (0 for single-device plans)."""
        return self.devices[i] if self.devices else 0

    def steps_on(self, device: int) -> list[Step]:
        """The steps that execute on one device, in plan order."""
        if not self.devices:
            return list(self.steps) if device == 0 else []
        return [s for s, d in zip(self.steps, self.devices) if d == device]

    # -- accounting -----------------------------------------------------------
    def _accounting(self, graph: OperatorGraph) -> tuple[int, int, int, int]:
        """(h2d, d2h, peer, launch_count) in one pass over the steps.

        The planner queries these sums repeatedly (candidate comparison,
        tracer spans, metrics); a 100k-step plan makes each re-walk
        noticeable.  The cache key is ``(id(graph), len(steps))`` — plans
        are built append-only and then read, so a stale length always
        invalidates, and plans are never re-accounted against a second
        graph in practice (a different graph object misses the cache).
        """
        key = (id(graph), len(self.steps))
        cached = getattr(self, "_acct_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        h2d = d2h = peer = launches = 0
        data = graph.data
        for s in self.steps:
            if isinstance(s, CopyToGPU):
                h2d += data[s.data].size
            elif isinstance(s, CopyToCPU):
                d2h += data[s.data].size
            elif isinstance(s, Launch):
                launches += 1
            elif isinstance(s, PeerCopy):
                peer += data[s.data].size
        acct = (h2d, d2h, peer, launches)
        self._acct_cache = (key, acct)
        return acct

    def h2d_floats(self, graph: OperatorGraph) -> int:
        return self._accounting(graph)[0]

    def d2h_floats(self, graph: OperatorGraph) -> int:
        return self._accounting(graph)[1]

    def peer_floats(self, graph: OperatorGraph) -> int:
        """Floats moved directly between devices (never through the host)."""
        return self._accounting(graph)[2]

    def transfer_floats(self, graph: OperatorGraph) -> int:
        """Total host<->device floats moved: the paper's Table 1 metric.

        Peer (device-to-device) traffic is deliberately excluded — it
        never crosses the host interface; see :meth:`peer_floats`.
        """
        acct = self._accounting(graph)
        return acct[0] + acct[1]

    def launches(self) -> list[str]:
        return [s.op for s in self.steps if isinstance(s, Launch)]

    def summary(self, graph: OperatorGraph) -> dict[str, int]:
        h2d, d2h, peer, launches = self._accounting(graph)
        out = {
            "steps": len(self.steps),
            "launches": launches,
            "h2d_floats": h2d,
            "d2h_floats": d2h,
            "transfer_floats": h2d + d2h,
        }
        if self.devices:
            out["devices"] = self.num_devices
            out["peer_floats"] = peer
        return out

    def pretty(self) -> str:
        if not self.devices:
            return "\n".join(str(s) for s in self.steps)
        return "\n".join(
            f"[gpu{d}] {s}" for s, d in zip(self.steps, self.devices)
        )


def validate_plan(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    capacity_floats: int | Sequence[int] | None = None,
) -> int:
    """Check a plan against the graph; returns peak device usage in floats.

    Raises :class:`PlanError` on: device over-capacity, launching with a
    missing input or unexecuted dependency, copying data that is not
    where the step claims, double-launching, or finishing with a template
    output not in host memory.

    Multi-device plans (``plan.devices`` non-empty) are validated with
    residency and capacity tracked *per device*: every launch needs its
    inputs resident on its own device, a ``PeerCopy`` needs the data on
    ``src`` and not on ``dst``.  ``capacity_floats`` may then be a
    per-device sequence; an ``int`` applies uniformly.  The return value
    is the peak usage across all devices.
    """
    ndev = plan.num_devices
    raw_cap = capacity_floats if capacity_floats is not None else plan.capacity_floats
    if isinstance(raw_cap, Sequence):
        caps = list(raw_cap)
        if len(caps) < ndev:
            raise PlanError(
                f"capacity given for {len(caps)} devices, plan uses {ndev}"
            )
    else:
        caps = [raw_cap] * ndev
    if plan.devices and len(plan.devices) != len(plan.steps):
        raise PlanError(
            f"devices list length {len(plan.devices)} != steps {len(plan.steps)}"
        )
    # per-device residency: on_gpu[dev] maps data name -> size in floats
    on_gpu: list[dict[str, int]] = [dict() for _ in range(ndev)]
    on_cpu: set[str] = {
        d for d, ds in graph.data.items() if ds.is_input and not ds.virtual
    }
    executed: set[str] = set()
    peak = 0
    used = [0] * ndev
    for i, step in enumerate(plan.steps):
        dev = plan.device_of(i)
        if not 0 <= dev < ndev:  # pragma: no cover - defensive
            raise PlanError(f"step {i}: device index {dev} out of range")
        if isinstance(step, CopyToGPU):
            d = step.data
            if d in on_gpu[dev]:
                raise PlanError(f"step {i}: h2d of {d!r} already on device {dev}")
            if d not in on_cpu:
                raise PlanError(f"step {i}: h2d of {d!r} not in host memory")
            size = graph.data[d].size
            on_gpu[dev][d] = size
            used[dev] += size
        elif isinstance(step, CopyToCPU):
            d = step.data
            if d not in on_gpu[dev]:
                raise PlanError(f"step {i}: d2h of {d!r} not on device {dev}")
            on_cpu.add(d)
        elif isinstance(step, PeerCopy):
            d = step.data
            if not (0 <= step.src < ndev and 0 <= step.dst < ndev):
                raise PlanError(
                    f"step {i}: p2p of {d!r} between invalid devices "
                    f"{step.src}->{step.dst} (plan has {ndev})"
                )
            if step.src == step.dst:
                raise PlanError(f"step {i}: p2p of {d!r} to same device {step.src}")
            if d not in on_gpu[step.src]:
                raise PlanError(
                    f"step {i}: p2p of {d!r} not on source device {step.src}"
                )
            if d in on_gpu[step.dst]:
                raise PlanError(
                    f"step {i}: p2p of {d!r} already on device {step.dst}"
                )
            size = graph.data[d].size
            on_gpu[step.dst][d] = size
            used[step.dst] += size
        elif isinstance(step, Free):
            d = step.data
            if d not in on_gpu[dev]:
                raise PlanError(f"step {i}: free of {d!r} not on device {dev}")
            used[dev] -= on_gpu[dev].pop(d)
        elif isinstance(step, Launch):
            op = graph.ops.get(step.op)
            if op is None:
                raise PlanError(f"step {i}: unknown operator {step.op!r}")
            if step.op in executed:
                raise PlanError(f"step {i}: operator {step.op!r} launched twice")
            for p in graph.op_predecessors(step.op):
                if p not in executed:
                    raise PlanError(
                        f"step {i}: {step.op!r} launched before dependency {p!r}"
                    )
            for d in op.inputs:
                if d not in on_gpu[dev]:
                    raise PlanError(
                        f"step {i}: {step.op!r} input {d!r} not resident "
                        f"on device {dev}"
                    )
            for d in op.outputs:
                if d in on_gpu[dev]:
                    raise PlanError(
                        f"step {i}: {step.op!r} output {d!r} already resident"
                    )
                size = graph.data[d].size
                on_gpu[dev][d] = size
                used[dev] += size
                on_cpu.discard(d)  # device result supersedes any host copy
            executed.add(step.op)
        else:  # pragma: no cover - defensive
            raise PlanError(f"step {i}: unknown step type {type(step).__name__}")
        for k in (step.src, step.dst) if isinstance(step, PeerCopy) else (dev,):
            if caps[k] and used[k] > caps[k]:
                raise PlanError(
                    f"step {i}: device {k} memory {used[k]} floats exceeds "
                    f"capacity {caps[k]}"
                )
            peak = max(peak, used[k])
    missing_ops = set(graph.ops) - executed
    if missing_ops:
        raise PlanError(f"plan never executes {sorted(missing_ops)[:5]} ...")
    for d, ds in graph.data.items():
        if ds.is_output and not ds.virtual and d not in on_cpu:
            raise PlanError(f"template output {d!r} not in host memory at end")
    return peak
