"""Execution plans.

"The execution sequence of operators on the GPU, and data transfers to
and from the GPU memory, is referred to as an execution plan" (Section
3.3.2, example).  A plan is a flat list of typed steps:

* ``CopyToGPU(data)`` — host-to-device transfer (allocates on device)
* ``CopyToCPU(data)`` — device-to-host transfer (device copy remains)
* ``Launch(op)``      — execute one offload unit; allocates its outputs
* ``Free(data)``      — release the device copy without transferring

Plans are validated symbolically (:func:`validate_plan`) before they are
handed to the code generator or the simulator-backed executor: memory
stays within capacity at every step, every launch has its inputs
resident and its dependencies executed, and every template output ends
up in host memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .graph import OperatorGraph


class PlanError(RuntimeError):
    """An execution plan violates feasibility or correctness invariants."""


@dataclass(frozen=True)
class Step:
    """Base class for plan steps."""


@dataclass(frozen=True)
class CopyToGPU(Step):
    data: str

    def __str__(self) -> str:
        return f"h2d  {self.data}"


@dataclass(frozen=True)
class CopyToCPU(Step):
    data: str

    def __str__(self) -> str:
        return f"d2h  {self.data}"


@dataclass(frozen=True)
class Launch(Step):
    op: str

    def __str__(self) -> str:
        return f"exec {self.op}"


@dataclass(frozen=True)
class Free(Step):
    data: str

    def __str__(self) -> str:
        return f"free {self.data}"


@dataclass
class ExecutionPlan:
    """An ordered offload/transfer schedule for one template + device."""

    steps: list[Step] = field(default_factory=list)
    capacity_floats: int = 0
    label: str = ""
    #: optional provenance, parallel to ``steps``: a machine-readable
    #: reason for each step ("evicted: next use of X at step 41", ...).
    #: Empty for plans built without provenance; see ``repro.obs``.
    notes: list[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    # -- accounting -----------------------------------------------------------
    def h2d_floats(self, graph: OperatorGraph) -> int:
        return sum(
            graph.data[s.data].size for s in self.steps if isinstance(s, CopyToGPU)
        )

    def d2h_floats(self, graph: OperatorGraph) -> int:
        return sum(
            graph.data[s.data].size for s in self.steps if isinstance(s, CopyToCPU)
        )

    def transfer_floats(self, graph: OperatorGraph) -> int:
        """Total floats moved either way: the paper's Table 1 metric."""
        return self.h2d_floats(graph) + self.d2h_floats(graph)

    def launches(self) -> list[str]:
        return [s.op for s in self.steps if isinstance(s, Launch)]

    def summary(self, graph: OperatorGraph) -> dict[str, int]:
        return {
            "steps": len(self.steps),
            "launches": len(self.launches()),
            "h2d_floats": self.h2d_floats(graph),
            "d2h_floats": self.d2h_floats(graph),
            "transfer_floats": self.transfer_floats(graph),
        }

    def pretty(self) -> str:
        return "\n".join(str(s) for s in self.steps)


def validate_plan(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    capacity_floats: int | None = None,
) -> int:
    """Check a plan against the graph; returns peak device usage in floats.

    Raises :class:`PlanError` on: device over-capacity, launching with a
    missing input or unexecuted dependency, copying data that is not
    where the step claims, double-launching, or finishing with a template
    output not in host memory.
    """
    cap = capacity_floats if capacity_floats is not None else plan.capacity_floats
    on_gpu: dict[str, int] = {}
    on_cpu: set[str] = {
        d for d, ds in graph.data.items() if ds.is_input and not ds.virtual
    }
    executed: set[str] = set()
    peak = 0
    used = 0
    for i, step in enumerate(plan.steps):
        if isinstance(step, CopyToGPU):
            d = step.data
            if d in on_gpu:
                raise PlanError(f"step {i}: h2d of {d!r} already on device")
            if d not in on_cpu:
                raise PlanError(f"step {i}: h2d of {d!r} not in host memory")
            size = graph.data[d].size
            on_gpu[d] = size
            used += size
        elif isinstance(step, CopyToCPU):
            d = step.data
            if d not in on_gpu:
                raise PlanError(f"step {i}: d2h of {d!r} not on device")
            on_cpu.add(d)
        elif isinstance(step, Free):
            d = step.data
            if d not in on_gpu:
                raise PlanError(f"step {i}: free of {d!r} not on device")
            used -= on_gpu.pop(d)
        elif isinstance(step, Launch):
            op = graph.ops.get(step.op)
            if op is None:
                raise PlanError(f"step {i}: unknown operator {step.op!r}")
            if step.op in executed:
                raise PlanError(f"step {i}: operator {step.op!r} launched twice")
            for p in graph.op_predecessors(step.op):
                if p not in executed:
                    raise PlanError(
                        f"step {i}: {step.op!r} launched before dependency {p!r}"
                    )
            for d in op.inputs:
                if d not in on_gpu:
                    raise PlanError(
                        f"step {i}: {step.op!r} input {d!r} not resident"
                    )
            for d in op.outputs:
                if d in on_gpu:
                    raise PlanError(
                        f"step {i}: {step.op!r} output {d!r} already resident"
                    )
                size = graph.data[d].size
                on_gpu[d] = size
                used += size
                on_cpu.discard(d)  # device result supersedes any host copy
            executed.add(step.op)
        else:  # pragma: no cover - defensive
            raise PlanError(f"step {i}: unknown step type {type(step).__name__}")
        if cap and used > cap:
            raise PlanError(
                f"step {i}: device memory {used} floats exceeds capacity {cap}"
            )
        peak = max(peak, used)
    missing_ops = set(graph.ops) - executed
    if missing_ops:
        raise PlanError(f"plan never executes {sorted(missing_ops)[:5]} ...")
    for d, ds in graph.data.items():
        if ds.is_output and not ds.virtual and d not in on_cpu:
            raise PlanError(f"template output {d!r} not in host memory at end")
    return peak
