"""Serialization of graphs and execution plans (JSON).

An execution plan is the compiler's product; persisting it decouples
compilation from execution ("compile once, deploy to the runtime
library"), enables inspection/diffing of plans, and gives the generated
programs a stable sidecar format.  Everything the executor needs — the
split graph (including slot/out-spec region metadata) and the step
sequence — round-trips losslessly.

Fused offload units carry a private sub-graph in their params; it is
serialized recursively.

Versioning
----------
Serialized plans carry a ``schema_version`` of the form
``"<major>.<minor>"`` (:data:`SCHEMA_VERSION`).  The loader accepts any
minor of the current major — minors are additive (new optional keys),
so a reader of minor N understands every minor of the same major — and
rejects other majors with an actionable error.  Plans written before
versioning existed (no ``schema_version`` key) are read as ``"1.0"``.

Bump the *minor* when adding optional keys; bump the *major* when a key
changes meaning or is removed.  After a schema bump, regenerate the
golden fixtures once (``REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest
tests/test_golden_plans.py``) and commit them with the change — see
docs/TESTING.md.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from .graph import OperatorGraph, OutSpec, Slot

if TYPE_CHECKING:  # avoid a cycle: framework -> plancache -> serialize
    from .framework import CompiledTemplate
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, PeerCopy, Step

FORMAT_VERSION = 1

SCHEMA_MAJOR = 1
SCHEMA_MINOR = 1
SCHEMA_VERSION = f"{SCHEMA_MAJOR}.{SCHEMA_MINOR}"


def _check_schema_version(raw: dict[str, Any]) -> None:
    """Validate a plan dict's ``schema_version`` against the reader's."""
    version = raw.get("schema_version", "1.0")
    try:
        major = int(str(version).split(".", 1)[0])
    except ValueError:
        raise ValueError(
            f"malformed plan schema_version {version!r} "
            f"(expected '<major>.<minor>', e.g. {SCHEMA_VERSION!r})"
        ) from None
    if major != SCHEMA_MAJOR:
        raise ValueError(
            f"plan was written with schema version {version} but this "
            f"reader supports major {SCHEMA_MAJOR} ({SCHEMA_VERSION}); "
            f"re-compile the template with this version of repro, or load "
            f"the plan with a repro release whose schema major is {major}"
        )

_STEP_TYPES = {
    "h2d": CopyToGPU,
    "d2h": CopyToCPU,
    "exec": Launch,
    "free": Free,
}


# ---------------------------------------------------------------------------
# Graph <-> dict
# ---------------------------------------------------------------------------
def _params_to_dict(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in params.items():
        if key == "slots":
            out[key] = [
                {"root": s.root, "rows": s.rows, "chunks": list(s.chunks)}
                for s in value
            ]
        elif key == "out_specs":
            out[key] = [
                {
                    "root": s.root,
                    "rng": list(s.rng),
                    "chunks": [[n, list(r)] for n, r in s.chunks],
                }
                for s in value
            ]
        elif key == "subgraph":
            out[key] = graph_to_dict(value)
        else:
            out[key] = value
    return out


def _params_from_dict(raw: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in raw.items():
        if key == "slots":
            out[key] = [
                Slot(
                    root=s["root"],
                    rows=tuple(s["rows"]) if s["rows"] is not None else None,
                    chunks=list(s["chunks"]),
                )
                for s in value
            ]
        elif key == "out_specs":
            out[key] = [
                OutSpec(
                    root=s["root"],
                    rng=tuple(s["rng"]),
                    chunks=[(n, tuple(r)) for n, r in s["chunks"]],
                )
                for s in value
            ]
        elif key == "subgraph":
            out[key] = graph_from_dict(value)
        elif key in ("out_range",) and value is not None:
            out[key] = tuple(value)
        else:
            out[key] = value
    return out


def graph_to_dict(graph: OperatorGraph) -> dict[str, Any]:
    return {
        "name": graph.name,
        "data": [
            {
                "name": ds.name,
                "shape": list(ds.shape),
                "is_input": ds.is_input,
                "is_output": ds.is_output,
                "parent": ds.parent,
                "row_range": list(ds.row_range) if ds.row_range else None,
                "virtual": ds.virtual,
            }
            for ds in graph.data.values()
        ],
        "ops": [
            {
                "name": op.name,
                "kind": op.kind,
                "inputs": list(op.inputs),
                "outputs": list(op.outputs),
                "params": _params_to_dict(op.params),
            }
            for op in graph.ops.values()
        ],
    }


def graph_from_dict(raw: dict[str, Any]) -> OperatorGraph:
    g = OperatorGraph(raw["name"])
    for d in raw["data"]:
        g.add_data(
            d["name"],
            tuple(d["shape"]),
            is_input=d["is_input"],
            is_output=d["is_output"],
            parent=d["parent"],
            row_range=tuple(d["row_range"]) if d["row_range"] else None,
            virtual=d["virtual"],
        )
    for o in raw["ops"]:
        g.add_operator(
            o["name"],
            o["kind"],
            o["inputs"],
            o["outputs"],
            **_params_from_dict(o["params"]),
        )
    return g


# ---------------------------------------------------------------------------
# Plan <-> dict
# ---------------------------------------------------------------------------
def plan_to_dict(plan: ExecutionPlan) -> dict[str, Any]:
    steps = []
    for step in plan.steps:
        if isinstance(step, Launch):
            steps.append(["exec", step.op])
        elif isinstance(step, CopyToGPU):
            steps.append(["h2d", step.data])
        elif isinstance(step, CopyToCPU):
            steps.append(["d2h", step.data])
        elif isinstance(step, Free):
            steps.append(["free", step.data])
        elif isinstance(step, PeerCopy):
            steps.append(["p2p", step.data, step.src, step.dst])
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {type(step).__name__}")
    out: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "capacity_floats": plan.capacity_floats,
        "label": plan.label,
        "steps": steps,
    }
    if plan.notes:
        out["notes"] = list(plan.notes)
    if plan.devices:
        out["devices"] = list(plan.devices)
    return out


def plan_from_dict(raw: dict[str, Any]) -> ExecutionPlan:
    _check_schema_version(raw)
    steps: list[Step] = []
    for entry in raw["steps"]:
        kind, arg = entry[0], entry[1]
        if kind == "p2p":
            steps.append(PeerCopy(arg, entry[2], entry[3]))
        else:
            steps.append(_STEP_TYPES[kind](arg))
    return ExecutionPlan(
        steps=steps,
        capacity_floats=raw["capacity_floats"],
        label=raw.get("label", ""),
        notes=list(raw.get("notes", [])),
        devices=list(raw.get("devices", [])),
    )


# ---------------------------------------------------------------------------
# Compiled template <-> file
# ---------------------------------------------------------------------------
def compiled_to_dict(compiled: CompiledTemplate) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "device": {
            "name": compiled.device.name,
            "memory_bytes": compiled.device.memory_bytes,
        },
        "graph": graph_to_dict(compiled.graph),
        "plan": plan_to_dict(compiled.plan),
        "op_order": list(compiled.op_order),
        "peak_device_floats": compiled.peak_device_floats,
    }


def save_plan(compiled: CompiledTemplate, path: str) -> None:
    """Write a compiled template (graph + plan) as JSON."""
    with open(path, "w") as fh:
        json.dump(compiled_to_dict(compiled), fh, indent=1)


def load_plan(path: str) -> tuple[OperatorGraph, ExecutionPlan]:
    """Read a compiled template back; returns (graph, plan)."""
    with open(path) as fh:
        raw = json.load(fh)
    if raw.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format {raw.get('format_version')!r}"
        )
    return graph_from_dict(raw["graph"]), plan_from_dict(raw["plan"])
