"""Exact offload and data-transfer scheduling (Section 3.3.2, Figure 5).

Encodes the paper's Pseudo-Boolean optimisation problem over our
from-scratch PB solver (:mod:`repro.pb`) and decodes the optimal model
back into an :class:`~repro.core.plan.ExecutionPlan`.

Variables (exactly the paper's):

* ``x[i,t]``            operator *i* executes at time step *t*
* ``g[j,t]`` / ``c[j,t]``  data *j* present in GPU / CPU memory at *t*
* ``Copy_to_GPU[j,t]`` / ``Copy_to_CPU[j,t]``  transfers during step *t*
* ``done[i,t]`` / ``dead[j,t]``  execution / liveness bookkeeping

Constraints (1)-(19) follow Figure 5.  Two consistency constraints that
the condensed figure leaves implicit are added so decoded plans are
physically executable (they do not change the optimum, since transfers
are never cheaper with them removed):

* ``Copy_to_GPU[j,t] -> c[j,t-1]``  (can only upload data the host holds)
* ``Copy_to_CPU[j,t] -> g[j,t-1]``  (can only download resident data)

As the paper notes, the encoding is O(N^2 M) and only practical for
graphs up to a few tens of operators; the heuristics in
:mod:`repro.core.scheduling` / :mod:`repro.core.transfers` cover the
rest.  Data sizes are rescaled by their GCD to keep the counter
encodings small, mirroring MiniSAT+ usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.pb import PBSolver

from .graph import OperatorGraph
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, Step, validate_plan


class PBInfeasibleError(RuntimeError):
    """The formulation admits no schedule (within the given bound)."""


class PBTimeoutError(RuntimeError):
    """The conflict budget ran out before any feasible model was found."""


@dataclass
class PBScheduleResult:
    """Optimal plan plus solver statistics."""

    plan: ExecutionPlan
    transfer_floats: int
    op_order: list[str]
    solve_calls: int
    num_vars: int
    num_constraints: int
    #: "pb" (proven optimal), "pb-incumbent" (budget ran out, best model
    #: kept) or "heuristic" (fell back to the DFS + Belady pipeline)
    source: str = "pb"

    @property
    def optimal(self) -> bool:
        return self.source == "pb"


@dataclass
class _Vars:
    x: dict[tuple[int, int], int] = field(default_factory=dict)
    g: dict[tuple[int, int], int] = field(default_factory=dict)
    c: dict[tuple[int, int], int] = field(default_factory=dict)
    cpg: dict[tuple[int, int], int] = field(default_factory=dict)
    cpc: dict[tuple[int, int], int] = field(default_factory=dict)
    done: dict[tuple[int, int], int] = field(default_factory=dict)
    dead: dict[tuple[int, int], int] = field(default_factory=dict)


class PBScheduler:
    """Builds and solves the Figure-5 formulation for one template.

    ``fixed_order`` pins the operator schedule (only transfers are then
    optimised — the paper's observation that with a known operator
    schedule the formulation shrinks to O(NM) and scales further).
    ASAP/ALAP time windows derived from the dependency structure prune
    the free-schedule search space.
    """

    def __init__(
        self,
        graph: OperatorGraph,
        capacity_floats: int,
        fixed_order: list[str] | None = None,
        *,
        record_opb: bool = False,
    ) -> None:
        self.graph = graph
        self.capacity = capacity_floats
        self.fixed_order = fixed_order
        self.record_opb = record_opb
        self.ops = list(fixed_order) if fixed_order else list(graph.ops)
        if fixed_order is not None and set(fixed_order) != set(graph.ops):
            raise ValueError("fixed_order must cover exactly the graph's operators")
        self.datas = [d for d, ds in graph.data.items() if not ds.virtual]
        self.N = len(self.ops)
        sizes = [graph.data[d].size for d in self.datas]
        self.scale = math.gcd(*sizes) if sizes else 1
        self.D = {
            d: graph.data[d].size // self.scale for d in self.datas
        }
        self.cap_scaled = capacity_floats // self.scale
        self.solver = PBSolver(record=record_opb)
        self.v = _Vars()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        s, v = self.solver, self.v
        graph, ops, datas, N = self.graph, self.ops, self.datas, self.N
        IA = {
            (i, j): datas[j] in set(graph.ops[ops[i]].inputs)
            for i in range(N)
            for j in range(len(datas))
        }
        OA = {
            (i, j): datas[j] in set(graph.ops[ops[i]].outputs)
            for i in range(N)
            for j in range(len(datas))
        }
        self._IA, self._OA = IA, OA
        M = len(datas)
        T = range(1, N + 1)
        for i in range(N):
            for t in T:
                v.x[i, t] = s.new_var()
            for t in range(0, N + 1):
                v.done[i, t] = s.new_var()
        for j in range(M):
            for t in range(0, N + 1):
                v.g[j, t] = s.new_var()
            for t in range(0, N + 2):
                v.c[j, t] = s.new_var()
            for t in range(1, N + 1):
                v.cpg[j, t] = s.new_var()
            for t in range(1, N + 2):
                v.cpc[j, t] = s.new_var()
            for t in range(1, N + 2):
                v.dead[j, t] = s.new_var()
        if self.fixed_order is not None:
            # Pin the schedule: operator at position t-1 runs at step t.
            for t, o in enumerate(self.ops, start=1):
                for i in range(N):
                    s.add_clause(
                        [v.x[i, t]] if i == t - 1 else [-v.x[i, t]]
                    )
        else:
            # ASAP/ALAP windows: an operator cannot run before all its
            # (transitive) predecessors nor after N minus its descendants.
            name_idx = {o: i for i, o in enumerate(ops)}
            anc = {o: 0 for o in ops}
            desc = {o: 0 for o in ops}
            anc_sets: dict[str, set[str]] = {}
            for o in graph.topological_order():
                sset: set[str] = set()
                for p in graph.op_predecessors(o):
                    sset |= anc_sets[p]
                    sset.add(p)
                anc_sets[o] = sset
                anc[o] = len(sset)
            for o, sset in anc_sets.items():
                for p in sset:
                    desc[p] += 1
            for o in ops:
                i = name_idx[o]
                asap = anc[o] + 1
                alap = N - desc[o]
                for t in T:
                    if t < asap or t > alap:
                        s.add_clause([-v.x[i, t]])
            # (1) exactly one operator per time step
            for t in T:
                s.exactly_one([v.x[i, t] for i in range(N)])
            # (2) every operator exactly once
            for i in range(N):
                s.exactly_one([v.x[i, t] for t in T])
            # (3) precedence: a predecessor never runs after its dependant
            for o in ops:
                i2 = name_idx[o]
                for p in graph.op_predecessors(o):
                    i1 = name_idx[p]
                    for t1 in T:
                        for t2 in T:
                            if t1 > t2:
                                s.add_clause([-v.x[i1, t1], -v.x[i2, t2]])
        # (4) GPU memory capacity at every step
        for t in range(0, N + 1):
            s.add_leq(
                [(self.D[datas[j]], v.g[j, t]) for j in range(M)],
                self.cap_scaled,
            )
        # (5) inputs and outputs resident while the operator runs
        for i in range(N):
            for j in range(M):
                if IA[i, j] or OA[i, j]:
                    for t in T:
                        s.add_clause([-v.x[i, t], v.g[j, t]])
        # (6) a missing input must be copied in
        for i in range(N):
            for j in range(M):
                if IA[i, j]:
                    for t in T:
                        s.add_clause(
                            [-v.x[i, t], v.g[j, t - 1], v.cpg[j, t]]
                        )
        # (7) copying to the GPU makes the data resident
        for j in range(M):
            for t in T:
                s.add_clause([-v.cpg[j, t], v.g[j, t]])
        # (8) GPU persistence: residency has a legal cause
        for j in range(M):
            for t in T:
                clause = [-v.g[j, t], v.g[j, t - 1], v.cpg[j, t]]
                clause += [v.x[i, t] for i in range(N) if OA[i, j]]
                s.add_clause(clause)
        # (9) producing on the GPU invalidates the host copy
        for i in range(N):
            for j in range(M):
                if OA[i, j]:
                    for t in T:
                        s.add_clause(
                            [-v.x[i, t], v.cpc[j, t + 1], -v.c[j, t + 1]]
                        )
        # (10) CPU persistence: host copies appear only via Copy_to_CPU
        for j in range(M):
            for t in range(0, N + 1):
                s.add_clause([v.c[j, t], v.cpc[j, t + 1], -v.c[j, t + 1]])
        # consistency completions (see module docstring)
        for j in range(M):
            for t in range(1, N + 1):
                s.add_clause([-v.cpg[j, t], v.c[j, t - 1]])
            for t in range(1, N + 2):
                s.add_clause([-v.cpc[j, t], v.g[j, t - 1]])
                # a successful copy leaves a host copy
                if t <= N + 1:
                    s.add_clause([-v.cpc[j, t], v.c[j, t]])
        # (11) initially all data on the CPU, (12) none on the GPU
        for j in range(M):
            s.add_clause([v.c[j, 0]])
            s.add_clause([-v.g[j, 0]])
        # (13) template outputs on the CPU at the end
        for j, d in enumerate(datas):
            if graph.data[d].is_output:
                s.add_clause([v.c[j, N + 1]])
        # (14-16) done bookkeeping (as equivalences)
        for i in range(N):
            s.add_clause([-v.done[i, 0]])
            for t in T:
                s.add_clause([-v.x[i, t], v.done[i, t]])
                s.add_clause([-v.done[i, t - 1], v.done[i, t]])
                s.add_clause(
                    [-v.done[i, t], v.x[i, t], v.done[i, t - 1]]
                )
        # (17-18) dead bookkeeping
        consumers = {
            j: [i for i in range(N) if IA[i, j]] for j in range(M)
        }
        for j, d in enumerate(datas):
            s.add_clause([-v.dead[j, 1]])
            if graph.data[d].is_output:
                for t in range(1, N + 2):
                    s.add_clause([-v.dead[j, t]])
                continue
            for t in range(1, N + 1):
                # dead[t+1] <-> dead[t] or all consumers done at t
                all_done = s.new_var()
                for i in consumers[j]:
                    s.add_clause([-all_done, v.done[i, t]])
                s.add_clause(
                    [all_done] + [-v.done[i, t] for i in consumers[j]]
                )
                s.add_clause([-v.dead[j, t], v.dead[j, t + 1]])
                s.add_clause([-all_done, v.dead[j, t + 1]])
                s.add_clause([-v.dead[j, t + 1], v.dead[j, t], all_done])
        # (19) live data must exist somewhere
        for j in range(M):
            for t in range(1, N + 1):
                s.add_clause([v.dead[j, t], v.c[j, t], v.g[j, t]])

    # ------------------------------------------------------------------
    def solve(
        self,
        upper_bound_floats: int | None = None,
        conflict_budget: int | None = None,
    ) -> PBScheduleResult:
        """Minimise total transfer volume; decode the optimal model.

        ``upper_bound_floats`` (e.g. the heuristic plan's volume) seeds
        the descent.  ``conflict_budget`` caps total solver effort: if it
        runs out with an incumbent the (feasible, possibly sub-optimal)
        incumbent is decoded with ``source="pb-incumbent"``; if it runs
        out before any model, :class:`PBTimeoutError` is raised.
        """
        v, datas = self.v, self.datas
        objective = []
        for j, d in enumerate(datas):
            w = self.D[d]
            for t in range(1, self.N + 1):
                objective.append((w, v.cpg[j, t]))
            for t in range(1, self.N + 2):
                objective.append((w, v.cpc[j, t]))
        ub = (
            upper_bound_floats // self.scale
            if upper_bound_floats is not None
            else None
        )
        if self.fixed_order is None:
            # Warm-start hints: prefer a heuristic-schedule assignment.
            from .scheduling import dfs_schedule

            hint = dfs_schedule(self.graph)
            name_idx = {o: i for i, o in enumerate(self.ops)}
            for t, o in enumerate(hint, start=1):
                self.solver.suggest(v.x[name_idx[o], t], weight=2.0)
        result = self.solver.minimize(
            objective, upper_bound=ub, conflict_budget=conflict_budget
        )
        if result.status == "timeout" and result.model is None:
            raise PBTimeoutError(
                f"PB solve exhausted its conflict budget ({conflict_budget}) "
                "before finding any feasible schedule"
            )
        if result.status == "unsat":
            raise PBInfeasibleError(
                "PB formulation unsatisfiable: template cannot execute "
                f"within {self.capacity} floats of device memory"
                + (" under the given upper bound" if ub is not None else "")
            )
        plan, order = self._decode(result.model)
        validate_plan(plan, self.graph, self.capacity)
        return PBScheduleResult(
            plan=plan,
            transfer_floats=result.value * self.scale,
            op_order=order,
            solve_calls=result.solve_calls,
            num_vars=self.solver.num_vars,
            num_constraints=self.solver.num_constraints,
            source="pb" if result.status == "optimal" else "pb-incumbent",
        )

    def _decode(self, model: dict[int, bool]) -> tuple[ExecutionPlan, list[str]]:
        v, datas, ops = self.v, self.datas, self.ops
        steps: list[Step] = []
        order: list[str] = []
        for t in range(1, self.N + 1):
            for j, d in enumerate(datas):
                if model[v.cpc[j, t]]:
                    steps.append(CopyToCPU(d))
            for j, d in enumerate(datas):
                if model[v.g[j, t - 1]] and not model[v.g[j, t]]:
                    steps.append(Free(d))
            for j, d in enumerate(datas):
                if model[v.cpg[j, t]]:
                    steps.append(CopyToGPU(d))
            for i, o in enumerate(ops):
                if model[v.x[i, t]]:
                    steps.append(Launch(o))
                    order.append(o)
        for j, d in enumerate(datas):
            if model[v.cpc[j, self.N + 1]]:
                steps.append(CopyToCPU(d))
        for j, d in enumerate(datas):
            if model[v.g[j, self.N]]:
                steps.append(Free(d))
        return (
            ExecutionPlan(
                steps=steps, capacity_floats=self.capacity, label="pb-optimal"
            ),
            order,
        )


def _objective_terms(sched: "PBScheduler") -> list:
    v, datas = sched.v, sched.datas
    objective = []
    for j, d in enumerate(datas):
        w = sched.D[d]
        for t in range(1, sched.N + 1):
            objective.append((w, v.cpg[j, t]))
        for t in range(1, sched.N + 2):
            objective.append((w, v.cpc[j, t]))
    return objective


def export_opb(graph: OperatorGraph, capacity_floats: int) -> str:
    """Export the Figure-5 formulation of a template as OPB text.

    The instance can be fed to any OPB-compliant solver (the MiniSAT+
    family the paper used) for independent cross-checking; objective
    values are in GCD-scaled size units (multiply by the printed scale).
    """
    from repro.pb import dumps_opb

    sched = PBScheduler(graph, capacity_floats, record_opb=True)
    inst = sched.solver.to_instance(objective=_objective_terms(sched))
    header = (
        f"* Figure-5 formulation of template {graph.name!r}\n"
        f"* capacity {capacity_floats} floats, size unit = {sched.scale} floats\n"
    )
    return header + dumps_opb(inst)


def pb_optimal_plan(
    graph: OperatorGraph,
    capacity_floats: int,
    *,
    fixed_order: list[str] | None = None,
    upper_bound_floats: int | None = None,
    seed_from_heuristic: bool = True,
    tracer=None,
) -> PBScheduleResult:
    """Solve the Figure-5 formulation exactly (small templates only).

    By default the heuristic pipeline's transfer volume is computed first
    and used as the descent's upper bound, which is both the practical
    MiniSAT+ usage pattern and a proof that PB <= heuristic.  Pass a
    :class:`repro.obs.Tracer` to record the solve as a
    ``pb_optimisation`` span carrying the solver statistics.
    """
    from repro.obs import Tracer

    tracer = tracer or Tracer()
    with tracer.span(
        "pb_optimisation",
        capacity_floats=capacity_floats,
        fixed_order=fixed_order is not None,
    ) as sp:
        if upper_bound_floats is None and seed_from_heuristic:
            from .scheduling import dfs_schedule
            from .transfers import schedule_transfers

            with tracer.span("pb_upper_bound") as ub:
                order = fixed_order or dfs_schedule(graph)
                plan = schedule_transfers(graph, order, capacity_floats)
                upper_bound_floats = plan.transfer_floats(graph)
                ub.set(upper_bound_floats=upper_bound_floats)
        result = PBScheduler(graph, capacity_floats, fixed_order).solve(
            upper_bound_floats
        )
        sp.set(
            solve_calls=result.solve_calls,
            num_vars=result.num_vars,
            num_constraints=result.num_constraints,
            transfer_floats=result.transfer_floats,
        )
    return result


def pb_plan_or_heuristic(
    graph: OperatorGraph,
    capacity_floats: int,
    *,
    conflict_budget: int | None = None,
    fixed_order: list[str] | None = None,
    tracer=None,
) -> PBScheduleResult:
    """PB-optimal plan with a guaranteed heuristic fallback.

    The production-safe entry point to the Figure-5 solver: try the
    exact formulation under ``conflict_budget``; on timeout keep the
    feasible incumbent if one exists; on timeout-without-model or on an
    infeasible *formulation* (the time-indexed encoding is more rigid
    than the greedy pipeline, e.g. its whole-data-structure residency
    can exceed capacity where chunk-wise streaming fits), fall back to
    the heuristic DFS + Belady schedule.  Check ``result.source`` for
    which path produced the plan.
    """
    from repro.obs import Tracer

    tracer = tracer or Tracer()
    try:
        with tracer.span(
            "pb_or_heuristic", capacity_floats=capacity_floats
        ) as sp:
            if conflict_budget is None:
                result = pb_optimal_plan(
                    graph, capacity_floats, fixed_order=fixed_order,
                    tracer=tracer,
                )
            else:
                from .scheduling import dfs_schedule
                from .transfers import schedule_transfers

                order = fixed_order or dfs_schedule(graph)
                seed = schedule_transfers(graph, order, capacity_floats)
                result = PBScheduler(
                    graph, capacity_floats, fixed_order
                ).solve(
                    seed.transfer_floats(graph),
                    conflict_budget=conflict_budget,
                )
            sp.set(source=result.source)
            return result
    except (PBInfeasibleError, PBTimeoutError) as exc:
        from .scheduling import dfs_schedule
        from .transfers import schedule_transfers

        with tracer.span(
            "pb_fallback_heuristic", reason=type(exc).__name__
        ) as sp:
            order = fixed_order or dfs_schedule(graph)
            plan = schedule_transfers(graph, order, capacity_floats)
            validate_plan(plan, graph, capacity_floats)
            sp.set(transfer_floats=plan.transfer_floats(graph))
        return PBScheduleResult(
            plan=plan,
            transfer_floats=plan.transfer_floats(graph),
            op_order=list(order),
            solve_calls=0,
            num_vars=0,
            num_constraints=0,
            source="heuristic",
        )


def linear_extensions(graph: OperatorGraph, limit: int = 100_000):
    """Yield topological orders of the operator graph (up to ``limit``)."""
    preds = {o: set(graph.op_predecessors(o)) for o in graph.ops}
    succs = {o: graph.op_successors(o) for o in graph.ops}
    count = 0
    order: list[str] = []
    indeg = {o: len(preds[o]) for o in graph.ops}
    ready = [o for o in graph.ops if indeg[o] == 0]

    def rec():
        nonlocal count
        if count >= limit:
            return
        if len(order) == len(graph.ops):
            count += 1
            yield list(order)
            return
        for o in list(ready):
            ready.remove(o)
            order.append(o)
            opened = []
            for s in succs[o]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
                    opened.append(s)
            yield from rec()
            for s in opened:
                ready.remove(s)
            for s in succs[o]:
                indeg[s] += 1
            order.pop()
            ready.append(o)
            if count >= limit:
                return

    yield from rec()


def pb_joint_optimum(
    graph: OperatorGraph,
    capacity_floats: int,
    *,
    max_orders: int = 5000,
) -> PBScheduleResult:
    """Exact joint schedule+transfer optimum by enumerating schedules.

    Solves the fixed-order formulation (cheap, O(NM)) for every linear
    extension, tightening the upper bound as it goes — each subsequent
    order must strictly beat the incumbent or prove it cannot.  Exact
    when the graph has at most ``max_orders`` linear extensions; raises
    otherwise (use the free-schedule :func:`pb_optimal_plan` or the
    heuristics for larger graphs).
    """
    from .scheduling import dfs_schedule
    from .transfers import schedule_transfers

    heuristic_order = dfs_schedule(graph)
    best_bound = schedule_transfers(
        graph, heuristic_order, capacity_floats
    ).transfer_floats(graph)
    best: PBScheduleResult | None = None
    n_orders = 0
    for order in linear_extensions(graph, limit=max_orders + 1):
        n_orders += 1
        if n_orders > max_orders:
            raise RuntimeError(
                f"graph has more than {max_orders} linear extensions; "
                "joint enumeration is not exact here"
            )
        target = best_bound if best is None else best.transfer_floats - 1
        if target < 0:
            break
        try:
            res = PBScheduler(graph, capacity_floats, list(order)).solve(target)
        except PBInfeasibleError:
            continue
        if best is None or res.transfer_floats < best.transfer_floats:
            best = res
    if best is None:
        # The heuristic bound itself was not achievable by any order at
        # <= bound, which cannot happen (the heuristic plan is feasible);
        # defensive fallback: solve the heuristic order unbounded.
        best = PBScheduler(graph, capacity_floats, heuristic_order).solve(None)
    return best
