"""The framework's core compilation pipeline (the paper's contribution).

Operator-graph IR, operator splitting, offload-unit identification,
operator scheduling, data-transfer scheduling, the exact Pseudo-Boolean
formulation, and the end-to-end Framework driver.
"""

from .baseline import baseline_plan, baseline_transfer_floats
from .framework import CompiledTemplate, CompileOptions, Framework, run_template
from .graph import (
    DataStructure,
    GraphError,
    Operator,
    OperatorGraph,
    OutSpec,
    Slot,
    op_out_specs,
    op_slots,
    output_size,
    slot_size,
)
from .offload import identify_offload_units
from .pbopt import (
    PBInfeasibleError,
    PBScheduleResult,
    PBScheduler,
    linear_extensions,
    pb_joint_optimum,
    pb_optimal_plan,
)
from .planopt import hoist_uploads
from .plan import (
    CopyToCPU,
    CopyToGPU,
    ExecutionPlan,
    Free,
    Launch,
    PlanError,
    Step,
    validate_plan,
)
from .scheduling import (
    SCHEDULERS,
    bfs_schedule,
    dfs_naive_schedule,
    dfs_schedule,
    get_scheduler,
    greedy_schedule,
    topo_schedule,
)
from .serialize import (
    compiled_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from .splitting import (
    InfeasibleTemplateError,
    SplitReport,
    chunk_range,
    chunks_of,
    estimate_split,
    make_feasible,
    partition_data,
    select_chunks,
    split_combine,
    split_operator,
)
from .transfers import TransferScheduler, schedule_transfers

__all__ = [
    "CompileOptions",
    "CompiledTemplate",
    "CopyToCPU",
    "CopyToGPU",
    "DataStructure",
    "ExecutionPlan",
    "Framework",
    "Free",
    "GraphError",
    "InfeasibleTemplateError",
    "Launch",
    "Operator",
    "OperatorGraph",
    "OutSpec",
    "PBInfeasibleError",
    "PBScheduleResult",
    "PBScheduler",
    "PlanError",
    "SCHEDULERS",
    "Slot",
    "SplitReport",
    "Step",
    "TransferScheduler",
    "baseline_plan",
    "baseline_transfer_floats",
    "bfs_schedule",
    "chunk_range",
    "chunks_of",
    "compiled_to_dict",
    "dfs_naive_schedule",
    "dfs_schedule",
    "graph_from_dict",
    "graph_to_dict",
    "hoist_uploads",
    "estimate_split",
    "get_scheduler",
    "greedy_schedule",
    "identify_offload_units",
    "linear_extensions",
    "load_plan",
    "make_feasible",
    "op_out_specs",
    "op_slots",
    "output_size",
    "partition_data",
    "pb_joint_optimum",
    "pb_optimal_plan",
    "plan_from_dict",
    "plan_to_dict",
    "run_template",
    "save_plan",
    "schedule_transfers",
    "select_chunks",
    "slot_size",
    "split_combine",
    "split_operator",
    "topo_schedule",
    "validate_plan",
]
