"""Operator splitting (Section 3.2).

Makes every operator's memory footprint fit the device by splitting
operators along the leading (row) axis and partitioning the data
structures they touch, following the paper's fixpoint algorithm:

1. compute every operator's footprint (sum of the sizes of the data
   structures it touches);
2. split operators whose footprint exceeds device memory, modifying the
   producers/consumers of the split data as needed;
3. repeat until every operator is individually executable.

Mechanics
---------
Splitting an operator into *P* parts cuts its logical output rows into
*P* ranges.  Each part reads, per input slot, the rows given by the
operator kind's splitting rule (:meth:`repro.ops.base.OpImpl.input_rows`
— identity for data-parallel kinds, halo-extended for convolution,
``None`` for unsplittable inputs like kernel matrices).  The touched
logical arrays are *partitioned* into chunk data structures at the part
boundaries; producers are rewritten to scatter into chunks and consumers
to gather from them, so transfers happen at chunk granularity exactly as
in the paper's Figures 3 and 6.

Reductions (splittable but with a single-row output) use partial-result
splitting: parts produce partials and a generated ``combine_partials``
operator merges them.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.ops import get_impl

from .graph import (
    GraphError,
    OperatorGraph,
    OutSpec,
    Slot,
    op_out_specs,
    op_slots,
)


class InfeasibleTemplateError(RuntimeError):
    """The template cannot be made to fit device memory by splitting."""


@dataclass
class SplitReport:
    """What :func:`make_feasible` did to the graph."""

    rounds: int = 0
    split_ops: dict[str, int] = field(default_factory=dict)  # op -> nparts
    partitioned_roots: dict[str, int] = field(default_factory=dict)

    @property
    def any_split(self) -> bool:
        return bool(self.split_ops)


# ---------------------------------------------------------------------------
# Chunk bookkeeping
# ---------------------------------------------------------------------------
def chunk_range(graph: OperatorGraph, name: str) -> tuple[int, int]:
    ds = graph.data[name]
    if ds.row_range is not None:
        return ds.row_range
    return (0, ds.rows)


def chunks_of(graph: OperatorGraph, root: str) -> list[str]:
    """Concrete data structures currently tiling ``root`` (sorted by row)."""
    return list(graph.sorted_chunks(root)[0])


def select_chunks(
    graph: OperatorGraph, root: str, rows: tuple[int, int] | None
) -> list[str]:
    """Chunks of ``root`` overlapping the row range (all when ``rows=None``)."""
    names, starts, ends = graph.sorted_chunks(root)
    if rows is None:
        return list(names)
    a, b = rows
    # Chunks are disjoint and sorted, so the overlap set is a contiguous
    # run: drop chunks ending at/before ``a``, keep those starting before
    # ``b``.  Identical to filtering on start < b and end > a.
    return names[bisect_right(ends, a) : bisect_left(starts, b)]


def _per_row(graph: OperatorGraph, root: str) -> int:
    ds = graph.data[root]
    return ds.size // max(ds.rows, 1)


def _chunk_name(graph: OperatorGraph, root: str, a: int, b: int) -> str:
    return graph.fresh_name(f"{root}[{a}:{b}]")


# ---------------------------------------------------------------------------
# Data partitioning
# ---------------------------------------------------------------------------
def partition_data(
    graph: OperatorGraph, root: str, boundaries: list[int]
) -> None:
    """Refine the chunk structure of ``root`` with additional row cuts.

    Producers are rewritten to scatter into the refined chunks, consumers
    to gather from the chunks overlapping their slot rows.  Existing cuts
    are kept (refinement only), and chunks whose range is unchanged are
    reused, so repeated partitioning is stable.
    """
    ds = graph.data[root]
    if ds.parent is not None:
        raise GraphError(f"partition_data target {root!r} is itself a chunk")
    rows = ds.rows
    cuts = {c for c in boundaries if 0 < c < rows}
    if not cuts and not ds.virtual:
        return
    old_chunks = chunks_of(graph, root)
    all_bounds = {0, rows} | cuts
    for n in old_chunks:
        if n != root:
            a, b = chunk_range(graph, n)
            all_bounds.update((a, b))
    bounds = sorted(all_bounds)
    new_ranges = list(zip(bounds[:-1], bounds[1:]))
    # Map each old chunk to its (possibly refined) replacement chunks.
    replaced: dict[str, list[str]] = {}
    for oc in old_chunks:
        c0, c1 = chunk_range(graph, oc)
        # Refinement only: every old chunk boundary is in ``bounds``, so
        # the ranges inside [c0, c1) form a contiguous slice.
        sub = new_ranges[bisect_left(bounds, c0) : bisect_left(bounds, c1)]
        if sub == [(c0, c1)] and oc != root:
            continue  # unchanged chunk, keep as-is
        names = []
        for a, b in sub:
            name = _chunk_name(graph, root, a, b)
            graph.add_data(
                name,
                (b - a, *ds.shape[1:]),
                is_input=ds.is_input,
                is_output=ds.is_output,
                parent=root,
                row_range=(a, b),
            )
            names.append(name)
        replaced[oc] = names
    if not replaced:
        return
    # Each rewired operator is handled *once*, expanding every replaced
    # chunk it touches in a single pass.  Rewiring per (chunk, operator)
    # pair — the obvious loop — is quadratic: an operator gathering all
    # P chunks of a root would be rewired P times at O(P) inputs each.
    # ``set_op_io`` moves the operator to the end of the consumers list
    # of each of its inputs, and that order feeds the scheduler, so the
    # batched pass must fire its one rewire per operator at the position
    # of the operator's *last* rewire in the sequential per-chunk order.
    news_bounds = {
        oc: (
            [chunk_range(graph, n)[0] for n in news],
            [chunk_range(graph, n)[1] for n in news],
        )
        for oc, news in replaced.items()
    }
    # Producers, in last-occurrence order over the replaced chunks.
    prod_order: dict[str, None] = {}
    for oc in replaced:
        prod = graph.producer.get(oc)
        if prod is not None:
            prod_order.pop(prod, None)
            prod_order[prod] = None
    for prod in prod_order:
        pop = graph.ops[prod]
        specs = [
            OutSpec(s.root, s.rng, list(s.chunks))
            for s in op_out_specs(pop, graph)
        ]
        for spec in specs:
            if spec.root != root:
                continue
            new_chunks: list[tuple[str, tuple[int, int]]] = []
            for name, rng in spec.chunks:
                news = replaced.get(name)
                if news is not None:
                    new_chunks.extend(
                        (n, chunk_range(graph, n)) for n in news
                    )
                else:
                    new_chunks.append((name, rng))
            spec.chunks = new_chunks
        pop.params["out_specs"] = specs
        outputs = [n for s in specs for n, _ in s.chunks]
        graph.set_op_io(prod, pop.inputs, outputs)
    # Consumers.  Replaying the sequential order needs one more care:
    # rewiring an operator moves it to the end of the consumers lists of
    # the replaced chunks it *keeps*, so at each chunk the sequential
    # loop saw not-yet-rewired consumers in list order followed by
    # already-rewired ones in rewire order.  Simulate that to recover
    # the order of each operator's last rewire, then rewire once each.
    # ``cons_order`` maps consumer -> its last-rewire sequence number;
    # scanning the (large, growing) order per chunk for the handful of
    # members would be quadratic, so look members up and sort by seq.
    cons_order: dict[str, int] = {}
    seq = 0
    for oc in replaced:
        cur = graph.consumers.get(oc, ())
        members = set(cur)
        pending = [c for c in cur if c not in cons_order]
        moved = sorted(
            (c for c in members if c in cons_order),
            key=cons_order.__getitem__,
        )
        for cons in pending + moved:
            cons_order[cons] = seq
            seq += 1
    for cons in sorted(cons_order, key=cons_order.__getitem__):
        cop = graph.ops[cons]
        slots = [
            Slot(s.root, s.rows, list(s.chunks))
            for s in op_slots(cop, graph)
        ]
        for slot in slots:
            if not any(name in replaced for name in slot.chunks):
                continue
            rebuilt: list[str] = []
            for name in slot.chunks:
                news = replaced.get(name)
                if news is None:
                    rebuilt.append(name)
                    continue
                a, b = slot.rows if slot.rows is not None else (0, rows)
                news_starts, news_ends = news_bounds[name]
                rebuilt.extend(
                    news[
                        bisect_right(news_ends, a) : bisect_left(
                            news_starts, b
                        )
                    ]
                )
            slot.chunks = rebuilt
        cop.params["slots"] = slots
        inputs = [n for s in slots for n in s.chunks]
        graph.set_op_io(cons, inputs, cop.outputs)
    # Retire the replaced chunks.  Flipping ``virtual`` bypasses the
    # graph mutators, so drop its caches explicitly.
    if root in replaced:
        ds.virtual = True
    graph.remove_data_bulk(oc for oc in replaced if oc != root)
    graph.invalidate_caches()


# ---------------------------------------------------------------------------
# Operator splitting
# ---------------------------------------------------------------------------
def _clamp(rng: tuple[int, int], rows: int) -> tuple[int, int]:
    a, b = rng
    return (max(0, a), min(rows, b))


def split_operator(
    graph: OperatorGraph, op_name: str, nparts: int
) -> list[str]:
    """Split one operator into ``nparts`` row-parts (graph surgery).

    Returns the names of the part operators (or ``[op_name]`` when no
    split was possible/needed).
    """
    op = graph.ops[op_name]
    impl = get_impl(op.kind)
    if not impl.splittable:
        raise InfeasibleTemplateError(
            f"operator {op_name!r} (kind {op.kind!r}) is not splittable"
        )
    if getattr(impl, "partial_split", False):
        return _split_reduction(graph, op_name, nparts)
    out_specs = op_out_specs(op, graph)
    slots = op_slots(op, graph)
    lo, hi = out_specs[0].rng
    rows_out = hi - lo
    nparts = min(nparts, rows_out)
    min_rows = impl.min_part_rows(op, graph)
    nparts = min(nparts, max(1, rows_out // max(min_rows, 1)))
    if nparts <= 1:
        return [op_name]
    for spec in out_specs[1:]:
        if spec.rng[1] - spec.rng[0] != rows_out:
            raise GraphError(
                f"{op_name}: outputs have differing logical row counts"
            )
    cuts = [lo + (rows_out * i) // nparts for i in range(nparts + 1)]
    part_ranges = list(zip(cuts[:-1], cuts[1:]))
    # Per-part, per-slot required input rows (None = whole input).
    reqs = impl.input_rows_batch(op, graph, part_ranges)
    in_rows0 = graph.data[slots[0].root].rows
    # The original operator goes away first so rewiring skips it.
    original_params = dict(op.params)
    graph.remove_operator(op_name)
    # Partition every split input root at the parts' required-start rows.
    for i, slot in enumerate(slots):
        starts = []
        for p in range(nparts):
            req = reqs[p][i]
            if req is None:
                continue
            root_rows = graph.data[slot.root].rows
            starts.append(_clamp(req, root_rows)[0])
        if starts:
            partition_data(graph, slot.root, starts)
    # Partition every output root at the part boundaries.
    for spec in out_specs:
        off = spec.rng[0] - lo
        partition_data(graph, spec.root, [c + off for c in cuts[1:-1]])
    part_names: list[str] = []
    for p, (a, b) in enumerate(part_ranges):
        part_slots: list[Slot] = []
        for i, slot in enumerate(slots):
            req = reqs[p][i]
            if req is None:
                part_slots.append(
                    Slot(
                        slot.root,
                        slot.rows,
                        select_chunks(graph, slot.root, slot.rows),
                    )
                )
            else:
                root_rows = graph.data[slot.root].rows
                creq = _clamp(req, root_rows)
                part_slots.append(
                    Slot(slot.root, creq, select_chunks(graph, slot.root, creq))
                )
        part_specs: list[OutSpec] = []
        outputs: list[str] = []
        for spec in out_specs:
            off = spec.rng[0] - lo
            ra, rb = a + off, b + off
            chs = [
                (n, chunk_range(graph, n))
                for n in select_chunks(graph, spec.root, (ra, rb))
            ]
            part_specs.append(OutSpec(spec.root, (ra, rb), chs))
            outputs.extend(n for n, _ in chs)
        params = dict(original_params)
        params["slots"] = part_slots
        params["out_specs"] = part_specs
        params["out_range"] = part_specs[0].rng
        params["in_rows"] = in_rows0
        params["part_of"] = original_params.get("part_of", op_name)
        inputs = [n for s in part_slots for n in s.chunks]
        name = graph.fresh_name(f"{op_name}.p{p}")
        graph.add_operator(name, op.kind, inputs, outputs, **params)
        part_names.append(name)
    return part_names


def _combine_tree(
    graph: OperatorGraph,
    op_base: str,
    partials: list[str],
    out_chunks: list[tuple[str, tuple[int, int]]],
    out_root: str,
    fn: str,
    weights: list[int] | None,
    fan_in: int,
) -> list[str]:
    """Merge partials with a tree of ``combine_partials`` operators.

    A flat combine over P partials has footprint (P+1) x row-size; when P
    is large that can itself exceed device memory, so partials are merged
    ``fan_in`` at a time (weighted means carry their row counts up the
    tree).
    """
    created: list[str] = []
    level = list(partials)
    level_weights = list(weights) if weights is not None else None
    cols = graph.data[partials[0]].shape[1]
    round_no = 0
    while len(level) > fan_in:
        nxt: list[str] = []
        nxt_weights: list[int] | None = [] if level_weights is not None else None
        for i in range(0, len(level), fan_in):
            group = level[i : i + fan_in]
            if len(group) == 1:
                nxt.append(group[0])
                if level_weights is not None:
                    nxt_weights.append(level_weights[i])
                continue
            partial = graph.fresh_name(f"{out_root}.merge{round_no}_{i}")
            graph.add_data(partial, (1, cols))
            params: dict = {"fn": fn}
            if level_weights is not None:
                params["weights"] = level_weights[i : i + fan_in]
            params["slots"] = [Slot(d, None, [d]) for d in group]
            params["out_specs"] = [
                OutSpec(partial, (0, 1), [(partial, (0, 1))])
            ]
            name = graph.fresh_name(f"{op_base}.merge{round_no}_{i}")
            graph.add_operator(name, "combine_partials", group, [partial], **params)
            created.append(name)
            nxt.append(partial)
            if level_weights is not None:
                nxt_weights.append(sum(level_weights[i : i + fan_in]))
        level = nxt
        level_weights = nxt_weights
        round_no += 1
    final = graph.fresh_name(f"{op_base}.combine")
    params = {"fn": fn}
    if level_weights is not None:
        params["weights"] = list(level_weights)
    params["slots"] = [Slot(d, None, [d]) for d in level]
    params["out_specs"] = [OutSpec(out_root, (0, 1), list(out_chunks))]
    graph.add_operator(
        final, "combine_partials", level, [n for n, _ in out_chunks], **params
    )
    created.append(final)
    return created


def _split_reduction(
    graph: OperatorGraph, op_name: str, nparts: int
) -> list[str]:
    """Partial-result splitting for reductions (single-row outputs)."""
    op = graph.ops[op_name]
    slots = op_slots(op, graph)
    out_specs = op_out_specs(op, graph)
    in_root = slots[0].root
    in_rows = graph.data[in_root].rows
    rows = slots[0].rows or (0, in_rows)
    lo, hi = rows
    span = hi - lo
    nparts = min(nparts, span)
    if nparts <= 1:
        return [op_name]
    fn = op.params.get("fn", "sum")
    cols = graph.data[in_root].shape[1]
    cuts = [lo + (span * i) // nparts for i in range(nparts + 1)]
    part_ranges = list(zip(cuts[:-1], cuts[1:]))
    original_params = dict(op.params)
    out_chunks = [(n, r) for spec in out_specs for n, r in spec.chunks]
    out_root = out_specs[0].root
    graph.remove_operator(op_name)
    partition_data(graph, in_root, cuts[1:-1])
    part_names: list[str] = []
    partials: list[str] = []
    for p, (a, b) in enumerate(part_ranges):
        partial = graph.fresh_name(f"{out_root}.partial{p}")
        graph.add_data(partial, (1, cols))
        part_slots = [
            Slot(in_root, (a, b), select_chunks(graph, in_root, (a, b)))
        ]
        name = graph.fresh_name(f"{op_name}.p{p}")
        params = dict(original_params)
        params["slots"] = part_slots
        params["out_specs"] = [OutSpec(partial, (0, 1), [(partial, (0, 1))])]
        params["part_of"] = original_params.get("part_of", op_name)
        graph.add_operator(
            name,
            op.kind,
            [n for s in part_slots for n in s.chunks],
            [partial],
            **params,
        )
        part_names.append(name)
        partials.append(partial)
    weights = [b - a for a, b in part_ranges] if fn == "mean" else None
    # Flat combine first; make_feasible rebuilds it as a tree (via
    # split_combine) if it exceeds device memory.
    part_names.extend(
        _combine_tree(
            graph,
            op_name,
            partials,
            out_chunks,
            out_root,
            fn,
            weights,
            fan_in=len(partials),
        )
    )
    return part_names


def split_combine(
    graph: OperatorGraph, op_name: str, fan_in: int
) -> list[str]:
    """Rebuild an over-large ``combine_partials`` as a reduction tree."""
    op = graph.ops[op_name]
    if op.kind != "combine_partials":
        raise GraphError(f"{op_name!r} is not a combine_partials operator")
    if fan_in < 2:
        raise InfeasibleTemplateError(
            f"combine {op_name!r}: even pairwise merging exceeds capacity"
        )
    slots = op_slots(op, graph)
    partials = [s.root for s in slots]
    specs = op_out_specs(op, graph)
    out_chunks = [(n, r) for s in specs for n, r in s.chunks]
    out_root = specs[0].root
    fn = op.params.get("fn", "sum")
    weights = op.params.get("weights")
    base = op.params.get("part_of", op_name)
    graph.remove_operator(op_name)
    return _combine_tree(
        graph,
        graph.fresh_name(base),
        partials,
        out_chunks,
        out_root,
        fn,
        list(weights) if weights is not None else None,
        fan_in,
    )


# ---------------------------------------------------------------------------
# Footprint estimation and the feasibility fixpoint
# ---------------------------------------------------------------------------
def estimate_split(graph: OperatorGraph, op_name: str, nparts: int) -> int:
    """Max part footprint (floats) if ``op_name`` were split ``nparts`` ways.

    Mirrors :func:`split_operator`'s chunk selection analytically, against
    the input partitions as they would look *after* the refinement the
    split itself performs.  Kinds exposing an affine splitting rule
    (:meth:`repro.ops.base.OpImpl.input_rows_affine`) are estimated with
    one vectorized pass over the part-boundary arrays; the per-part loop
    below stays as the general fallback (and the reference the columnar
    path is tested against).
    """
    op = graph.ops[op_name]
    impl = get_impl(op.kind)
    out_specs = op_out_specs(op, graph)
    slots = op_slots(op, graph)
    if getattr(impl, "partial_split", False):
        in_root = slots[0].root
        rows = slots[0].rows or (0, graph.data[in_root].rows)
        span = rows[1] - rows[0]
        nparts = min(nparts, span)
        cols = graph.data[in_root].shape[1]
        per = _per_row(graph, in_root)
        edges = rows[0] + (span * np.arange(nparts + 1, dtype=np.int64)) // nparts
        worst = int(np.diff(edges).max())
        return worst * per + cols
    lo, hi = out_specs[0].rng
    rows_out = hi - lo
    nparts = min(nparts, rows_out)
    if nparts <= 1:
        return graph.op_footprint(op_name)
    coeffs = impl.input_rows_affine(op, graph)
    if coeffs is not None and len(coeffs) == len(slots):
        split_roots = [
            slots[i].root for i in range(len(slots)) if coeffs[i] is not None
        ]
        if len(set(split_roots)) == len(split_roots):
            return _estimate_split_affine(
                graph, op_name, slots, out_specs, coeffs, lo, rows_out, nparts
            )
    cuts = [lo + (rows_out * i) // nparts for i in range(nparts + 1)]
    part_ranges = list(zip(cuts[:-1], cuts[1:]))
    reqs = [impl.input_rows(op, graph, rng) for rng in part_ranges]
    # Refined boundary set per split input root.
    refined: dict[str, list[int]] = {}
    for i, slot in enumerate(slots):
        if all(reqs[p][i] is None for p in range(nparts)):
            continue
        root_rows = graph.data[slot.root].rows
        bounds = {0, root_rows}
        for n in chunks_of(graph, slot.root):
            a, b = chunk_range(graph, n)
            bounds.update((a, b))
        for p in range(nparts):
            req = reqs[p][i]
            if req is not None:
                bounds.add(_clamp(req, root_rows)[0])
        refined[slot.root] = sorted(bounds)
    worst = 0
    for p, (a, b) in enumerate(part_ranges):
        fp = 0
        for spec in out_specs:
            fp += (b - a) * _per_row(graph, spec.root)
        seen: set[str] = set()
        seen_ranges: set[tuple[str, tuple[int, int]]] = set()
        for i, slot in enumerate(slots):
            req = reqs[p][i]
            if req is None:
                for n in slot.chunks:
                    if n not in seen:
                        seen.add(n)
                        fp += graph.data[n].size
                continue
            root_rows = graph.data[slot.root].rows
            ra, rb = _clamp(req, root_rows)
            bounds = refined[slot.root]
            per = _per_row(graph, slot.root)
            # Overlapping refined ranges form a contiguous run of the
            # sorted bounds (range k is [bounds[k], bounds[k+1])).
            k0 = max(0, bisect_right(bounds, ra) - 1)
            k1 = min(len(bounds) - 1, bisect_left(bounds, rb))
            for k in range(k0, k1):
                c0, c1 = bounds[k], bounds[k + 1]
                if c0 < rb and c1 > ra:
                    key = (slot.root, (c0, c1))
                    if key not in seen_ranges:
                        seen_ranges.add(key)
                        fp += (c1 - c0) * per
        worst = max(worst, fp)
    return worst


def _estimate_split_affine(
    graph: OperatorGraph,
    op_name: str,
    slots: list[Slot],
    out_specs: list[OutSpec],
    coeffs: list[tuple[int, int, int, int] | None],
    lo: int,
    rows_out: int,
    nparts: int,
) -> int:
    """Vectorized :func:`estimate_split` for affine splitting rules.

    Evaluates every part's footprint in one numpy pass: part boundaries
    are an ``arange`` expression, each split slot's required range is an
    affine map of those arrays, and the overlapped refined-chunk volume
    per part reduces to a ``searchsorted`` pair against the sorted bound
    array (the refined ranges covering ``[ra, rb)`` are contiguous, so
    their total is ``bounds[hi] - bounds[lo]``).  Requires the split
    slots to have pairwise-distinct roots (the cross-slot range dedup of
    the scalar path can then never fire); the caller checks that.
    """
    idx = np.arange(nparts + 1, dtype=np.int64)
    cuts = lo + (rows_out * idx) // nparts
    a, b = cuts[:-1], cuts[1:]
    per_out = sum(_per_row(graph, spec.root) for spec in out_specs)
    fp = (b - a) * per_out
    # Whole-input slots: constant across parts, dedup chunks by name.
    seen: set[str] = set()
    const = 0
    for i, slot in enumerate(slots):
        if coeffs[i] is not None:
            continue
        for n in slot.chunks:
            if n not in seen:
                seen.add(n)
                const += graph.data[n].size
    for i, slot in enumerate(slots):
        c = coeffs[i]
        if c is None:
            continue
        root_rows = graph.data[slot.root].rows
        ra = np.maximum(0, c[0] * a + c[1])
        rb = np.minimum(root_rows, c[2] * b + c[3])
        bound_set = {0, root_rows}
        for n in chunks_of(graph, slot.root):
            x, y = chunk_range(graph, n)
            bound_set.update((x, y))
        bound_set.update(ra.tolist())
        bounds = np.asarray(sorted(bound_set), dtype=np.int64)
        s = np.searchsorted(bounds, ra, side="right") - 1
        e = np.searchsorted(bounds, rb, side="left")
        fp = fp + np.maximum(0, bounds[e] - bounds[s]) * _per_row(
            graph, slot.root
        )
    return int(fp.max() + const)


def make_feasible(
    graph: OperatorGraph,
    capacity_floats: int,
    *,
    max_rounds: int = 64,
) -> SplitReport:
    """Section 3.2 fixpoint: split until every operator fits the device.

    ``capacity_floats`` should already include the fragmentation reserve
    (use :attr:`repro.gpusim.GpuDevice.usable_memory_floats`).
    """
    if capacity_floats <= 0:
        raise ValueError("capacity must be positive")
    report = SplitReport()
    for round_no in range(max_rounds):
        infeasible = [
            o
            for o in graph.topological_order()
            if graph.op_footprint(o) > capacity_floats
        ]
        if not infeasible:
            report.rounds = round_no
            _record_partitions(graph, report)
            graph.validate()
            return report
        for op_name in infeasible:
            if op_name not in graph.ops:
                continue  # replaced earlier this round
            op = graph.ops[op_name]
            impl = get_impl(op.kind)
            if op.kind == "combine_partials":
                # Over-wide merges become trees with capacity-sized fan-in.
                row = graph.data[op.outputs[0]].size
                fan_in = capacity_floats // max(row, 1) - 1
                parts = split_combine(graph, op_name, fan_in)
                report.split_ops[op_name] = len(parts)
                continue
            if not impl.splittable:
                raise InfeasibleTemplateError(
                    f"operator {op_name!r} (kind {op.kind!r}, footprint "
                    f"{graph.op_footprint(op_name)} floats) exceeds device "
                    f"capacity {capacity_floats} and is not splittable"
                )
            fp = graph.op_footprint(op_name)
            rows_limit = _split_limit(graph, op)
            n = min(max(2, math.ceil(fp / capacity_floats)), rows_limit)
            while estimate_split(graph, op_name, n) > capacity_floats:
                if n >= rows_limit:
                    raise InfeasibleTemplateError(
                        f"operator {op_name!r} cannot fit device memory even "
                        f"when split into {rows_limit} single-row parts"
                    )
                n = min(rows_limit, max(n + 1, math.ceil(n * 1.3)))
            parts = split_operator(graph, op_name, n)
            report.split_ops[op_name] = len(parts)
    raise InfeasibleTemplateError(
        f"splitting did not converge within {max_rounds} rounds"
    )


def _split_limit(graph: OperatorGraph, op) -> int:
    impl = get_impl(op.kind)
    if getattr(impl, "partial_split", False):
        slots = op_slots(op, graph)
        rows = slots[0].rows or (0, graph.data[slots[0].root].rows)
        return rows[1] - rows[0]
    specs = op_out_specs(op, graph)
    return specs[0].rng[1] - specs[0].rng[0]


def _record_partitions(graph: OperatorGraph, report: SplitReport) -> None:
    for d, ds in graph.data.items():
        if ds.virtual:
            report.partitioned_roots[d] = len(chunks_of(graph, d))
