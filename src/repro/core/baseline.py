"""The paper's baseline GPU execution pattern (Section 4, "For comparison
purposes, we propose the following execution pattern as the baseline").

For each operator: transfer its inputs to the GPU, execute, copy its
results back to the CPU immediately, and free everything — no persistent
device storage.  Any operator can run without interference from others,
but every value crosses the PCIe bus once per use, which is what the
optimized plans beat by 1.7-7.8x.

The baseline operates on the *unsplit* template: it is infeasible (the
paper's "N/A" entries) as soon as any single operator's footprint
exceeds device memory.
"""

from __future__ import annotations

from typing import Sequence

from .graph import OperatorGraph
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, PlanError, Step


def baseline_plan(
    graph: OperatorGraph,
    capacity_floats: int,
    op_order: Sequence[str] | None = None,
) -> ExecutionPlan:
    """Build the copy-in / execute / copy-out baseline plan.

    Raises :class:`PlanError` when some operator cannot fit device memory
    even alone — the configurations Table 1/2 mark "N/A".
    """
    if op_order is not None:
        order = list(op_order)
    else:
        # The paper's baseline executes operators in the application's
        # program order (= template insertion order); fall back to a
        # topological sort for graphs built out of order.
        order = list(graph.ops)
        pos = {o: i for i, o in enumerate(order)}
        if any(
            pos[p] > pos[o]
            for o in order
            for p in graph.op_predecessors(o)
        ):
            order = graph.topological_order()
    steps: list[Step] = []
    for op_name in order:
        op = graph.ops[op_name]
        fp = graph.op_footprint(op_name)
        if fp > capacity_floats:
            raise PlanError(
                f"baseline infeasible: operator {op_name!r} footprint "
                f"{fp} floats exceeds device capacity {capacity_floats}"
            )
        ins = list(dict.fromkeys(op.inputs))
        outs = list(dict.fromkeys(op.outputs))
        for d in ins:
            steps.append(CopyToGPU(d))
        steps.append(Launch(op_name))
        for d in outs:
            steps.append(CopyToCPU(d))
        for d in ins + outs:
            steps.append(Free(d))
    return ExecutionPlan(
        steps=steps, capacity_floats=capacity_floats, label="baseline"
    )


def baseline_transfer_floats(graph: OperatorGraph) -> int:
    """Analytic baseline transfer volume: sum over operators of in+out.

    Matches Table 1's "Baseline implementation" column (e.g. 13,000,512
    floats for 1000x1000 edge detection).
    """
    total = 0
    for op in graph.ops.values():
        total += sum(graph.data[d].size for d in dict.fromkeys(op.inputs))
        total += sum(graph.data[d].size for d in dict.fromkeys(op.outputs))
    return total
