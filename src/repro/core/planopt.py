"""Post-scheduling plan transformations.

:func:`hoist_uploads` — prefetching for asynchronous devices.  The
transfer scheduler emits each upload immediately before the launch that
needs it (the right choice for the paper's synchronous GPUs: residency
time is minimised).  On a device that overlaps copies with compute
(Section 3.3.2's extension), moving uploads *earlier* lets the copy
engine work ahead of the compute queue.  The pass hoists every
``CopyToGPU`` to the earliest position that

* keeps it after the step that makes its source available on the host
  (a prior ``CopyToCPU`` of the same data; template inputs are always
  available), and after any prior ``Free`` of the same data (no
  duplicate residency), and
* keeps device occupancy within capacity at every intermediate step
  (earlier uploads extend residency, so this is checked explicitly).

The transformed plan has identical transfer volume and remains valid for
synchronous execution; its benefit shows up under
:func:`repro.runtime.simulate_plan_overlap`.
"""

from __future__ import annotations

from .graph import OperatorGraph
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, validate_plan


def hoist_uploads(
    plan: ExecutionPlan,
    graph: OperatorGraph,
    capacity_floats: int | None = None,
    *,
    max_hoist: int | None = None,
) -> ExecutionPlan:
    """Return a plan with uploads prefetched as early as capacity allows.

    ``max_hoist`` optionally caps how many positions a single upload may
    move (a lookahead window, like bounded prefetch queues).
    """
    cap = capacity_floats if capacity_floats is not None else plan.capacity_floats
    steps = list(plan.steps)
    # Provenance rides along with the reordered steps (when present).
    notes = list(plan.notes) if len(plan.notes) == len(steps) else None
    # Per-step occupancy deltas, computed once and reordered alongside
    # ``steps``: a hoist then refreshes the displaced window with plain
    # adds instead of re-deriving every Launch's output footprint.
    deltas: list[int] = []
    occ: list[int] = []  # occupancy after each step (floats)
    used = 0
    for step in steps:
        delta = 0
        if isinstance(step, CopyToGPU):
            delta = graph.data[step.data].size
        elif isinstance(step, Free):
            delta = -graph.data[step.data].size
        elif isinstance(step, Launch):
            delta = sum(
                graph.data[d].size
                for d in dict.fromkeys(graph.ops[step.op].outputs)
            )
        deltas.append(delta)
        used += delta
        occ.append(used)

    i = 0
    while i < len(steps):
        step = steps[i]
        if not isinstance(step, CopyToGPU):
            i += 1
            continue
        size = graph.data[step.data].size
        # Find the earliest feasible target position.
        target = i
        j = i - 1
        while j >= 0:
            prev = steps[j]
            if isinstance(prev, (CopyToCPU, Free)) and prev.data == step.data:
                break  # source availability / prior residency barrier
            if isinstance(prev, CopyToGPU):
                # Never reorder uploads past each other: the copy FIFO
                # must feed the earliest launches first, or prefetching
                # a later operator's inputs starves the current one.
                break
            # Placing the upload at position j charges `size` to the
            # occupancy right after it (occ[j-1] + size) and after every
            # displaced step (occ[k] + size for k in [j, i-1]).
            before = occ[j - 1] if j > 0 else 0
            if before + size > cap or occ[j] + size > cap:
                break
            target = j
            if max_hoist is not None and i - target >= max_hoist:
                break
            j -= 1
        if target < i:
            del steps[i]
            steps.insert(target, step)
            deltas.insert(target, deltas.pop(i))
            if notes is not None:
                note = notes.pop(i)
                notes.insert(target, f"{note}; hoisted {i - target} steps")
            # Occupancy recompute for the reordered window (positions
            # outside [target, i] see the same multiset of prior steps).
            for k in range(target, i + 1):
                prev_occ = occ[k - 1] if k > 0 else 0
                occ[k] = prev_occ + deltas[k]
        i += 1
    out = ExecutionPlan(
        steps=steps,
        capacity_floats=plan.capacity_floats,
        label=(plan.label + "+prefetch") if plan.label else "prefetch",
        notes=notes or [],
    )
    validate_plan(out, graph, cap)
    return out
