"""Columnar planner IR: flat numpy tables lowered from the object graph.

The per-object planner walks ``OperatorGraph`` dataclasses — dict
lookups, attribute access and per-node allocation dominate compile time
once graphs reach the 10k-operator regime the compile-scaling benchmark
tracks.  This module lowers a (split) graph once into flat arrays — an
*operator table*, a *data table*, and CSR-style adjacency — and
re-implements the planner's hot loops over those tables:

* :func:`dfs_schedule_columnar` — the paper's band-ordered depth-first
  operator schedule (`repro.core.scheduling.dfs_schedule`) over integer
  ids, with the ``_row_band_key`` sort done as one vectorized pass over
  the band-start column;
* :func:`schedule_transfers_columnar` — the transfer scheduler
  (`repro.core.transfers.TransferScheduler`) with the static use-time
  analysis vectorized (one ``argsort``/``bincount`` pass builds the
  per-datum use lists and last-use column) and the sequential
  simulation loop running over flat integer state.

Both are **byte-identical** replacements: they emit exactly the plan
(steps *and* provenance notes) the per-object implementations produce,
for every scheduler/eviction-policy/eager-free combination they cover.
The per-object path stays in the tree as the reference oracle — the
differential suite and a hypothesis property pin the equivalence.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .graph import GraphError, OperatorGraph
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, PlanError, Step
from .transfers import _MaxEntry

_INF = float("inf")


@dataclass(slots=True)
class ColumnarGraph:
    """Flat-table view of one :class:`OperatorGraph`.

    Integer ids are assignment order (= dict insertion order, the
    deterministic tiebreak every traversal already uses).  Name lists
    map ids back to strings; plans and provenance notes are emitted in
    terms of names, so the tables never leak into the plan format.
    """

    # -- data table ---------------------------------------------------------
    data_names: list[str]
    data_id: dict[str, int]
    #: floats per datum
    data_size: list[int]
    #: template output *and* concrete (virtual chunks roots are False,
    #: matching the transfer scheduler's ``is_output`` map)
    data_is_output: list[bool]
    # -- operator table -----------------------------------------------------
    op_names: list[str]
    op_id: dict[str, int]
    #: ``params["out_range"][0]`` or 0 — the ``_row_band_key`` column
    band_start: np.ndarray
    # -- adjacency (CSR over ids) -------------------------------------------
    #: raw inputs, duplicates and order preserved (use-time analysis)
    in_ptr: np.ndarray
    in_ids: np.ndarray
    #: inputs/outputs deduplicated in first-occurrence order
    uin_ptr: list[int]
    uin_ids: list[int]
    uout_ptr: list[int]
    uout_ids: list[int]
    #: operator-level predecessors/successors, deduplicated,
    #: first-occurrence order (mirrors ``op_predecessors``/``op_successors``)
    pred_counts: list[int]
    succ_ptr: list[int]
    succ_ids: list[int]

    @property
    def n_data(self) -> int:
        return len(self.data_names)

    @property
    def n_ops(self) -> int:
        return len(self.op_names)


def lower(graph: OperatorGraph) -> ColumnarGraph:
    """Lower an operator graph into its columnar tables (one O(V+E) pass)."""
    data_names = list(graph.data)
    data_id = {d: i for i, d in enumerate(data_names)}
    data_size = [ds.size for ds in graph.data.values()]
    data_is_output = [
        ds.is_output and not ds.virtual for ds in graph.data.values()
    ]
    op_names = list(graph.ops)
    op_id = {o: i for i, o in enumerate(op_names)}
    band_start = np.empty(len(op_names), dtype=np.int64)
    in_ptr = np.empty(len(op_names) + 1, dtype=np.int64)
    in_ptr[0] = 0
    in_ids_l: list[int] = []
    uin_ptr: list[int] = [0]
    uin_ids: list[int] = []
    uout_ptr: list[int] = [0]
    uout_ids: list[int] = []
    for i, op in enumerate(graph.ops.values()):
        rng = op.params.get("out_range")
        band_start[i] = rng[0] if rng else 0
        in_ids_l.extend(data_id[d] for d in op.inputs)
        in_ptr[i + 1] = len(in_ids_l)
        uin_ids.extend(data_id[d] for d in dict.fromkeys(op.inputs))
        uin_ptr.append(len(uin_ids))
        uout_ids.extend(data_id[d] for d in dict.fromkeys(op.outputs))
        uout_ptr.append(len(uout_ids))
    preds, succs = graph._adjacency()
    pred_counts = [len(preds[o]) for o in op_names]
    succ_ptr: list[int] = [0]
    succ_ids: list[int] = []
    for o in op_names:
        succ_ids.extend(op_id[s] for s in succs[o])
        succ_ptr.append(len(succ_ids))
    return ColumnarGraph(
        data_names=data_names,
        data_id=data_id,
        data_size=data_size,
        data_is_output=data_is_output,
        op_names=op_names,
        op_id=op_id,
        band_start=band_start,
        in_ptr=in_ptr,
        in_ids=np.asarray(in_ids_l, dtype=np.int64),
        uin_ptr=uin_ptr,
        uin_ids=uin_ids,
        uout_ptr=uout_ptr,
        uout_ids=uout_ids,
        pred_counts=pred_counts,
        succ_ptr=succ_ptr,
        succ_ids=succ_ids,
    )


# ---------------------------------------------------------------------------
# Operator scheduling
# ---------------------------------------------------------------------------
def _dfs_ids(col: ColumnarGraph, roots: list[int], n_graph_ops: int) -> list[str]:
    sched = bytearray(col.n_ops)
    unmet = list(col.pred_counts)
    succ_ptr, succ_ids = col.succ_ptr, col.succ_ids
    order: list[int] = []
    stack = roots[::-1]
    while stack:
        o = stack.pop()
        if sched[o]:
            continue
        if unmet[o]:
            continue  # precedence not met: backtrack
        sched[o] = 1
        order.append(o)
        seg = succ_ids[succ_ptr[o] : succ_ptr[o + 1]]
        for s in seg:
            unmet[s] -= 1
        stack.extend(seg[::-1])
    if len(order) != n_graph_ops:
        raise GraphError(
            f"dfs_schedule covered {len(order)}/{n_graph_ops} operators "
            "(graph not reachable from roots?)"
        )
    names = col.op_names
    return [names[i] for i in order]


def dfs_schedule_columnar(
    graph: OperatorGraph, col: ColumnarGraph | None = None
) -> list[str]:
    """Columnar twin of :func:`repro.core.scheduling.dfs_schedule`.

    Roots are sorted by the band-start column in one stable pass — ids
    are insertion order, so a stable sort on band start alone equals the
    per-object ``(out_range[0], insertion index)`` tuple sort.
    """
    col = lower(graph) if col is None else col
    pred_counts = col.pred_counts
    roots = [i for i in range(col.n_ops) if not pred_counts[i]]
    if roots:
        band = col.band_start[roots]
        roots = [roots[i] for i in np.argsort(band, kind="stable")]
    return _dfs_ids(col, roots, len(graph.ops))


def dfs_naive_schedule_columnar(
    graph: OperatorGraph, col: ColumnarGraph | None = None
) -> list[str]:
    """Columnar twin of :func:`repro.core.scheduling.dfs_naive_schedule`."""
    col = lower(graph) if col is None else col
    pred_counts = col.pred_counts
    roots = [i for i in range(col.n_ops) if not pred_counts[i]]
    return _dfs_ids(col, roots, len(graph.ops))


#: operator schedulers with a columnar fast path (byte-identical)
COLUMNAR_SCHEDULERS = {
    "dfs": dfs_schedule_columnar,
    "dfs_naive": dfs_naive_schedule_columnar,
}


# ---------------------------------------------------------------------------
# Transfer scheduling
# ---------------------------------------------------------------------------
def _use_times(
    col: ColumnarGraph, op_ids: np.ndarray
) -> tuple[list[int], list[int], list[int]]:
    """Static use-time analysis over the columnar tables, vectorized.

    Returns ``(uses_ptr, uses_t, last_use)``: per-datum read positions as
    a CSR over the schedule (duplicate reads preserved, ascending), and
    the last read per datum (-1 when never read) — exactly the ``uses``
    lists and ``last_use`` map the per-object scheduler builds with a
    python loop over every operator input.
    """
    n_data = col.n_data
    counts = np.diff(col.in_ptr)[op_ids]
    total = int(counts.sum())
    if total:
        starts = col.in_ptr[op_ids]
        shift = np.cumsum(counts) - counts
        offs = np.arange(total, dtype=np.int64) - np.repeat(shift, counts)
        flat_d = col.in_ids[np.repeat(starts, counts) + offs]
        ts = np.repeat(np.arange(len(op_ids), dtype=np.int64), counts)
        order = np.argsort(flat_d, kind="stable")  # stable: t stays ascending
        sorted_t = ts[order]
        use_counts = np.bincount(flat_d, minlength=n_data)
    else:
        sorted_t = np.empty(0, dtype=np.int64)
        use_counts = np.zeros(n_data, dtype=np.int64)
    ends = np.cumsum(use_counts)
    last = np.full(n_data, -1, dtype=np.int64)
    nz = use_counts > 0
    last[nz] = sorted_t[ends[nz] - 1]
    uses_ptr = np.concatenate(([0], ends))
    return uses_ptr.tolist(), sorted_t.tolist(), last.tolist()


def schedule_transfers_columnar(
    graph: OperatorGraph,
    op_order: Sequence[str],
    capacity_floats: int,
    *,
    policy: str = "belady",
    eager_free: bool = True,
    col: ColumnarGraph | None = None,
) -> ExecutionPlan:
    """Columnar twin of :func:`repro.core.transfers.schedule_transfers`.

    Emits the byte-identical plan (steps and provenance notes) for every
    eviction policy and eager/lazy freeing mode: the same greedy
    simulation runs, but over flat integer state — sizes, use pointers
    and last-use come from the lowered tables instead of per-object
    dict/attribute chains, and the static use-time analysis is one
    vectorized pass (:func:`_use_times`).
    """
    if policy not in ("belady", "cost", "ltu", "lru", "fifo"):
        raise ValueError(f"unknown eviction policy {policy!r}")
    col = lower(graph) if col is None else col
    capacity = capacity_floats
    if set(op_order) != set(graph.ops):
        raise ValueError("op_order must cover exactly the graph's operators")
    op_ids = np.fromiter(
        (col.op_id[o] for o in op_order), dtype=np.int64, count=len(op_order)
    )
    uses_ptr, uses_t, last_use = _use_times(col, op_ids)
    op_ids_l = op_ids.tolist()
    size = col.data_size
    is_out = col.data_is_output
    names = col.data_names
    op_names = col.op_names
    uin_ptr, uin_ids = col.uin_ptr, col.uin_ids
    uout_ptr, uout_ids = col.uout_ptr, col.uout_ids
    # ``use_ptr[d]`` is the absolute index (into ``uses_t``) of the first
    # not-yet-executed read of ``d``; ``uses_ptr[d+1]`` bounds it.
    use_ptr = uses_ptr[:-1]
    counter = itertools.count()

    steps: list[Step] = []
    notes: list[str] = []
    # Residency state as parallel columns instead of per-datum objects:
    # ``resident`` keeps membership and insertion order (end-of-plan
    # drain), the arrays hold the per-datum fields.
    n_data = col.n_data
    resident: dict[int, None] = {}
    arrived = [0] * n_data
    touched = [0] * n_data
    host_valid = bytearray(n_data)
    used = 0
    res_seq: dict[int, int] = {}
    seq_counter = itertools.count()
    heap: list[_MaxEntry] = []
    token: dict[int, int] = {}
    token_counter = itertools.count()

    def emit(step: Step, reason: str) -> None:
        steps.append(step)
        notes.append(reason)

    def next_use(d: int) -> float:
        i = use_ptr[d]
        return uses_t[i] if i < uses_ptr[d + 1] else _INF

    def evict_key(d: int):
        if policy == "belady":
            return next_use(d)
        if policy == "cost":
            nxt = next_use(d)
            if nxt == _INF:
                cost = 0
            elif host_valid[d]:
                cost = size[d]
            elif is_out[d]:
                cost = size[d]
            else:
                cost = 2 * size[d]
            return (-cost, nxt)
        if policy == "ltu":
            return last_use[d]
        if policy == "lru":
            return -touched[d]
        return -arrived[d]  # fifo

    def push_entry(d: int) -> None:
        seq = next(token_counter)
        token[d] = seq
        heapq.heappush(
            heap, _MaxEntry((evict_key(d), size[d], names[d]), seq, d)
        )

    def evict_one(t: int, pinned: set[int]) -> None:
        nonlocal used
        aside: list[_MaxEntry] = []
        chosen: _MaxEntry | None = None
        while heap:
            e = heapq.heappop(heap)
            if token.get(e.name) != e.seq or e.name not in resident:
                continue  # stale: superseded, evicted, or freed
            if e.name in pinned:
                aside.append(e)
                continue
            chosen = e
            break
        for e in aside:
            heapq.heappush(heap, e)
        if chosen is None:
            raise PlanError(
                f"cannot free device memory at t={t}: all resident "
                "data is pinned by the current operator"
            )
        victim = chosen.name
        del token[victim]
        del resident[victim]
        nxt = next_use(victim)
        where = (
            f"next use at step {int(nxt)}" if nxt != _INF else "no future use"
        )
        hv = host_valid[victim]
        needed_later = nxt != _INF or (is_out[victim] and not hv)
        vname = names[victim]
        if needed_later and not hv:
            why = (
                "dirty, writeback needed"
                if nxt != _INF
                else "unsaved output, save was due anyway"
            )
            emit(
                CopyToCPU(vname),
                f"evicted: policy={policy}, {where}, {why}",
            )
            emit(Free(vname), f"evicted: policy={policy}, {where}")
        elif nxt == _INF:
            emit(
                Free(vname),
                f"evicted: dead value, d2h skipped ({where})",
            )
        else:
            emit(
                Free(vname),
                f"evicted: policy={policy}, {where}, "
                "d2h skipped: host copy valid",
            )
        used -= size[victim]

    def free_dead(t: int, dead: list[int]) -> None:
        nonlocal used
        dead.sort(key=res_seq.__getitem__)
        for d in dead:
            if is_out[d] and not host_valid[d]:
                emit(
                    CopyToCPU(names[d]),
                    f"output save: last use passed at step {t}",
                )
                host_valid[d] = 1
            emit(Free(names[d]), f"freed: dead after step {t} (eager free)")
            used -= size[d]
            del resident[d]
            token.pop(d, None)

    for t, oid in enumerate(op_ids_l):
        ins = uin_ids[uin_ptr[oid] : uin_ptr[oid + 1]]
        outs = uout_ids[uout_ptr[oid] : uout_ptr[oid + 1]]
        missing = [d for d in ins if d not in resident]
        need = sum(size[d] for d in missing)
        need += sum(size[d] for d in outs)
        footprint = need + sum(size[d] for d in ins if d in resident)
        if footprint > capacity:
            raise PlanError(
                f"operator {op_names[oid]!r} footprint {footprint} floats "
                f"exceeds capacity {capacity}; run operator "
                "splitting first"
            )
        pinned = set(ins) | set(outs)
        while used + need > capacity:
            evict_one(t, pinned)
        for d in missing:
            nxt = last_use[d]
            emit(
                CopyToGPU(names[d]),
                f"upload: input of {op_names[oid]} (launch {t}), "
                f"last use at step {nxt}",
            )
            resident[d] = None
            arrived[d] = next(counter)
            touched[d] = next(counter)
            host_valid[d] = 1
            res_seq[d] = next(seq_counter)
            used += size[d]
        emit(Launch(op_names[oid]), f"launch: scheduled position {t}")
        tick = next(counter)
        for d in ins:
            touched[d] = tick
            # Consume this use: advance the next-use pointer past ``t``.
            i = use_ptr[d]
            end = uses_ptr[d + 1]
            while i < end and uses_t[i] <= t:
                i += 1
            use_ptr[d] = i
        for d in outs:
            if d not in resident:
                res_seq[d] = next(seq_counter)
            resident[d] = None
            arrived[d] = tick
            touched[d] = tick
            host_valid[d] = 0
            used += size[d]
        if eager_free:
            dead = [d for d in ins if last_use[d] <= t and d in resident]
            dead += [d for d in outs if last_use[d] == -1]
            if dead:
                free_dead(t, dead)
        # Eviction keys changed only for this operator's data; push
        # fresh heap entries for those still resident.
        for d in ins:
            if d in resident:
                push_entry(d)
        for d in outs:
            if d in resident:
                push_entry(d)
    # Save any template outputs still on device, then drain.
    for d in list(resident):
        if is_out[d] and not host_valid[d]:
            emit(CopyToCPU(names[d]), "output save: end of plan")
        emit(Free(names[d]), "freed: end of plan drain")
        del resident[d]
    return ExecutionPlan(
        steps=steps,
        capacity_floats=capacity,
        label=f"{policy}+{'eager' if eager_free else 'lazy'}",
        notes=notes,
    )
