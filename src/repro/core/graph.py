"""Parallel operator graph IR.

The framework's input representation (Section 3.1): a template is a
directed bipartite graph of *operators* (parallel computations, the
ellipses in Figure 1(b)) and *data structures* (rectangles).  Memory
footprints are statically defined — every data structure carries its
shape, and an operator's footprint is the total size of the data
structures it touches — which is the property the whole compilation
pipeline (splitting, offload scheduling, transfer scheduling) relies on.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(slots=True)
class DataStructure:
    """One array-valued vertex.

    ``parent``/``row_range`` mark chunks created by operator splitting:
    a chunk covers rows ``[row_range[0], row_range[1])`` of the logical
    parent array (splitting is along the leading axis, Section 3.2).
    A ``virtual`` data structure has been fully replaced by its chunks:
    it is kept for metadata but is never transferred or resident.
    """

    name: str
    shape: tuple[int, ...]
    is_input: bool = False
    is_output: bool = False
    parent: str | None = None
    row_range: tuple[int, int] | None = None
    virtual: bool = False

    def __post_init__(self) -> None:
        self.shape = tuple(int(s) for s in self.shape)
        if any(s < 0 for s in self.shape):
            raise ValueError(f"{self.name}: negative dimension in {self.shape}")

    @property
    def size(self) -> int:
        """Number of floats."""
        return math.prod(self.shape) if self.shape else 1

    @property
    def rows(self) -> int:
        return self.shape[0] if self.shape else 1


@dataclass(slots=True)
class Operator:
    """One parallel computation vertex.

    ``kind`` selects the implementation from the operator library
    (:mod:`repro.ops`); ``params`` carries kind-specific attributes
    (e.g. the region of the logical input a split part must read).
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        if not self.outputs:
            raise ValueError(f"operator {self.name} has no outputs")

    def touched(self) -> tuple[str, ...]:
        """All data structures read or written, without duplicates."""
        seen: dict[str, None] = {}
        for n in self.inputs + self.outputs:
            seen.setdefault(n)
        return tuple(seen)


@dataclass(slots=True)
class Slot:
    """Normalised view of one *logical* input of an operator.

    ``root`` names the logical array, ``rows`` the row range of it this
    operator reads (``None`` = all of it, e.g. a convolution kernel), and
    ``chunks`` the concrete data structures currently holding those rows.
    Unsplit operators have the identity structure (one chunk = the root).
    """

    root: str
    rows: tuple[int, int] | None
    chunks: list[str]


@dataclass(slots=True)
class OutSpec:
    """Normalised view of one *logical* output of an operator.

    The operator computes rows ``rng`` of the logical array ``root`` and
    scatters them into the listed ``(chunk_name, (r0, r1))`` pieces.
    """

    root: str
    rng: tuple[int, int]
    chunks: list[tuple[str, tuple[int, int]]]


def op_slots(op: "Operator", graph: "OperatorGraph") -> list[Slot]:
    """The operator's slot structure, defaulting to the identity."""
    slots = op.params.get("slots")
    if slots is not None:
        return slots
    return [Slot(root=d, rows=None, chunks=[d]) for d in op.inputs]


def op_out_specs(op: "Operator", graph: "OperatorGraph") -> list[OutSpec]:
    """The operator's output structure, defaulting to the identity."""
    specs = op.params.get("out_specs")
    if specs is not None:
        return specs
    out = []
    for d in op.outputs:
        rows = graph.data[d].rows
        out.append(OutSpec(root=d, rng=(0, rows), chunks=[(d, (0, rows))]))
    return out


def slot_size(op: "Operator", graph: "OperatorGraph", idx: int) -> int:
    """Floats in the logical region read through slot ``idx``."""
    slot = op_slots(op, graph)[idx]
    root = graph.data[slot.root]
    if slot.rows is None:
        return root.size
    r0, r1 = slot.rows
    per_row = root.size // max(root.rows, 1)
    return (r1 - r0) * per_row


def output_size(op: "Operator", graph: "OperatorGraph") -> int:
    """Total floats written by the operator (sum over output chunks)."""
    return sum(graph.data[d].size for d in op.outputs)


class GraphError(ValueError):
    """Structural error in an operator graph."""


class OperatorGraph:
    """A mutable parallel-operator-graph with dependency indexes.

    Insertion order is preserved and used as the deterministic tiebreak
    in every traversal, so compilation is reproducible.
    """

    def __init__(self, name: str = "template") -> None:
        self.name = name
        self.data: dict[str, DataStructure] = {}
        self.ops: dict[str, Operator] = {}
        self.producer: dict[str, str] = {}  # data -> producing op
        self.consumers: dict[str, list[str]] = {}  # data -> consuming ops
        self.children: dict[str, list[str]] = {}  # root -> chunk names
        # Derived-structure caches, dropped on any mutation.  Code that
        # bypasses the mutators (flipping ``DataStructure.virtual`` in
        # place) must call :meth:`invalidate_caches` itself.
        self._preds: dict[str, list[str]] | None = None
        self._succs: dict[str, list[str]] | None = None
        self._sorted_chunks: dict[str, tuple[list[str], list[int], list[int]]] = {}

    def invalidate_caches(self) -> None:
        """Drop cached adjacency/chunk indexes after a structural change."""
        self._invalidate_adjacency()
        self._invalidate_chunks()

    def _invalidate_adjacency(self) -> None:
        """Operator wiring changed (add/remove operator, set_op_io)."""
        self._preds = None
        self._succs = None

    def _invalidate_chunks(self) -> None:
        """Chunk structure changed (add/remove data, ``virtual`` flip)."""
        if self._sorted_chunks:
            self._sorted_chunks = {}

    def _adjacency(self) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
        if self._preds is None:
            preds: dict[str, list[str]] = {}
            succs: dict[str, list[str]] = {}
            for o, op in self.ops.items():
                seen: dict[str, None] = {}
                for d in op.inputs:
                    p = self.producer.get(d)
                    if p is not None:
                        seen.setdefault(p)
                preds[o] = list(seen)
            for o, op in self.ops.items():
                seen = {}
                for d in op.outputs:
                    for c in self.consumers.get(d, ()):
                        seen.setdefault(c)
                succs[o] = list(seen)
            self._preds, self._succs = preds, succs
        assert self._succs is not None
        return self._preds, self._succs

    # -- construction -----------------------------------------------------
    def add_data(
        self,
        name: str,
        shape: Iterable[int],
        *,
        is_input: bool = False,
        is_output: bool = False,
        parent: str | None = None,
        row_range: tuple[int, int] | None = None,
        virtual: bool = False,
    ) -> DataStructure:
        if name in self.data:
            raise GraphError(f"duplicate data structure {name!r}")
        ds = DataStructure(
            name=name,
            shape=tuple(shape),
            is_input=is_input,
            is_output=is_output,
            parent=parent,
            row_range=row_range,
            virtual=virtual,
        )
        self.data[name] = ds
        self.consumers.setdefault(name, [])
        if parent is not None:
            self.children.setdefault(parent, []).append(name)
        self._invalidate_chunks()
        return ds

    def add_operator(
        self,
        name: str,
        kind: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        **params: Any,
    ) -> Operator:
        if name in self.ops:
            raise GraphError(f"duplicate operator {name!r}")
        op = Operator(name, kind, tuple(inputs), tuple(outputs), params)
        for d in op.inputs:
            if d not in self.data:
                raise GraphError(f"operator {name}: unknown input {d!r}")
        for d in op.outputs:
            if d not in self.data:
                raise GraphError(f"operator {name}: unknown output {d!r}")
            if d in self.producer:
                raise GraphError(
                    f"data {d!r} already produced by {self.producer[d]!r}"
                )
            if self.data[d].is_input:
                raise GraphError(f"template input {d!r} cannot be an output")
        self.ops[name] = op
        for d in op.outputs:
            self.producer[d] = name
        for d in op.inputs:
            self.consumers[d].append(name)
        self._invalidate_adjacency()
        return op

    def remove_operator(self, name: str) -> Operator:
        op = self.ops.pop(name)
        for d in op.outputs:
            del self.producer[d]
        for d in op.inputs:
            self.consumers[d].remove(name)
        self._invalidate_adjacency()
        return op

    def set_op_io(
        self,
        op_name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
    ) -> None:
        """Rewire an operator's inputs/outputs, keeping indexes consistent.

        An input kept across the rewire whose datum has no producer (a
        template input, e.g. a shared kernel) skips the remove+append
        cycle on its consumers list: only producing operators observe
        consumer order (through :meth:`op_successors`), and a shared
        input's list can hold tens of thousands of split parts — one
        O(n) removal per rewired part is quadratic in the part count.
        """
        op = self.ops[op_name]
        old_in = op.inputs
        new_in = tuple(dict.fromkeys(inputs))
        old_counts: dict[str, int] = {}
        for d in old_in:
            old_counts[d] = old_counts.get(d, 0) + 1
        stable = {
            d
            for d in new_in
            if old_counts.get(d) == 1 and d not in self.producer
        }
        for d in op.outputs:
            del self.producer[d]
        for d in old_in:
            if d not in stable:
                self.consumers[d].remove(op_name)
        new_out = tuple(dict.fromkeys(outputs))
        for d in new_in:
            if d not in self.data:
                raise GraphError(f"set_op_io({op_name}): unknown input {d!r}")
        for d in new_out:
            if d not in self.data:
                raise GraphError(f"set_op_io({op_name}): unknown output {d!r}")
            if d in self.producer:
                raise GraphError(
                    f"set_op_io({op_name}): {d!r} already produced by "
                    f"{self.producer[d]!r}"
                )
        op.inputs = new_in
        op.outputs = new_out
        for d in new_out:
            self.producer[d] = op_name
        for d in new_in:
            if d not in stable:
                self.consumers[d].append(op_name)
        self._invalidate_adjacency()

    def remove_data(self, name: str) -> DataStructure:
        if name in self.producer:
            raise GraphError(f"cannot remove {name!r}: produced by an operator")
        if self.consumers.get(name):
            raise GraphError(f"cannot remove {name!r}: still consumed")
        self.consumers.pop(name, None)
        ds = self.data.pop(name)
        if ds.parent is not None:
            self.children[ds.parent].remove(name)
        self._invalidate_chunks()
        return ds

    def remove_data_bulk(self, names: Iterable[str]) -> None:
        """Remove several (unproduced, unconsumed) data structures at once.

        Equivalent to :meth:`remove_data` per name, but each shared
        parent's chunk list is compacted in a single pass rather than
        one O(P) scan per removal — the difference between linear and
        quadratic retirement when repartitioning replaces thousands of
        chunks of one root.
        """
        doomed: list[str] = []
        for name in names:
            if name in self.producer:
                raise GraphError(
                    f"cannot remove {name!r}: produced by an operator"
                )
            if self.consumers.get(name):
                raise GraphError(f"cannot remove {name!r}: still consumed")
            doomed.append(name)
        if not doomed:
            return
        gone = set(doomed)
        parents: dict[str, None] = {}
        for name in doomed:
            self.consumers.pop(name, None)
            ds = self.data.pop(name)
            if ds.parent is not None:
                parents.setdefault(ds.parent)
        for p in parents:
            self.children[p] = [c for c in self.children[p] if c not in gone]
        self._invalidate_chunks()

    # -- dependency structure -----------------------------------------------
    def op_predecessors(self, op_name: str) -> list[str]:
        """Operators producing any input of ``op_name`` (deduplicated)."""
        self.ops[op_name]  # preserve KeyError on unknown operators
        return list(self._adjacency()[0][op_name])

    def op_successors(self, op_name: str) -> list[str]:
        """Operators consuming any output of ``op_name`` (deduplicated)."""
        self.ops[op_name]
        return list(self._adjacency()[1][op_name])

    def roots(self) -> list[str]:
        """Operators with no operator predecessors."""
        preds = self._adjacency()[0]
        return [o for o in self.ops if not preds[o]]

    def leaves(self) -> list[str]:
        succs = self._adjacency()[1]
        return [o for o in self.ops if not succs[o]]

    def sorted_chunks(self, root: str) -> tuple[list[str], list[int], list[int]]:
        """Concrete chunks tiling ``root``, sorted by row range.

        Returns ``(names, starts, ends)`` with ``starts``/``ends`` parallel
        to ``names`` so range queries can bisect instead of scanning.  A
        non-virtual root tiles itself.  The result is cached on the graph;
        callers must not mutate it.
        """
        ds = self.data[root]
        if not ds.virtual:
            rng = ds.row_range or (0, ds.rows)
            return [root], [rng[0]], [rng[1]]
        entry = self._sorted_chunks.get(root)
        if entry is None:
            ranged = []
            for d in self.children.get(root, ()):
                cds = self.data[d]
                if not cds.virtual:
                    ranged.append((cds.row_range or (0, cds.rows), d))
            ranged.sort(key=lambda t: t[0])  # stable: ties keep insertion order
            entry = (
                [d for _, d in ranged],
                [r[0] for r, _ in ranged],
                [r[1] for r, _ in ranged],
            )
            self._sorted_chunks[root] = entry
        return entry

    def template_inputs(self) -> list[str]:
        return [d for d, ds in self.data.items() if ds.is_input]

    def template_outputs(self) -> list[str]:
        return [d for d, ds in self.data.items() if ds.is_output]

    # -- traversal -------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises on cycles; insertion-order tiebreak."""
        preds, succs = self._adjacency()
        indeg = {o: len(preds[o]) for o in self.ops}
        ready = deque(o for o in self.ops if indeg[o] == 0)
        order: list[str] = []
        while ready:
            op = ready.popleft()
            order.append(op)
            for s in succs[op]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.ops):
            raise GraphError(f"cycle detected in graph {self.name!r}")
        return order

    def validate(self) -> None:
        """Check the invariants the compilation pipeline relies on."""
        for d, ds in self.data.items():
            if ds.virtual:
                if d in self.producer or self.consumers.get(d):
                    raise GraphError(f"virtual data {d!r} still wired to operators")
                continue
            if not ds.is_input and d not in self.producer:
                if not self.consumers.get(d):
                    raise GraphError(f"orphan data structure {d!r}")
                raise GraphError(
                    f"data {d!r} consumed but never produced and not an input"
                )
            if ds.is_input and d in self.producer:
                raise GraphError(f"template input {d!r} has a producer")
            if ds.parent is not None and ds.row_range is None:
                raise GraphError(f"chunk {d!r} lacks a row_range")
            if ds.row_range is not None:
                r0, r1 = ds.row_range
                if not 0 <= r0 < r1:
                    raise GraphError(f"chunk {d!r}: bad row_range {ds.row_range}")
        self.topological_order()  # raises on cycles

    # -- analysis ---------------------------------------------------------------
    def op_footprint(self, op_name: str) -> int:
        """Memory footprint of one operator in floats (Section 3.2 step 1)."""
        return sum(self.data[d].size for d in self.ops[op_name].touched())

    def max_footprint(self) -> int:
        return max((self.op_footprint(o) for o in self.ops), default=0)

    def total_data_size(self) -> int:
        """Total size of all concrete data structures (template footprint)."""
        return sum(ds.size for ds in self.data.values() if not ds.virtual)

    def io_size(self) -> int:
        """Template inputs + outputs: the transfer lower bound of Table 1."""
        return sum(
            ds.size
            for ds in self.data.values()
            if not ds.virtual and (ds.is_input or ds.is_output)
        )

    def copy(self, name: str | None = None) -> "OperatorGraph":
        """Deep copy (compilation passes mutate graphs; templates stay pristine)."""
        import copy as _copy

        g = OperatorGraph(name or self.name)
        for d, ds in self.data.items():
            g.data[d] = _copy.deepcopy(ds)
            g.consumers[d] = list(self.consumers.get(d, ()))
        for o, op in self.ops.items():
            g.ops[o] = Operator(
                op.name, op.kind, op.inputs, op.outputs, _copy.deepcopy(op.params)
            )
        g.producer = dict(self.producer)
        g.children = {k: list(v) for k, v in self.children.items()}
        return g

    # -- misc -----------------------------------------------------------------
    def fresh_name(self, base: str) -> str:
        """A data/operator name not yet used, derived from ``base``."""
        if base not in self.data and base not in self.ops:
            return base
        i = 1
        while True:
            cand = f"{base}#{i}"
            if cand not in self.data and cand not in self.ops:
                return cand
            i += 1

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.ops.values())

    def __len__(self) -> int:
        return len(self.ops)

    def stats(self) -> dict[str, int]:
        return {
            "operators": len(self.ops),
            "data_structures": len(self.data),
            "total_floats": self.total_data_size(),
            "max_op_footprint": self.max_footprint(),
            "io_floats": self.io_size(),
        }
