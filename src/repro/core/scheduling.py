"""Operator scheduling heuristics (Section 3.3.1).

The paper adopts a depth-first schedule "to maximize data reuse so that
we need not transfer things back and forth between the CPU and GPU": the
entire sub-tree of a child is scheduled before its sibling, backtracking
when precedence constraints are unmet.  BFS and plain topological
schedules are provided as ablation baselines (the DFS-vs-BFS transfer
gap is one of the design choices DESIGN.md benchmarks).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from .graph import GraphError, OperatorGraph


def row_band(graph: OperatorGraph, op_name: str) -> tuple[int, int] | None:
    """The output row range a (split) operator produces, or ``None``.

    Split parts carry ``params["out_range"]``; unsplit operators have no
    band.  The multi-GPU partitioner keys its device assignment on this.
    """
    rng = graph.ops[op_name].params.get("out_range")
    return (rng[0], rng[1]) if rng else None


def _row_band_key(
    graph: OperatorGraph, op_name: str, index: dict[str, int]
) -> tuple[int, int]:
    """Sort key grouping split parts by the row band they produce.

    Visiting roots band-by-band (all operators covering rows [0,k) before
    any operator of the next band) lets depth-first exploration complete a
    whole band of the pipeline — producing, consuming and retiring its
    chunks — before starting the next, which is what keeps out-of-core
    transfer volume near the I/O bound.  Unsplit operators all map to
    band 0, so the order degenerates to insertion order on unsplit graphs.
    ``index`` maps operator name to insertion position (built once by the
    caller; an inline ``list(graph.ops).index`` would be quadratic).
    """
    op = graph.ops[op_name]
    rng = op.params.get("out_range")
    start = rng[0] if rng else 0
    return (start, index[op_name])


def _dfs(graph: OperatorGraph, roots: list[str]) -> list[str]:
    scheduled: set[str] = set()
    order: list[str] = []
    preds = {o: graph.op_predecessors(o) for o in graph.ops}
    stack = list(reversed(roots))
    while stack:
        op = stack.pop()
        if op in scheduled:
            continue
        if any(p not in scheduled for p in preds[op]):
            continue  # precedence not met: backtrack
        scheduled.add(op)
        order.append(op)
        stack.extend(reversed(graph.op_successors(op)))
    if len(order) != len(graph.ops):
        raise GraphError(
            f"dfs_schedule covered {len(order)}/{len(graph.ops)} operators "
            "(graph not reachable from roots?)"
        )
    return order


def dfs_schedule(graph: OperatorGraph) -> list[str]:
    """The paper's depth-first operator schedule, band-ordered roots.

    Iterative pre-order DFS from the root operators: an operator is
    scheduled the first time it is visited with all its predecessors
    already scheduled; otherwise the visit "backtracks" (the operator
    will be revisited as a successor of its last-scheduled predecessor,
    which guarantees completion on DAGs).  Root operators are visited in
    row-band order (see :func:`_row_band_key`); use
    :func:`dfs_naive_schedule` for plain insertion-order roots.
    """
    idx = {o: i for i, o in enumerate(graph.ops)}
    roots = sorted(graph.roots(), key=lambda o: _row_band_key(graph, o, idx))
    return _dfs(graph, roots)


def dfs_naive_schedule(graph: OperatorGraph) -> list[str]:
    """Depth-first schedule with insertion-order roots (ablation)."""
    return _dfs(graph, graph.roots())


def greedy_schedule(graph: OperatorGraph) -> list[str]:
    """Transfer-aware greedy schedule — the improvement the paper notes.

    Section 3.3.1 on the DFS heuristic: "The drawback of the approach is
    that the operator schedule does not take into account the GPU memory
    limitations at all ... there is scope for improvement by using
    information about the available GPU memory."  This scheduler uses
    that information's proxy: it maintains the set of values that would
    be live on the device and, among ready operators, runs the one that
    (a) needs the least non-live input volume fetched, then (b) retires
    the most live bytes (inputs whose last use it is), then (c) follows
    DFS order — locality-first with explicit transfer awareness.

    The live set mirrors the transfer scheduler's eager-free rule: an
    output is live only while consumers remain (dead-on-arrival outputs
    and template outputs past their last read get saved and freed, so
    they occupy no memory), and a value leaves the live set with its
    last read whether or not it is a template output.

    The ready set lives in a min-heap with lazy invalidation: scheduling
    an operator re-scores only the ready consumers of the data whose
    liveness actually changed, instead of the whole ready set.
    """
    preds = {o: set(graph.op_predecessors(o)) for o in graph.ops}
    remaining_reads = {d: len(cons) for d, cons in graph.consumers.items()}
    dfs_pos = {o: i for i, o in enumerate(dfs_schedule(graph))}
    uniq_inputs = {
        o: tuple(dict.fromkeys(op.inputs)) for o, op in graph.ops.items()
    }
    size = {d: ds.size for d, ds in graph.data.items()}
    live: set[str] = set()
    scheduled: set[str] = set()
    ready = {o for o, p in preds.items() if not p}
    order: list[str] = []

    def cost(o: str):
        fetch = 0
        freed = 0
        for d in uniq_inputs[o]:
            if d in live:
                if remaining_reads[d] == 1:
                    freed += size[d]
            else:
                fetch += size[d]
        return (fetch, -freed, dfs_pos[o])

    heap: list[tuple[tuple[int, int, int], int, str]] = []
    token: dict[str, int] = {}
    token_counter = itertools.count()

    def push(o: str) -> None:
        seq = next(token_counter)
        token[o] = seq
        heapq.heappush(heap, (cost(o), seq, o))

    for o in ready:
        push(o)
    while ready:
        while True:
            if not heap:
                raise GraphError("greedy_schedule did not cover all operators")
            _, seq, chosen = heapq.heappop(heap)
            if chosen in ready and token.get(chosen) == seq:
                break
        ready.discard(chosen)
        del token[chosen]
        scheduled.add(chosen)
        order.append(chosen)
        op = graph.ops[chosen]
        rescore: set[str] = set()
        for d in uniq_inputs[chosen]:
            remaining_reads[d] -= 1
            n = remaining_reads[d]
            if n == 0:
                live.discard(d)
            elif n == 1:
                # The freed-bytes bonus of d's remaining reader changed.
                rescore.update(graph.consumers.get(d, ()))
        for d in op.outputs:
            if graph.consumers.get(d):
                live.add(d)
        for s in graph.op_successors(chosen):
            if s not in scheduled and preds[s] <= scheduled:
                ready.add(s)
                push(s)
        for o in rescore:
            if o in ready:
                push(o)
    if len(order) != len(graph.ops):
        raise GraphError("greedy_schedule did not cover all operators")
    return order


def bfs_schedule(graph: OperatorGraph) -> list[str]:
    """Breadth-first (level-order) schedule — ablation baseline.

    Schedules all operators of one dependency level before the next,
    which maximises the set of simultaneously-live intermediates (the
    worst case for transfer volume under tight memory).
    """
    scheduled: set[str] = set()
    order: list[str] = []
    preds = {o: graph.op_predecessors(o) for o in graph.ops}
    queue = deque(graph.roots())
    while queue:
        op = queue.popleft()
        if op in scheduled:
            continue
        if any(p not in scheduled for p in preds[op]):
            queue.append(op)  # rotate until its predecessors ran
            continue
        scheduled.add(op)
        order.append(op)
        queue.extend(graph.op_successors(op))
    if len(order) != len(graph.ops):
        raise GraphError("bfs_schedule did not cover all operators")
    return order


def topo_schedule(graph: OperatorGraph) -> list[str]:
    """Kahn topological order with insertion-order tiebreak (ablation)."""
    return graph.topological_order()


SCHEDULERS = {
    "dfs": dfs_schedule,
    "dfs_naive": dfs_naive_schedule,
    "greedy": greedy_schedule,
    "bfs": bfs_schedule,
    "topo": topo_schedule,
}


def get_scheduler(name: str):
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown operator scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None
