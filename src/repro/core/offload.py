"""Offload-unit identification (Section 3.1, step 3).

"The next step is to partition the operator graph into offload units, or
sub-graphs that are atomically offloaded onto the GPU. ... In our
implementation, the individual operators are taken to be the offload
units."  The default therefore does nothing; :func:`identify_offload_units`
implements the coarsening the paper discusses: greedily fuse
producer/consumer chains into single offload units while the fused
footprint (including the now-internal intermediates) still fits device
memory.

Fusion is restricted to *unsplit* operators (identity slot structure):
split parts already carry chunked region metadata that must stay visible
to the transfer scheduler.
"""

from __future__ import annotations

from repro.ops import get_impl

from .graph import OperatorGraph


def _fusable(graph: OperatorGraph, name: str) -> bool:
    op = graph.ops[name]
    if "slots" in op.params or "out_specs" in op.params:
        return False
    impl = get_impl(op.kind)
    return impl is not None


def _chain_candidate(graph: OperatorGraph, a: str) -> str | None:
    """Return b when (a -> b) is a fusable producer/consumer chain."""
    op_a = graph.ops[a]
    succs = graph.op_successors(a)
    if len(succs) != 1:
        return None
    b = succs[0]
    # Every output of a must be consumed only by b and not needed outside.
    for d in op_a.outputs:
        if graph.data[d].is_output:
            return None
        if set(graph.consumers.get(d, ())) != {b}:
            return None
    if not (_fusable(graph, a) and _fusable(graph, b)):
        return None
    return b


def _fuse_pair(graph: OperatorGraph, a: str, b: str) -> str:
    """Replace operators a and b with one fused offload unit."""
    op_a, op_b = graph.ops[a], graph.ops[b]
    internal = list(op_a.outputs)
    ext_inputs = list(
        dict.fromkeys(
            list(op_a.inputs)
            + [d for d in op_b.inputs if d not in internal]
        )
    )
    outputs = list(op_b.outputs)
    # Private sub-graph: internal data plus boundary data marked as its
    # template inputs/outputs.
    sub = OperatorGraph(f"fused({a},{b})")
    for d in ext_inputs:
        sub.add_data(d, graph.data[d].shape, is_input=True)
    for d in internal:
        sub.add_data(d, graph.data[d].shape)
    for d in outputs:
        sub.add_data(d, graph.data[d].shape, is_output=True)
    if op_a.kind == "fused":
        _inline(sub, op_a)
    else:
        sub.add_operator(a, op_a.kind, op_a.inputs, op_a.outputs, **op_a.params)
    if op_b.kind == "fused":
        _inline(sub, op_b)
    else:
        sub.add_operator(b, op_b.kind, op_b.inputs, op_b.outputs, **op_b.params)
    internal_floats = sum(graph.data[d].size for d in internal)
    if op_a.kind == "fused":
        internal_floats += op_a.params.get("internal_floats", 0)
    if op_b.kind == "fused":
        internal_floats += op_b.params.get("internal_floats", 0)
    graph.remove_operator(a)
    graph.remove_operator(b)
    for d in internal:
        graph.remove_data(d)
    name = graph.fresh_name(f"fuse({a}+{b})")
    graph.add_operator(
        name,
        "fused",
        ext_inputs,
        outputs,
        subgraph=sub,
        input_names=ext_inputs,
        output_names=outputs,
        internal_floats=internal_floats,
    )
    return name


def _inline(sub: OperatorGraph, fused_op) -> None:
    """Copy a fused operator's sub-graph into another sub-graph."""
    inner: OperatorGraph = fused_op.params["subgraph"]
    for d, ds in inner.data.items():
        if d not in sub.data:
            sub.add_data(d, ds.shape)
    for o, op in inner.ops.items():
        sub.add_operator(o, op.kind, op.inputs, op.outputs, **op.params)


def identify_offload_units(graph: OperatorGraph, capacity_floats: int) -> int:
    """Greedy chain fusion under the device memory cap; returns #fusions.

    The fused unit's footprint counts external inputs/outputs *and* the
    internal intermediates: the whole unit must execute atomically within
    device memory.
    """
    fused = 0
    changed = True
    while changed:
        changed = False
        for a in list(graph.ops):
            if a not in graph.ops:
                continue
            b = _chain_candidate(graph, a)
            if b is None:
                continue
            op_a, op_b = graph.ops[a], graph.ops[b]
            internal = sum(graph.data[d].size for d in op_a.outputs)
            ext = set(op_a.inputs) | set(op_b.inputs) | set(op_b.outputs)
            ext -= set(op_a.outputs)
            footprint = sum(graph.data[d].size for d in ext) + internal
            footprint += op_a.params.get("internal_floats", 0)
            footprint += op_b.params.get("internal_floats", 0)
            if footprint > capacity_floats:
                continue
            _fuse_pair(graph, a, b)
            fused += 1
            changed = True
    if fused:
        graph.validate()
    return fused
