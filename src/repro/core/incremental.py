"""Incremental recompilation: fragment fingerprints + plan stitching.

Large templates are usually *forests*: a video clip is thousands of
per-frame pipelines sharing only a read-only filter bank, a batch
template is many independent branches.  Editing one branch of a
10k-operator template should not replan the other 9,900 operators — the
paper's compile-time story (Section 3.3's "compilation is fast enough to
run per input size") only scales if recompiles are proportional to the
*edit*, not the template.

This module makes compile time proportional to the dirty slice:

* :func:`graph_fragments` partitions the operator graph into independent
  **fragments** — weakly-connected components where read-only template
  inputs do not connect (a shared filter bank must not glue otherwise
  independent branches together);
* each fragment is extracted as a standalone subgraph
  (:func:`extract_fragment`) and fingerprinted with the plan cache's
  content-hash key discipline (``plan_key(..., kind="fragment")``) — the
  same sha256-over-canonical-JSON hash that keys whole-template plans,
  namespaced so fragment entries never collide with them;
* :func:`compile_incremental` compiles only the fragments whose
  fingerprint misses the cache (the full pipeline: splitting, candidate
  headrooms, scheduling, transfers) and **stitches** cached and fresh
  fragment plans back into one validated :class:`ExecutionPlan`.

Fragments are independent by construction — no produced datum crosses a
fragment boundary — so concatenating their plans is valid: each fragment
plan drains the device before the next begins, and shared template
inputs are simply re-uploaded per fragment.  The stitched plan is
therefore *not* byte-identical to a monolithic compile (which may
interleave fragments and keep shared inputs resident); it trades a small
amount of transfer volume for edit-proportional compile time.  For that
reason stitched results are never stored under the standard
whole-template plan key — only fragments are cached, under their own
``kind="fragment"`` keys.
"""

from __future__ import annotations

import copy as _copy
import os
from dataclasses import dataclass, field

from ..obs import Tracer
from ..obs.live.events import publish
from .framework import CompiledTemplate, CompileOptions, Framework
from .graph import Operator, OperatorGraph
from .plan import ExecutionPlan, Step, validate_plan
from .plancache import CachedPlan, plan_key
from .splitting import SplitReport


# ---------------------------------------------------------------------------
# Fragment partition
# ---------------------------------------------------------------------------
def graph_fragments(graph: OperatorGraph) -> list[list[str]]:
    """Partition operators into independent fragments.

    Two operators share a fragment iff they are connected through a
    *produced* datum (one writes it, the other reads it, or both read
    it).  Read-only template inputs do not connect: branches sharing a
    kernel or filter bank stay separate fragments — re-uploading a small
    shared input per fragment is the price of replanning branches
    independently.

    Returns op-name lists, each in template insertion order, ordered by
    their first operator's insertion position (deterministic, so the
    fragment sequence — and the stitched plan — is reproducible).
    """
    ops = list(graph.ops)
    idx = {o: i for i, o in enumerate(ops)}
    parent = list(range(len(ops)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for d, ds in graph.data.items():
        if ds.is_input or ds.virtual:
            continue
        members = []
        p = graph.producer.get(d)
        if p is not None:
            members.append(idx[p])
        members.extend(idx[c] for c in graph.consumers.get(d, ()))
        for m in members[1:]:
            union(members[0], m)

    groups: dict[int, list[str]] = {}
    for i, o in enumerate(ops):
        groups.setdefault(find(i), []).append(o)
    # group root = smallest member index; ops were appended in order, so
    # groups[r][0] is each fragment's first operator.
    return [groups[r] for r in sorted(groups)]


def extract_fragment(
    graph: OperatorGraph, op_names: list[str], *, name: str | None = None
) -> OperatorGraph:
    """The standalone subgraph induced by one fragment's operators.

    Carries every datum the fragment touches (shared template inputs are
    duplicated into each fragment that reads them), with consumer lists
    filtered to fragment members and insertion order preserved — the
    extraction is deterministic, so the fragment's content hash is too.
    """
    opset = set(op_names)
    sub = OperatorGraph(name or f"{graph.name}::fragment")
    needed: dict[str, None] = {}
    for o, op in graph.ops.items():
        if o not in opset:
            continue
        for d in op.inputs:
            needed.setdefault(d)
        for d in op.outputs:
            needed.setdefault(d)
    # chunk data needs its (possibly virtual) ancestors for row queries
    for d in list(needed):
        p = graph.data[d].parent
        while p is not None and p not in needed:
            needed.setdefault(p)
            p = graph.data[p].parent
    for d, ds in graph.data.items():
        if d not in needed:
            continue
        sub.data[d] = _copy.deepcopy(ds)
        sub.consumers[d] = [
            c for c in graph.consumers.get(d, ()) if c in opset
        ]
        if ds.parent is not None:
            sub.children.setdefault(ds.parent, []).append(d)
    for o, op in graph.ops.items():
        if o not in opset:
            continue
        sub.ops[o] = Operator(
            op.name, op.kind, op.inputs, op.outputs, _copy.deepcopy(op.params)
        )
        for d in op.outputs:
            sub.producer[d] = o
    return sub


def fragment_key(
    fragment: OperatorGraph, device, options: CompileOptions
) -> str:
    """Content fingerprint of one fragment compilation (cache key).

    Reuses the plan cache's sha256-over-canonical-JSON discipline; the
    ``kind="fragment"`` namespace keeps fragment entries disjoint from
    whole-template plans even for a single-fragment template.
    """
    return plan_key(fragment, device, options, kind="fragment")


# ---------------------------------------------------------------------------
# Incremental compilation
# ---------------------------------------------------------------------------
@dataclass
class IncrementalCompiled:
    """A stitched plan plus the fragment-reuse accounting."""

    compiled: CompiledTemplate
    total_fragments: int
    reused_fragments: int
    fragment_keys: list[str] = field(default_factory=list)

    @property
    def reuse_ratio(self) -> float:
        if not self.total_fragments:
            return 0.0
        return self.reused_fragments / self.total_fragments


def compile_incremental(
    framework: Framework,
    template: OperatorGraph,
    *,
    options: CompileOptions | None = None,
) -> IncrementalCompiled:
    """Compile ``template`` fragment-by-fragment, reusing cached fragments.

    Cold, this runs the full pipeline once per fragment and fills the
    fragment cache.  After an edit, only fragments whose content hash
    changed are recompiled — a one-branch edit of a 10k-operator forest
    replans one branch.  See module docstring for why the stitched plan
    is a distinct artifact from the monolithic ``Framework.compile``.
    """
    opts = options if options is not None else framework.options
    cache = framework.plan_cache
    device = framework.device
    capacity = device.usable_memory_floats
    tracer = Tracer()
    publish(
        "compile_incremental.start",
        template=template.name,
        device=device.name,
    )
    fragments = graph_fragments(template)
    entries: list[CachedPlan] = []
    keys: list[str] = []
    reused = 0
    with tracer.span(
        "compile_incremental",
        template=template.name,
        device=device.name,
        fragments=len(fragments),
    ) as root:
        for i, op_names in enumerate(fragments):
            sub = extract_fragment(template, op_names)
            key = fragment_key(sub, device, opts)
            keys.append(key)
            entry = cache.get(key) if cache is not None else None
            if entry is not None:
                reused += 1
                tracer.event(
                    "fragment_cache",
                    index=i,
                    hit=True,
                    key=key[:16],
                    ops=len(op_names),
                )
                entries.append(entry)
                continue
            tracer.event(
                "fragment_cache",
                index=i,
                hit=False,
                key=key[:16],
                ops=len(op_names),
            )
            try:
                with tracer.span("fragment_compile", index=i, ops=len(op_names)):
                    compiled = _compile_fragment(framework, sub, opts, capacity)
            except BaseException:
                # A shared cache may have elected us the per-key leader;
                # release it so followers stop waiting on a dead fill.
                if cache is not None:
                    cache.abandon(key)
                raise
            entry = CachedPlan(
                graph=compiled.graph,
                plan=compiled.plan,
                op_order=list(compiled.op_order),
                split_report=compiled.split_report,
                peak_device_floats=compiled.peak_device_floats,
                fused_units=compiled.fused_units,
            )
            if cache is not None:
                cache.put(key, entry)
            entries.append(entry)
        with tracer.span("stitch", fragments=len(fragments)) as sp:
            stitched = _stitch(framework, template, entries, opts, capacity)
            sp.set(steps=len(stitched.plan.steps))
        root.set(reused=reused, compiled=len(fragments) - reused)
    stitched.spans = sorted(tracer.spans, key=lambda s: s.start)
    publish(
        "compile_incremental.done",
        template=template.name,
        fragments=len(fragments),
        reused=reused,
        seconds=tracer.total_time(),
    )
    return IncrementalCompiled(
        compiled=stitched,
        total_fragments=len(fragments),
        reused_fragments=reused,
        fragment_keys=keys,
    )


def _compile_fragment(
    fw: Framework, sub: OperatorGraph, opts: CompileOptions, capacity: int
) -> CompiledTemplate:
    """One fragment through the standard pipeline (no whole-plan caching)."""
    out_of_core = opts.split and sub.total_data_size() > capacity
    candidates = opts.headroom_candidates() if out_of_core else (1.0,)
    return fw._compile_miss(
        sub,
        opts,
        capacity,
        out_of_core,
        candidates,
        Tracer(),
        None,
        candidates[0],
        {} if len(candidates) > 1 else None,
        None,
        None,
    )


def _stitch(
    fw: Framework,
    template: OperatorGraph,
    entries: list[CachedPlan],
    opts: CompileOptions,
    capacity: int,
) -> CompiledTemplate:
    """Concatenate fragment plans into one validated whole-template plan.

    Fragment plans each end with the device drained, and no produced
    datum crosses fragments, so concatenation in fragment order is a
    valid schedule; shared template inputs are re-uploaded per fragment
    (their earlier copy was freed in that fragment's drain).

    Data structures, operators and plan steps are *shared* with the
    cache entries rather than copied — the same read-only discipline as
    :meth:`Framework._compile_from_cache` — so stitching stays cheap
    (proportional to step count, not a deep copy of 100k-op graphs).
    """
    g = OperatorGraph(template.name)
    steps: list[Step] = []
    op_order: list[str] = []
    split_ops: dict = {}
    partitioned: dict = {}
    rounds = 0
    fused = 0
    with_notes = all(
        len(e.plan.notes) == len(e.plan.steps) for e in entries
    )
    notes: list[str] = []
    for entry in entries:
        eg = entry.graph
        for d, ds in eg.data.items():
            if d in g.data:
                continue  # a template input shared across fragments
            g.data[d] = ds
        for d, cons in eg.consumers.items():
            g.consumers.setdefault(d, []).extend(cons)
        for k, v in eg.children.items():
            have = g.children.setdefault(k, [])
            seen = set(have)
            have.extend(c for c in v if c not in seen)
        for o, op in eg.ops.items():
            g.ops[o] = op
            for d in op.outputs:
                g.producer[d] = o
        steps.extend(entry.plan.steps)
        if with_notes:
            notes.extend(entry.plan.notes)
        op_order.extend(entry.op_order)
        split_ops.update(entry.split_report.split_ops)
        partitioned.update(entry.split_report.partitioned_roots)
        rounds = max(rounds, entry.split_report.rounds)
        fused += entry.fused_units
    plan = ExecutionPlan(
        steps=steps,
        capacity_floats=capacity,
        label="incremental",
        notes=notes,
    )
    # Every fragment plan was validated at fill time and ends with the
    # device drained, so the concatenation's occupancy timeline is the
    # fragment timelines back to back: the stitched peak is exactly the
    # max of the fragment peaks, and re-walking 100k steps here would
    # make the warm path O(template) instead of O(edit).  Set
    # REPRO_VALIDATE_STITCH=1 to re-run the full validator (debugging).
    peak = max((e.peak_device_floats for e in entries), default=0)
    if os.environ.get("REPRO_VALIDATE_STITCH"):
        peak = validate_plan(plan, g, capacity)
    return CompiledTemplate(
        graph=g,
        plan=plan,
        op_order=op_order,
        split_report=SplitReport(
            rounds=rounds,
            split_ops=split_ops,
            partitioned_roots=partitioned,
        ),
        device=fw.device,
        host=fw.host,
        options=opts,
        peak_device_floats=peak,
        fused_units=fused,
    )
