"""Advisory cross-process file locks with staleness recovery.

The shared plan-cache tier (:class:`repro.core.plancache.SharedPlanCache`)
elects one *leader* per cache key across every process on the machine:
whoever creates ``<key>.lock`` first compiles, everyone else waits for
the stored entry to appear.  A lock file is therefore a liveness claim,
and the failure mode that matters is a leader dying mid-compile (or
mid-write) with the lock still on disk — followers must be able to
detect that and take over instead of waiting forever.

:class:`FileLock` implements exactly that contract:

* ``acquire()`` is a non-blocking ``O_CREAT | O_EXCL`` create — atomic
  on every POSIX filesystem and on Windows — that records the owner's
  pid and wall-clock timestamp in the file body;
* ``is_stale()`` declares a lock dead when its owning *pid* no longer
  exists (instant detection of killed leaders) or when the file is
  older than ``stale_after`` seconds (covers pid reuse and leaders that
  are alive but wedged);
* ``break_stale()`` removes a stale lock so the caller can contend for
  leadership again.  Two followers racing to break the same lock is
  harmless: both unlinks are idempotent, and the subsequent
  ``acquire()`` race has exactly one winner.

Locks are advisory — correctness of the cache never depends on them
(entries are written atomically via ``os.replace``); the lock only
prevents the *stampede* of N processes doing identical work.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class LockOwner:
    """Who holds a lock file: pid plus creation wall-clock time."""

    pid: int
    created: float

    @property
    def alive(self) -> bool:
        """Best-effort liveness: is a process with this pid running?"""
        if self.pid <= 0:
            return False
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            # A pid we may not signal still exists.
            return True
        except OSError:
            return False
        return True


class FileLock:
    """One advisory lock file; see module docstring for semantics.

    ``stale_after`` bounds how long a lock held by a *live* process is
    trusted (a wedged leader eventually loses leadership); a lock whose
    owner pid is gone is stale immediately.
    """

    def __init__(
        self,
        path: str,
        *,
        stale_after: float = 30.0,
        clock=time.time,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be > 0 seconds")
        self.path = path
        self.stale_after = stale_after
        self._clock = clock
        self._held = False

    # -- acquisition -----------------------------------------------------
    def acquire(self) -> bool:
        """Try to take the lock; non-blocking.  True iff we now own it."""
        body = f"{os.getpid()} {self._clock():.6f}\n"
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable directory: degrade to lockless (no dedupe).
            return False
        try:
            os.write(fd, body.encode("ascii"))
        finally:
            os.close(fd)
        self._held = True
        return True

    def release(self) -> None:
        """Drop the lock if we hold it (idempotent)."""
        if not self._held:
            return
        self._held = False
        try:
            os.remove(self.path)
        except OSError:
            pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # -- observation -----------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def owner(self) -> LockOwner | None:
        """Parse the lock file's owner; ``None`` if absent or garbled.

        A garbled (partially written / hand-damaged) lock file has no
        provable owner and is reported as owned by a dead pid so that
        staleness detection recovers it.
        """
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                raw = fh.read()
        except OSError:
            return None
        try:
            pid_text, ts_text = raw.split()
            return LockOwner(pid=int(pid_text), created=float(ts_text))
        except ValueError:
            return LockOwner(pid=-1, created=0.0)

    def is_stale(self) -> bool:
        """A lock is stale when its owner is dead or too old to trust."""
        owner = self.owner()
        if owner is None:
            return False  # no lock (or vanished between checks) — not stale
        if not owner.alive:
            return True
        return (self._clock() - owner.created) > self.stale_after

    def break_stale(self) -> bool:
        """Remove the lock iff it is stale.  True when a lock was removed.

        Safe under contention: a concurrent break (or a concurrent
        release by the owner) makes the unlink a no-op.
        """
        if not self.is_stale():
            return False
        try:
            os.remove(self.path)
            return True
        except OSError:
            return False


__all__ = ["FileLock", "LockOwner"]
