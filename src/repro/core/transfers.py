"""Data-transfer scheduling (Section 3.3.1, second half).

Given an operator schedule, decide when data structures move between
host and device so that device memory is never exceeded and transfer
volume is minimised.  The paper's heuristic, implemented here as policy
``"belady"``:

1. compute the time of use of every data structure statically from the
   operator schedule;
2. when space is needed, evict the resident data structure whose use is
   furthest in the future (the Belady/MIN insight from cache
   replacement, which the paper cites as the basis of its
   "latest time of use" rule);
3. remove data eagerly — delete device copies the moment they become
   unnecessary, and invalid host copies are never written back.

Alternative eviction policies (``"ltu"`` — the paper's literal static
latest-time-of-use rule, ``"lru"``, ``"fifo"``) are provided for the
ablation benchmarks, plus ``"cost"``: a writeback-aware refinement of
Belady.  Greedy furthest-next-use ignores that evicting *dirty* data
(device results with no valid host copy) costs a download on top of the
eventual re-upload, while clean data costs only the re-upload — which is
precisely why the paper qualifies its optimality claim ("provided all
the data structures are of the same size and are consumed exactly
once").  The cost policy ranks victims by the future transfer cost their
eviction incurs (0 for dead data or dirty outputs whose save is due
anyway; 1x size for clean-but-reused data; 2x size for dirty reused
intermediates), breaking ties by furthest next use.

Evicting a data structure that is still needed later (or is a template
output not yet saved) costs a device-to-host copy; dead or
host-consistent data is simply freed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Sequence

from .graph import OperatorGraph
from .plan import CopyToCPU, CopyToGPU, ExecutionPlan, Free, Launch, PlanError, Step

_INF = float("inf")


class _MaxEntry:
    """Eviction-heap entry: inverted comparison turns heapq into a max-heap.

    ``key`` embeds the data name as its last component, so keys are unique
    and ``__lt__`` alone defines a strict total order.  ``seq`` is the
    lazy-invalidation token: an entry is live only while it matches the
    scheduler's current token for ``name``.
    """

    __slots__ = ("key", "seq", "name")

    def __init__(self, key, seq: int, name: str) -> None:
        self.key = key
        self.seq = seq
        self.name = name

    def __lt__(self, other: "_MaxEntry") -> bool:
        return self.key > other.key


@dataclass(slots=True)
class Resident:
    """Book-keeping for one device-resident data structure.

    Shared by the single-device :class:`TransferScheduler` and the
    per-device residency maps of ``repro.multigpu.transfers``.
    """

    size: int
    arrived: int  # step counter, for FIFO
    touched: int  # step counter, for LRU
    host_valid: bool  # an identical copy exists in host memory


_Resident = Resident  # backward-compatible alias


class TransferScheduler:
    """Greedy transfer scheduling for a fixed operator order."""

    def __init__(
        self,
        graph: OperatorGraph,
        capacity_floats: int,
        *,
        policy: str = "belady",
        eager_free: bool = True,
        use_heap: bool = True,
    ) -> None:
        if policy not in ("belady", "cost", "ltu", "lru", "fifo"):
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.graph = graph
        self.capacity = capacity_floats
        self.policy = policy
        self.eager_free = eager_free
        # ``use_heap=False`` falls back to the reference linear-scan
        # eviction; it exists so tests can check the heap against it.
        self.use_heap = use_heap

    # -- public ------------------------------------------------------------
    def schedule(self, op_order: Sequence[str]) -> ExecutionPlan:
        graph = self.graph
        if set(op_order) != set(graph.ops):
            raise ValueError("op_order must cover exactly the graph's operators")
        # Static use times: op index for every read; last read per data.
        uses: dict[str, list[int]] = {d: [] for d in graph.data}
        for t, op_name in enumerate(op_order):
            for d in graph.ops[op_name].inputs:
                uses[d].append(t)
        is_output = {
            d: ds.is_output for d, ds in graph.data.items() if not ds.virtual
        }
        last_use = {
            d: (us[-1] if us else -1) for d, us in uses.items()
        }
        # ``use_ptr[d]`` indexes the first use of ``d`` not yet executed.
        # It is advanced eagerly in the main loop when an operator consumes
        # ``d``; between consumptions the pointer (and therefore every
        # eviction key) is constant, which is what lets the heap entries
        # below stay valid without re-sorting.
        use_ptr = {d: 0 for d in uses}
        counter = itertools.count()

        steps: list[Step] = []
        notes: list[str] = []  # provenance, parallel to steps (repro.obs)
        resident: dict[str, _Resident] = {}
        used = 0
        # Residency insertion sequence (dict order proxy) for free_dead;
        # separate from ``counter`` so LRU/FIFO ticks are untouched.
        res_seq: dict[str, int] = {}
        seq_counter = itertools.count()
        # Max-heap over (evict_key, size, name) with lazy invalidation:
        # ``token[d]`` names the single live entry per resident datum.
        heap: list[_MaxEntry] = []
        token: dict[str, int] = {}
        token_counter = itertools.count()
        use_heap = self.use_heap

        def emit(step: Step, reason: str) -> None:
            steps.append(step)
            notes.append(reason)

        def next_use(d: str) -> float:
            """First remaining use of ``d`` (eagerly-maintained pointer).

            No further reads: template outputs still need saving, which
            makes them the cheapest possible eviction (copy-out was due
            anyway); everything else is dead.
            """
            us = uses[d]
            i = use_ptr[d]
            return us[i] if i < len(us) else _INF

        def evict_key(d: str):
            if self.policy == "belady":
                return next_use(d)
            if self.policy == "cost":
                nxt = next_use(d)
                entry = resident[d]
                if nxt == _INF:
                    # Dead (or an output whose mandatory save happens on
                    # eviction): no *extra* future transfers.
                    cost = 0
                elif entry.host_valid:
                    cost = entry.size  # re-upload only
                elif is_output.get(d, False):
                    cost = entry.size  # save was due anyway + re-upload
                else:
                    cost = 2 * entry.size  # writeback + re-upload
                return (-cost, nxt)
            if self.policy == "ltu":
                return last_use[d]
            if self.policy == "lru":
                return -resident[d].touched
            return -resident[d].arrived  # fifo

        def push_entry(d: str) -> None:
            seq = next(token_counter)
            token[d] = seq
            heapq.heappush(
                heap, _MaxEntry((evict_key(d), resident[d].size, d), seq, d)
            )

        def evict_one(t: int, pinned: set[str]) -> None:
            nonlocal used
            if use_heap:
                aside: list[_MaxEntry] = []
                chosen: _MaxEntry | None = None
                while heap:
                    e = heapq.heappop(heap)
                    if token.get(e.name) != e.seq or e.name not in resident:
                        continue  # stale: superseded, evicted, or freed
                    if e.name in pinned:
                        aside.append(e)
                        continue
                    chosen = e
                    break
                for e in aside:
                    heapq.heappush(heap, e)
                if chosen is None:
                    raise PlanError(
                        f"cannot free device memory at t={t}: all resident "
                        "data is pinned by the current operator"
                    )
                victim = chosen.name
                del token[victim]
            else:
                candidates = [d for d in resident if d not in pinned]
                if not candidates:
                    raise PlanError(
                        f"cannot free device memory at t={t}: all resident data "
                        "is pinned by the current operator"
                    )
                victim = max(
                    candidates,
                    key=lambda d: (evict_key(d), resident[d].size, d),
                )
            entry = resident.pop(victim)
            nxt = next_use(victim)
            where = (
                f"next use at step {int(nxt)}" if nxt != _INF else "no future use"
            )
            needed_later = nxt != _INF or (
                is_output.get(victim, False) and not entry.host_valid
            )
            if needed_later and not entry.host_valid:
                why = (
                    "dirty, writeback needed"
                    if nxt != _INF
                    else "unsaved output, save was due anyway"
                )
                emit(
                    CopyToCPU(victim),
                    f"evicted: policy={self.policy}, {where}, {why}",
                )
                emit(Free(victim), f"evicted: policy={self.policy}, {where}")
            elif nxt == _INF:
                emit(
                    Free(victim),
                    f"evicted: dead value, d2h skipped ({where})",
                )
            else:
                emit(
                    Free(victim),
                    f"evicted: policy={self.policy}, {where}, "
                    "d2h skipped: host copy valid",
                )
            used -= entry.size

        def free_dead(t: int, dead: list[str]) -> None:
            """Eagerly drop device data with no future use (step 3).

            Under eager freeing nothing dead survives a step, so the dead
            set at step ``t`` is exactly the current operator's touched
            data whose last use has passed — the caller collects it and
            this emits the frees in residency (insertion) order, matching
            the original full scan of ``resident``.
            """
            nonlocal used
            dead.sort(key=res_seq.__getitem__)
            for d in dead:
                entry = resident[d]
                if is_output.get(d, False) and not entry.host_valid:
                    emit(
                        CopyToCPU(d),
                        f"output save: last use passed at step {t}",
                    )
                    entry.host_valid = True
                emit(Free(d), f"freed: dead after step {t} (eager free)")
                used -= entry.size
                del resident[d]
                token.pop(d, None)

        for t, op_name in enumerate(op_order):
            op = graph.ops[op_name]
            ins = list(dict.fromkeys(op.inputs))
            outs = list(dict.fromkeys(op.outputs))
            missing = [d for d in ins if d not in resident]
            need = sum(graph.data[d].size for d in missing)
            need += sum(graph.data[d].size for d in outs)
            footprint = need + sum(
                resident[d].size for d in ins if d in resident
            )
            if footprint > self.capacity:
                raise PlanError(
                    f"operator {op_name!r} footprint {footprint} floats "
                    f"exceeds capacity {self.capacity}; run operator "
                    "splitting first"
                )
            pinned = set(ins) | set(outs)
            while used + need > self.capacity:
                evict_one(t, pinned)
            for d in missing:
                nxt = last_use[d]
                emit(
                    CopyToGPU(d),
                    f"upload: input of {op_name} (launch {t}), "
                    f"last use at step {nxt}",
                )
                resident[d] = _Resident(
                    size=graph.data[d].size,
                    arrived=next(counter),
                    touched=next(counter),
                    host_valid=True,
                )
                res_seq[d] = next(seq_counter)
                used += resident[d].size
            emit(Launch(op_name), f"launch: scheduled position {t}")
            tick = next(counter)
            for d in ins:
                resident[d].touched = tick
                # Consume this use: advance the next-use pointer past ``t``.
                us = uses[d]
                i = use_ptr[d]
                while i < len(us) and us[i] <= t:
                    i += 1
                use_ptr[d] = i
            for d in outs:
                if d not in resident:
                    res_seq[d] = next(seq_counter)
                resident[d] = _Resident(
                    size=graph.data[d].size,
                    arrived=tick,
                    touched=tick,
                    host_valid=False,
                )
                used += resident[d].size
            if self.eager_free:
                dead = [d for d in ins if last_use[d] <= t and d in resident]
                dead += [d for d in outs if last_use[d] == -1]
                if dead:
                    free_dead(t, dead)
            if use_heap:
                # Eviction keys changed only for this operator's data;
                # push fresh heap entries for those still resident.
                for d in ins:
                    if d in resident:
                        push_entry(d)
                for d in outs:
                    if d in resident:
                        push_entry(d)
        # Save any template outputs still on device, then drain.
        for d in list(resident):
            entry = resident[d]
            if is_output.get(d, False) and not entry.host_valid:
                emit(CopyToCPU(d), "output save: end of plan")
            emit(Free(d), "freed: end of plan drain")
            del resident[d]
        return ExecutionPlan(
            steps=steps,
            capacity_floats=self.capacity,
            label=f"{self.policy}+{'eager' if self.eager_free else 'lazy'}",
            notes=notes,
        )


def schedule_transfers(
    graph: OperatorGraph,
    op_order: Sequence[str],
    capacity_floats: int,
    *,
    policy: str = "belady",
    eager_free: bool = True,
) -> ExecutionPlan:
    """Convenience wrapper over :class:`TransferScheduler`."""
    return TransferScheduler(
        graph, capacity_floats, policy=policy, eager_free=eager_free
    ).schedule(op_order)
