"""Content-addressed execution-plan cache.

Compiling the same template for the same device with the same options is
deterministic, so the result can be reused outright: the cache key is a
stable structural hash of (graph, device parameters, CompileOptions) and
the value is everything :meth:`repro.core.Framework.compile` would have
recomputed — split graph, plan, operator order, split report.  Repeat
compiles (the common case for a deployed template served against steady
traffic) become a hash plus a dictionary lookup.

Two tiers:

* an in-memory LRU (always on) holding live objects — hits share the
  graph/plan with earlier compiles, which is safe because the runtime
  executors only read them;
* an optional on-disk tier of JSON entries surviving process restarts.
  Enable it by passing ``disk_dir`` or via the ``REPRO_PLAN_CACHE``
  environment variable: ``1``/``on`` selects ``~/.cache/repro-plans``,
  any other non-empty value is used as the directory itself, and
  ``0``/``off``/unset disables it.  Corrupted entries are deleted and
  treated as misses, never propagated.

Keys are content-addressed, so *any* structural change — a different
graph, device parameter, or compile option — lands on a different key;
stale entries are never returned, only evicted by LRU order (memory) or
left unreferenced (disk).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.live.events import publish
from .filelock import FileLock
from .graph import OperatorGraph
from .plan import ExecutionPlan
from .serialize import graph_from_dict, graph_to_dict, plan_from_dict, plan_to_dict
from .splitting import SplitReport

#: bump when the entry payload or key layout changes; old disk entries
#: are then treated as corrupt and rewritten
#: (2: plan dicts carry schema_version)
CACHE_VERSION = 2


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Best-effort canonical JSON view for key hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    return str(obj)


def plan_key(
    graph: OperatorGraph,
    device: Any,
    options: Any,
    *,
    kind: str = "single",
    extra: Any = None,
) -> str:
    """Stable content hash of one compilation's full input.

    ``device`` and ``options`` may be any (possibly nested) dataclasses;
    ``extra`` carries additional key material (e.g. the transfer mode and
    host system of a multi-GPU compile).  The hash is over canonical JSON
    (sorted keys), so it is stable across processes and platforms.
    """
    payload = {
        "version": CACHE_VERSION,
        "kind": kind,
        "graph": graph_to_dict(graph),
        "device": _canonical(device),
        "options": _canonical(options),
        "extra": extra,
    }
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_canonical
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------
@dataclass
class CachedPlan:
    """Everything a compile would recompute, ready for reuse."""

    graph: OperatorGraph
    plan: ExecutionPlan
    op_order: list[str]
    split_report: SplitReport
    peak_device_floats: int = 0
    fused_units: int = 0
    #: compile-metrics snapshot at fill time (reused on hits so a warm
    #: compile does not re-walk a 100k-step plan to rebuild gauges)
    metrics: dict[str, Any] = field(default_factory=dict)
    #: JSON-able side payload (e.g. the multi-GPU partition)
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": CACHE_VERSION,
            "graph": graph_to_dict(self.graph),
            "plan": plan_to_dict(self.plan),
            "op_order": list(self.op_order),
            "split_report": {
                "rounds": self.split_report.rounds,
                "split_ops": dict(self.split_report.split_ops),
                "partitioned_roots": dict(self.split_report.partitioned_roots),
            },
            "peak_device_floats": self.peak_device_floats,
            "fused_units": self.fused_units,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "CachedPlan":
        if raw.get("version") != CACHE_VERSION:
            raise ValueError(
                f"plan-cache entry version {raw.get('version')!r} != "
                f"{CACHE_VERSION}"
            )
        sr = raw.get("split_report", {})
        return cls(
            graph=graph_from_dict(raw["graph"]),
            plan=plan_from_dict(raw["plan"]),
            op_order=list(raw["op_order"]),
            split_report=SplitReport(
                rounds=int(sr.get("rounds", 0)),
                split_ops=dict(sr.get("split_ops", {})),
                partitioned_roots=dict(sr.get("partitioned_roots", {})),
            ),
            peak_device_floats=int(raw.get("peak_device_floats", 0)),
            fused_units=int(raw.get("fused_units", 0)),
            metrics=dict(raw.get("metrics", {})),
            extra=dict(raw.get("extra", {})),
        )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------
class PlanCache:
    """In-memory LRU + optional on-disk tier of compiled plans."""

    def __init__(
        self, max_entries: int = 32, disk_dir: str | None = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self._mem: OrderedDict[str, CachedPlan] = OrderedDict()
        self.hits = 0  # memory-tier hits
        self.disk_hits = 0
        self.misses = 0
        self.disk_writes = 0
        self.corrupt_entries = 0

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> CachedPlan | None:
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            publish("plancache.hit", tier="memory", key=key[:12])
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.disk_hits += 1
            self._mem_put(key, entry)
            publish("plancache.hit", tier="disk", key=key[:12])
            return entry
        self.misses += 1
        publish("plancache.miss", key=key[:12])
        return None

    def put(self, key: str, entry: CachedPlan) -> None:
        self._mem_put(key, entry)
        self._disk_put(key, entry)
        publish("plancache.store", key=key[:12], entries=len(self._mem))

    def clear(self) -> None:
        self._mem.clear()

    def abandon(self, key: str) -> None:
        """Give up on a pending fill for ``key`` (compile failed).

        A plain cache has nothing to clean up; the shared cross-process
        tier overrides this to release the key's leadership lock so
        followers stop waiting on a compile that will never land.
        """

    def __len__(self) -> int:
        return len(self._mem)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "entries": len(self._mem),
            "disk_writes": self.disk_writes,
            "corrupt_entries": self.corrupt_entries,
        }

    # -- memory tier -----------------------------------------------------
    def _mem_put(self, key: str, entry: CachedPlan) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    # -- disk tier -------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.json")

    def _disk_get(self, key: str) -> CachedPlan | None:
        if self.disk_dir is None:
            return None
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return CachedPlan.from_dict(json.load(fh))
        except Exception:
            # Truncated write, stale version, hand-edited junk: drop the
            # entry and recompile rather than surface a broken plan.
            self.corrupt_entries += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, entry: CachedPlan) -> None:
        if self.disk_dir is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.disk_dir, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry.to_dict(), fh)
            os.replace(tmp, self._path(key))  # atomic: readers never see partials
            self.disk_writes += 1
        except OSError:
            pass  # a read-only or full disk degrades to memory-only


# ---------------------------------------------------------------------------
# Shared cross-process tier
# ---------------------------------------------------------------------------
class SharedPlanCache(PlanCache):
    """A :class:`PlanCache` whose disk tier is shared across processes,
    with stampede protection.

    Many independent processes (shard workers, CLI invocations, test
    runners) cold-starting against the same template would all compile
    it concurrently — N× the work for one cache entry.  This tier adds
    per-key **leader election** over advisory lock files
    (:class:`repro.core.filelock.FileLock`):

    * the first process to miss on a key acquires ``<key>.lock`` and
      becomes the *leader*; its ``get()`` returns ``None`` and its
      eventual ``put()`` stores the entry (atomic ``os.replace``) and
      releases the lock;
    * every other process missing on the same key becomes a *follower*:
      its ``get()`` blocks, polling for the stored entry, and returns
      the leader's bytes — exactly one compile happens machine-wide;
    * a leader that dies mid-compile (or mid-write) leaves a lock whose
      pid is dead: followers detect the **stale lock**, break it, and
      contend to become the new leader.  Partial entry files are never
      visible (atomic replace); orphaned ``.tmp-*`` spill files are
      swept when a stale lock is broken.
    * a follower that waits longer than ``lock_timeout`` gives up on
      dedupe and compiles locally — availability beats deduplication.

    The class is also thread-safe (the in-memory tier and counters are
    lock-protected), so one instance can serve a whole worker pool
    without the service-side locking wrapper.
    """

    def __init__(
        self,
        disk_dir: str,
        max_entries: int = 32,
        *,
        lock_timeout: float = 60.0,
        stale_after: float = 10.0,
        poll_interval: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not disk_dir:
            raise ValueError("SharedPlanCache requires a disk_dir")
        if lock_timeout <= 0 or poll_interval <= 0:
            raise ValueError("lock_timeout and poll_interval must be > 0")
        super().__init__(max_entries=max_entries, disk_dir=disk_dir)
        self.lock_timeout = lock_timeout
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self._clock = clock
        self._sleep = sleep
        self._tlock = threading.RLock()
        self._held: dict[str, FileLock] = {}
        self.lock_waits = 0  # gets that entered the follower wait
        self.follower_hits = 0  # waits resolved by the leader's entry
        self.lock_breaks = 0  # stale locks broken
        self.lock_timeouts = 0  # waits abandoned -> local compile

    # -- lock plumbing ---------------------------------------------------
    def _lock_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.lock")

    def _make_lock(self, key: str) -> FileLock:
        os.makedirs(self.disk_dir, exist_ok=True)  # type: ignore[arg-type]
        return FileLock(self._lock_path(key), stale_after=self.stale_after)

    def _sweep_tmp(self) -> None:
        """Remove orphaned atomic-write spill files left by dead writers."""
        try:
            with os.scandir(self.disk_dir) as it:  # type: ignore[arg-type]
                now = time.time()
                for entry in it:
                    if not entry.name.startswith(".tmp-"):
                        continue
                    try:
                        if now - entry.stat().st_mtime > self.stale_after:
                            os.remove(entry.path)
                    except OSError:
                        continue
        except OSError:
            pass

    # -- hits ------------------------------------------------------------
    def _mem_hit(self, key: str) -> CachedPlan | None:
        with self._tlock:
            entry = self._mem.get(key)
            if entry is None:
                return None
            self._mem.move_to_end(key)
            self.hits += 1
        publish("plancache.hit", tier="memory", key=key[:12])
        return entry

    def _disk_hit(self, key: str, *, follower: bool = False) -> CachedPlan | None:
        entry = self._disk_get(key)
        if entry is None:
            return None
        with self._tlock:
            self.disk_hits += 1
            if follower:
                self.follower_hits += 1
            self._mem_put(key, entry)
        publish(
            "plancache.hit",
            tier="disk",
            key=key[:12],
            follower=follower,
        )
        return entry

    # -- the shared protocol ---------------------------------------------
    def get(self, key: str) -> CachedPlan | None:  # type: ignore[override]
        entry = self._mem_hit(key)
        if entry is not None:
            return entry
        entry = self._disk_hit(key)
        if entry is not None:
            return entry
        # Cold machine-wide (or leader in flight): contend for leadership.
        lock = self._make_lock(key)
        deadline = self._clock() + self.lock_timeout
        waited = False
        while True:
            if lock.acquire():
                # Double-check: the previous leader may have stored the
                # entry between our probe and its release.
                entry = self._disk_hit(key, follower=waited)
                if entry is not None:
                    lock.release()
                    return entry
                with self._tlock:
                    self._held[key] = lock
                    self.misses += 1
                publish("plancache.miss", key=key[:12], leader=True)
                return None  # we are the leader; caller compiles + put()s
            if not waited:
                waited = True
                with self._tlock:
                    self.lock_waits += 1
                publish("plancache.lock_wait", key=key[:12])
            if lock.is_stale():
                if lock.break_stale():
                    with self._tlock:
                        self.lock_breaks += 1
                    self._sweep_tmp()
                    publish("plancache.lock_break", key=key[:12])
                continue  # recontend immediately
            if self._clock() >= deadline:
                with self._tlock:
                    self.lock_timeouts += 1
                    self.misses += 1
                publish("plancache.lock_timeout", key=key[:12])
                return None  # give up on dedupe; compile locally
            self._sleep(self.poll_interval)
            entry = self._disk_hit(key, follower=True)
            if entry is not None:
                return entry

    def put(self, key: str, entry: CachedPlan) -> None:  # type: ignore[override]
        with self._tlock:
            self._mem_put(key, entry)
        self._disk_put(key, entry)
        publish("plancache.store", key=key[:12], entries=len(self))
        self.abandon(key)  # release leadership, if we held it

    def abandon(self, key: str) -> None:
        """Release ``key``'s leadership lock without storing an entry."""
        with self._tlock:
            lock = self._held.pop(key, None)
        if lock is not None:
            lock.release()

    def clear(self) -> None:
        with self._tlock:
            super().clear()
            held, self._held = dict(self._held), {}
        for lock in held.values():
            lock.release()

    def __len__(self) -> int:
        with self._tlock:
            return len(self._mem)

    def stats(self) -> dict[str, int]:
        with self._tlock:
            out = super().stats()
            out.update({
                "lock_waits": self.lock_waits,
                "follower_hits": self.follower_hits,
                "lock_breaks": self.lock_breaks,
                "lock_timeouts": self.lock_timeouts,
            })
            return out


# ---------------------------------------------------------------------------
# Process-default cache
# ---------------------------------------------------------------------------
_DEFAULT: PlanCache | None = None


def _disk_dir_from_env() -> str | None:
    raw = os.environ.get("REPRO_PLAN_CACHE", "").strip()
    if raw.lower() in ("", "0", "off", "none", "false"):
        return None
    if raw.lower() in ("1", "on", "true", "default"):
        return os.path.join(os.path.expanduser("~"), ".cache", "repro-plans")
    return raw


def default_cache() -> PlanCache:
    """The process-wide cache used by :class:`repro.core.Framework`."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PlanCache(disk_dir=_disk_dir_from_env())
    return _DEFAULT


def reset_default_cache() -> None:
    """Forget the process-default cache (tests, env-var changes)."""
    global _DEFAULT
    _DEFAULT = None
