"""End-to-end GPU execution framework (Figure 4).

Ties the compilation steps together exactly as the paper's flow diagram:

    domain-specific template (operator graph)
      -> operator splitting             (satisfy GPU memory constraints)
      -> offload-unit identification    (one operator per unit by default)
      -> offload + data transfer scheduling
      -> execution plan
      -> code generation / plan execution

Re-targeting to a different device or data size is just re-compiling the
template against different :class:`~repro.gpusim.GpuDevice` parameters —
the application code does not change (the paper's "performance
portability" claim).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

import numpy as np

from repro._compat import UNSET as _UNSET
from repro._compat import explicit_kwargs as _explicit
from repro._compat import legacy_positional
from repro.gpusim import GpuDevice, HostSystem, SimRuntime
from repro.obs import MetricsRegistry, Span, Tracer, provenance_summary
from repro.obs.live.events import publish
from repro.runtime.executor import (
    ExecutionResult,
    SimulatedRun,
    execute_plan,
    simulate_plan,
)

from .baseline import baseline_plan
from .columnar import (
    COLUMNAR_SCHEDULERS,
    lower as lower_columnar,
    schedule_transfers_columnar,
)
from .graph import OperatorGraph
from .offload import identify_offload_units
from .plan import ExecutionPlan, validate_plan
from .plancache import CachedPlan, PlanCache, default_cache, plan_key
from .scheduling import get_scheduler
from .serialize import graph_to_dict
from .splitting import SplitReport, make_feasible
from .transfers import schedule_transfers


@dataclass(frozen=True, kw_only=True)
class CompileOptions:
    """Knobs of the compilation pipeline (ablation surface).

    Construction is keyword-only — the option set has grown past the
    point where positional calls stay readable.  Positional construction
    still works behind a :class:`DeprecationWarning` shim and produces
    an identical (byte-identical plans) instance.
    """

    scheduler: str = "dfs"  # dfs | dfs_naive | bfs | topo
    eviction_policy: str = "belady"  # belady | cost | ltu | lru | fifo
    eager_free: bool = True
    split: bool = True
    #: in the out-of-core regime (template footprint > device memory),
    #: split operators to 1/headroom of capacity instead of just-fitting,
    #: so a whole row band of the pipeline stays resident and streams.
    #: 1.0 reproduces the paper's minimal splitting; "auto" compiles a
    #: small candidate set and keeps the plan with the least transfer
    #: volume (streaming pipelines prefer finer splits, reuse-heavy
    #: graphs like CNNs prefer minimal ones).
    split_headroom: float | str = "auto"
    #: fuse chains of operators into coarser offload units (Section 3.1
    #: discusses the trade-off; the paper itself uses one op per unit)
    fuse_offload_units: bool = False

    def headroom_candidates(self) -> tuple[float, ...]:
        if self.split_headroom == "auto":
            return (1.0, 2.0, 4.0)
        return (float(self.split_headroom),)


_OPTION_FIELDS = tuple(f.name for f in fields(CompileOptions))
_options_kw_init = CompileOptions.__init__


def _options_compat_init(self, *args, **kwargs) -> None:
    legacy_positional("CompileOptions", _OPTION_FIELDS, args, kwargs)
    _options_kw_init(self, **kwargs)


CompileOptions.__init__ = _options_compat_init  # type: ignore[method-assign]


def planner_engine() -> str:
    """Which planner implementation the compile pipeline runs.

    ``"columnar"`` (the default) lowers the split graph into the flat
    tables of :mod:`repro.core.columnar` and runs the byte-identical
    vectorized scheduler/transfer loops over them.  Set
    ``REPRO_PLANNER=object`` to force the original per-object planner —
    the reference oracle the differential suite compares against.
    """
    engine = os.environ.get("REPRO_PLANNER", "columnar")
    if engine not in ("columnar", "object"):
        raise ValueError(
            f"REPRO_PLANNER={engine!r} (expected 'columnar' or 'object')"
        )
    return engine


@dataclass
class CompiledTemplate:
    """Result of compiling one template for one device."""

    graph: OperatorGraph  # the (possibly split) working graph
    plan: ExecutionPlan
    op_order: list[str]
    split_report: SplitReport
    device: GpuDevice
    host: HostSystem | None
    options: CompileOptions
    peak_device_floats: int = 0
    fused_units: int = 0
    #: wall-clock trace spans of every compilation phase (repro.obs)
    spans: list[Span] = field(default_factory=list)
    #: metrics snapshot of the compilation (plan gauges, reason counters)
    metrics: dict[str, object] = field(default_factory=dict)

    def transfer_floats(self) -> int:
        return self.plan.transfer_floats(self.graph)

    def summary(self) -> dict[str, object]:
        s: dict[str, object] = dict(self.plan.summary(self.graph))
        s.update(
            device=self.device.name,
            operators=len(self.graph.ops),
            split_ops=len(self.split_report.split_ops),
            peak_device_floats=self.peak_device_floats,
        )
        return s


class Framework:
    """The proposed GPU execution framework, bound to one target platform."""

    def __init__(
        self,
        device: GpuDevice,
        *legacy,
        host: HostSystem | None = _UNSET,
        options: CompileOptions | None = _UNSET,
        plan_cache: PlanCache | bool | None = _UNSET,
    ) -> None:
        merged = legacy_positional(
            "Framework",
            ("host", "options", "plan_cache"),
            legacy,
            _explicit(host=host, options=options, plan_cache=plan_cache),
        )
        host = merged.get("host")
        options = merged.get("options")
        plan_cache = merged.get("plan_cache", True)
        self.device = device
        self.host = host
        self.options = options or CompileOptions()
        # True -> the process-default cache; False/None -> caching off;
        # a PlanCache instance -> that cache (tests, isolated benchmarks).
        if plan_cache is True:
            self.plan_cache: PlanCache | None = default_cache()
        elif plan_cache is False or plan_cache is None:
            self.plan_cache = None
        else:
            self.plan_cache = plan_cache

    # -- compilation -----------------------------------------------------------
    def compile(
        self,
        template: OperatorGraph,
        *,
        options: CompileOptions | None = None,
    ) -> CompiledTemplate:
        """Produce an optimized, validated execution plan for the template.

        ``options`` overrides the framework's construction-time options
        for this one compile (the facade and the execution service use
        this to serve per-request options from one shared Framework).

        With ``split_headroom="auto"`` (the default) several split
        granularities are compiled and the plan with the least transfer
        volume wins — transfer volume is a static property of the plan,
        so the selection costs only compile time, never execution time.
        Candidates whose split graphs coincide share one scheduling and
        transfer pipeline instead of recompiling identical work.

        Compilation is deterministic, so the result is stored in the
        content-addressed plan cache (keyed on graph + device + options)
        and repeat compiles return it without re-running the pipeline.
        Pass ``plan_cache=False`` to the constructor to opt out.
        """
        opts = options if options is not None else self.options
        publish(
            "compile.start",
            template=template.name,
            device=self.device.name,
        )
        cache = self.plan_cache
        key: str | None = None
        if cache is not None:
            key = plan_key(template, self.device, opts)
            entry = cache.get(key)
            if entry is not None:
                compiled = self._compile_from_cache(entry, key, opts)
                publish(
                    "compile.done",
                    template=template.name,
                    cached=True,
                    seconds=sum(s.duration for s in compiled.spans),
                )
                return compiled
        capacity = self.device.usable_memory_floats
        out_of_core = (
            opts.split
            and template.total_data_size() > capacity
        )
        candidates = (
            opts.headroom_candidates() if out_of_core else (1.0,)
        )
        tracer = Tracer()
        best: CompiledTemplate | None = None
        best_headroom = candidates[0]
        dedupe: dict[str, CompiledTemplate] | None = (
            {} if len(candidates) > 1 else None
        )
        try:
            return self._compile_miss(
                template, opts, capacity, out_of_core, candidates,
                tracer, best, best_headroom, dedupe, cache, key,
            )
        except BaseException:
            # A shared cross-process cache may have elected this compile
            # the per-key leader at get() time; failing without abandon()
            # would leave followers waiting on a fill that never lands.
            if cache is not None and key is not None:
                cache.abandon(key)
            raise

    def _compile_miss(
        self,
        template: OperatorGraph,
        opts: "CompileOptions",
        capacity: int,
        out_of_core: bool,
        candidates,
        tracer: Tracer,
        best: "CompiledTemplate | None",
        best_headroom,
        dedupe,
        cache,
        key: str | None,
    ) -> "CompiledTemplate":
        with tracer.span(
            "compile",
            template=template.name,
            device=self.device.name,
            out_of_core=out_of_core,
            candidates=len(candidates),
            plan_cache="miss" if cache is not None else "off",
        ) as root:
            if cache is not None and key is not None:
                tracer.event("plan_cache", hit=False, key=key[:16])
            for headroom in candidates:
                compiled = self._compile_once(
                    template, capacity, headroom, tracer, dedupe=dedupe,
                    opts=opts,
                )
                if best is None or (
                    compiled.transfer_floats(),
                    len(compiled.plan.launches()),
                ) < (best.transfer_floats(), len(best.plan.launches())):
                    best = compiled
                    best_headroom = headroom
            assert best is not None
            root.set(
                selected_headroom=best_headroom,
                transfer_floats=best.transfer_floats(),
                launches=len(best.plan.launches()),
            )
        best.spans = sorted(tracer.spans, key=lambda s: s.start)
        best.metrics = self._compile_metrics(
            best, len(candidates), tracer, cache=cache
        )
        if cache is not None and key is not None:
            cache.put(
                key,
                CachedPlan(
                    graph=best.graph,
                    plan=best.plan,
                    op_order=list(best.op_order),
                    split_report=best.split_report,
                    peak_device_floats=best.peak_device_floats,
                    fused_units=best.fused_units,
                    metrics=best.metrics,
                ),
            )
        publish(
            "compile.done",
            template=template.name,
            cached=False,
            seconds=tracer.total_time(),
            candidates=len(candidates),
            launches=len(best.plan.launches()),
        )
        return best

    def _compile_from_cache(
        self, entry: CachedPlan, key: str, opts: CompileOptions | None = None
    ) -> CompiledTemplate:
        """Rehydrate a cache hit as a fresh :class:`CompiledTemplate`.

        The graph/plan/split-report objects are shared with the cache
        entry (the executors only read them); the op-order list is copied
        because callers may reorder it.  The compile-metrics snapshot is
        reused from fill time with the cache counters and wall time
        overlaid, so a warm compile never re-walks the plan.
        """
        tracer = Tracer()
        with tracer.span(
            "compile",
            template=entry.graph.name,
            device=self.device.name,
            plan_cache="hit",
        ) as root:
            tracer.event("plan_cache", hit=True, key=key[:16])
            root.set(launches=len(entry.op_order))
        compiled = CompiledTemplate(
            graph=entry.graph,
            plan=entry.plan,
            op_order=list(entry.op_order),
            split_report=entry.split_report,
            device=self.device,
            host=self.host,
            options=opts if opts is not None else self.options,
            peak_device_floats=entry.peak_device_floats,
            fused_units=entry.fused_units,
        )
        compiled.spans = sorted(tracer.spans, key=lambda s: s.start)
        compiled.metrics = self._cache_hit_metrics(
            entry.metrics, tracer, self.plan_cache
        )
        return compiled

    @staticmethod
    def _cache_hit_metrics(
        entry_metrics: dict[str, Any],
        tracer: Tracer,
        cache: PlanCache | None,
    ) -> dict[str, Any]:
        snap = copy.deepcopy(entry_metrics)
        counters = snap.setdefault("counters", {})
        counters["plan_cache.hit"] = 1
        counters["plan_cache.miss"] = 0
        gauges = snap.setdefault("gauges", {})
        wall = tracer.total_time()
        gauges["compile.wall_seconds"] = {"value": wall, "peak": wall}
        if cache is not None:
            n = len(cache)
            gauges["plan_cache.entries"] = {"value": n, "peak": n}
        return snap

    @staticmethod
    def _compile_metrics(
        compiled: CompiledTemplate,
        candidates: int,
        tracer: Tracer,
        cache: PlanCache | None = None,
    ) -> dict[str, object]:
        metrics = MetricsRegistry()
        if cache is not None:
            metrics.counter("plan_cache.hit")
            metrics.counter("plan_cache.miss").inc(1)
            metrics.gauge("plan_cache.entries").set(len(cache))
        metrics.counter("compile.candidates").inc(candidates)
        metrics.counter("compile.split_ops").inc(
            len(compiled.split_report.split_ops)
        )
        metrics.gauge("compile.split_rounds").set(compiled.split_report.rounds)
        metrics.gauge("compile.wall_seconds").set(tracer.total_time())
        for key, value in compiled.plan.summary(compiled.graph).items():
            metrics.gauge(f"plan.{key}").set(value)
        metrics.gauge("plan.peak_device_floats").set(
            compiled.peak_device_floats
        )
        for reason, count in provenance_summary(compiled.plan).items():
            metrics.counter(f"plan.reason.{reason}").inc(count)
        return metrics.snapshot()

    def _compile_once(
        self,
        template: OperatorGraph,
        capacity: int,
        headroom: float,
        tracer: Tracer | None = None,
        dedupe: dict[str, CompiledTemplate] | None = None,
        opts: CompileOptions | None = None,
    ) -> CompiledTemplate:
        tracer = tracer or Tracer()
        opts = opts if opts is not None else self.options
        graph = template.copy()
        with tracer.span("splitting", headroom=headroom) as sp:
            if opts.split:
                split_cap = capacity
                if headroom > 1.0 and graph.total_data_size() > capacity:
                    split_cap = max(1, int(capacity / headroom))
                report = make_feasible(graph, split_cap)
            else:
                report = SplitReport()
            sp.set(
                split_ops=len(report.split_ops),
                rounds=report.rounds,
                ops_after=len(graph.ops),
            )
        fp: str | None = None
        if dedupe is not None:
            # Auto-headroom candidates that split to the same graph would
            # schedule identical work; fingerprint the split graph and hand
            # back the earlier candidate's result instead.
            fp = hashlib.sha256(
                json.dumps(
                    graph_to_dict(graph), sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            ).hexdigest()
            prior = dedupe.get(fp)
            if prior is not None:
                tracer.event(
                    "candidate_dedupe", headroom=headroom, graph=fp[:16]
                )
                return prior
        fused = 0
        with tracer.span("offload_units", headroom=headroom) as sp:
            if opts.fuse_offload_units:
                fused = identify_offload_units(graph, capacity)
            sp.set(fused_units=fused)
        col = None
        if planner_engine() == "columnar":
            with tracer.span("lowering", headroom=headroom) as sp:
                col = lower_columnar(graph)
                sp.set(ops=col.n_ops, data=col.n_data)
        with tracer.span(
            "operator_scheduling",
            headroom=headroom,
            scheduler=opts.scheduler,
            engine=(
                "columnar"
                if col is not None and opts.scheduler in COLUMNAR_SCHEDULERS
                else "object"
            ),
        ) as sp:
            if col is not None and opts.scheduler in COLUMNAR_SCHEDULERS:
                op_order = COLUMNAR_SCHEDULERS[opts.scheduler](graph, col)
            else:
                # Schedulers without a columnar twin (greedy/bfs/topo)
                # stay on the per-object path; transfers still go
                # columnar below — they only consume the final order.
                scheduler = get_scheduler(opts.scheduler)
                op_order = scheduler(graph)
            sp.set(ops=len(op_order))
        with tracer.span(
            "transfer_scheduling",
            headroom=headroom,
            policy=opts.eviction_policy,
            engine="columnar" if col is not None else "object",
        ) as sp:
            if col is not None:
                plan = schedule_transfers_columnar(
                    graph,
                    op_order,
                    capacity,
                    policy=opts.eviction_policy,
                    eager_free=opts.eager_free,
                    col=col,
                )
            else:
                plan = schedule_transfers(
                    graph,
                    op_order,
                    capacity,
                    policy=opts.eviction_policy,
                    eager_free=opts.eager_free,
                )
            sp.set(
                steps=len(plan.steps),
                transfer_floats=plan.transfer_floats(graph),
                evictions=sum(
                    n for r, n in provenance_summary(plan).items()
                    if r == "evicted"
                ),
            )
        with tracer.span("validate", headroom=headroom) as sp:
            peak = validate_plan(plan, graph, capacity)
            sp.set(peak_device_floats=peak)
        compiled = CompiledTemplate(
            graph=graph,
            plan=plan,
            op_order=op_order,
            split_report=report,
            device=self.device,
            host=self.host,
            options=opts,
            peak_device_floats=peak,
            fused_units=fused,
        )
        if dedupe is not None and fp is not None:
            dedupe[fp] = compiled
        return compiled

    def compile_incremental(
        self,
        template: OperatorGraph,
        *,
        options: CompileOptions | None = None,
    ):
        """Fragment-cached compilation for edit-heavy workflows.

        Partitions the template into independent fragments, recompiles
        only those whose content fingerprint misses the plan cache, and
        stitches the fragment plans into one validated plan.  Returns an
        :class:`repro.core.incremental.IncrementalCompiled`; see that
        module for the trade-off against :meth:`compile`.
        """
        from .incremental import compile_incremental

        return compile_incremental(self, template, options=options)

    def compile_baseline(self, template: OperatorGraph) -> CompiledTemplate:
        """The paper's baseline plan for the same template (unsplit)."""
        graph = template.copy()
        capacity = self.device.usable_memory_floats
        tracer = Tracer()
        with tracer.span(
            "compile_baseline", template=template.name, device=self.device.name
        ):
            plan = baseline_plan(graph, capacity)
            op_order = plan.launches()
            peak = validate_plan(plan, graph, capacity)
        compiled = CompiledTemplate(
            graph=graph,
            plan=plan,
            op_order=op_order,
            split_report=SplitReport(),
            device=self.device,
            host=self.host,
            options=CompileOptions(split=False),
            peak_device_floats=peak,
        )
        compiled.spans = sorted(tracer.spans, key=lambda s: s.start)
        compiled.metrics = self._compile_metrics(compiled, 1, tracer)
        return compiled

    # -- execution --------------------------------------------------------------
    def execute(
        self,
        compiled: CompiledTemplate,
        template_inputs: Mapping[str, np.ndarray],
    ) -> ExecutionResult:
        """Numerically run a compiled template on the simulated device."""
        runtime = SimRuntime(self.device, self.host)
        return execute_plan(compiled.plan, compiled.graph, runtime, template_inputs)

    def simulate(self, compiled: CompiledTemplate) -> SimulatedRun:
        """Analytically time a compiled template (paper-scale workloads)."""
        return simulate_plan(
            compiled.plan, compiled.graph, self.device, self.host
        )


def run_template(
    template: OperatorGraph,
    template_inputs: Mapping[str, np.ndarray],
    device: GpuDevice,
    *legacy,
    host: HostSystem | None = _UNSET,
    options: CompileOptions | None = _UNSET,
) -> ExecutionResult:
    """One-call convenience API: compile + execute a template.

    This is the "parametrized API" face of the framework that the paper
    argues domain experts should program against.
    """
    merged = legacy_positional(
        "run_template",
        ("host", "options"),
        legacy,
        _explicit(host=host, options=options),
    )
    fw = Framework(
        device, host=merged.get("host"), options=merged.get("options")
    )
    compiled = fw.compile(template)
    return fw.execute(compiled, template_inputs)
