"""Concurrent execution service.

The serving layer over the compilation pipeline: accepts compile /
execute / simulate requests concurrently, runs them on a bounded worker
pool, deduplicates identical in-flight work through the content-addressed
plan-cache key (single-flight), enforces per-request deadlines and
admission control, and survives injected substrate faults with
retry-plus-backoff and graceful degradation to the heuristic planner.

Entry points:

* :class:`ExecutionService` — the pool; ``submit()`` returns a
  :class:`Ticket` whose ``result()`` blocks for a
  :class:`ServiceResponse`.
* :class:`ServiceConfig` / :class:`RetryPolicy` — tuning knobs.
* ``repro serve`` / ``repro submit`` — the CLI faces.

See docs/SERVICE.md for architecture and failure semantics.
"""

from .config import RetryPolicy, ServiceConfig
from .request import (
    QueueFullError,
    RequestStatus,
    ServiceClosedError,
    ServiceError,
    ServiceRequest,
    ServiceResponse,
    Ticket,
)
from .service import ExecutionService
from .shard import ShardDiedError, ShardedExecutionService

__all__ = [
    "ExecutionService",
    "QueueFullError",
    "ShardDiedError",
    "ShardedExecutionService",
    "RequestStatus",
    "RetryPolicy",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRequest",
    "ServiceResponse",
    "Ticket",
]
