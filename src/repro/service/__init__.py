"""Concurrent execution service.

The serving layer over the compilation pipeline: accepts compile /
execute / simulate requests concurrently, runs them on a bounded worker
pool, deduplicates identical in-flight work through the content-addressed
plan-cache key (single-flight), enforces per-request deadlines and
admission control, and survives injected substrate faults with
retry-plus-backoff and graceful degradation to the heuristic planner.

Entry points — all of them one :class:`Submitter` contract:

* :class:`ExecutionService` — the in-process pool; ``submit()`` returns
  a :class:`Ticket` whose ``result()`` blocks for a
  :class:`ServiceResponse`.
* :class:`ShardedExecutionService` — the multi-process fleet, same
  surface.
* :class:`AsyncExecutionService` — the asyncio front end
  (``async with`` / ``await service.submit(...)`` / awaitable
  :class:`AsyncTicket`).
* :class:`ServiceConfig` / :class:`RetryPolicy` — tuning knobs.
* ``repro serve`` / ``repro submit`` — the CLI faces.

See docs/SERVICE.md for architecture and failure semantics.
"""

from .aio import AsyncExecutionService, AsyncTicket
from .config import RetryPolicy, ServiceConfig
from .request import (
    QueueFullError,
    RequestStatus,
    ServiceClosedError,
    ServiceError,
    ServiceRequest,
    ServiceResponse,
    Ticket,
)
from .service import ExecutionService
from .shard import ShardDiedError, ShardedExecutionService
from .submitter import Submitter

__all__ = [
    "AsyncExecutionService",
    "AsyncTicket",
    "ExecutionService",
    "QueueFullError",
    "ShardDiedError",
    "ShardedExecutionService",
    "RequestStatus",
    "RetryPolicy",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRequest",
    "ServiceResponse",
    "Submitter",
    "Ticket",
]
