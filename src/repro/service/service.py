"""The bounded, deduplicating, fault-tolerant execution service.

Architecture (one process, N worker threads)::

    submit() ──admission──> bounded FIFO queue ──> workers
                 │                                   │
                 └─ QueueFullError                   ├─ deadline gate (expire / degrade)
                                                     ├─ compile stage: single-flight
                                                     │    + shared content-addressed
                                                     │    plan cache (PR-4 keys)
                                                     ├─ execute/simulate stage with
                                                     │    retry + exponential backoff
                                                     │    on TransientFault
                                                     └─ ServiceResponse -> Ticket

Single-flight: the *first* worker to dequeue a given plan-cache key
becomes the leader and compiles; workers dequeuing the same key while
the leader is in flight join the flight and share its result (leaders
are always dequeued before their followers, so a joining worker never
waits on work that has not started — the pool cannot deadlock on
itself).  Completed keys are served by the plan cache.  Either way the
request is counted as a dedupe hit and never recompiles.

Every path out of a request is explicit: ``ok``, ``failed`` (with the
last error), ``expired`` (deadline), or ``cancelled`` — and all of them
are visible in the metrics snapshot and trace spans.

The service is also the root of the **live telemetry plane**
(:mod:`repro.obs.live`): each worker binds ``(event_log, request_id)``
around a request's processing, so the service, the compiler, the plan
cache and the simulator all publish request-correlated events into one
bounded ring.  ``request_timeline(id)`` returns one request's full
admission→completion trace, ``live_snapshot()`` / ``prom_text()`` are
the JSON and Prometheus views of the rolling windows and SLO budgets,
and ``serve_status()`` exposes all of it over HTTP for ``repro top``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable

from repro.core.framework import (
    CompiledTemplate,
    CompileOptions,
    Framework,
)
from repro.core.pbopt import pb_plan_or_heuristic
from repro.core.plancache import PlanCache, SharedPlanCache, plan_key
from repro.core.splitting import SplitReport
from repro.gpusim import SimRuntime
from repro.gpusim.faults import FaultInjector, TransientFault
from repro.obs import MetricsRegistry, Tracer
from repro.obs.flight import FlightRecorder, journal_dir
from repro.obs.live import (
    AlertEngine,
    EventLog,
    PromText,
    SlidingWindow,
    SloTracker,
    StatusServer,
    TelemetryEvent,
    default_objectives,
    timeline_to_chrome,
)
from repro.obs.live.events import bind, publish
from repro.runtime.executor import execute_plan, simulate_plan

from .config import ServiceConfig
from .request import (
    QueueFullError,
    RequestStatus,
    ServiceClosedError,
    ServiceRequest,
    ServiceResponse,
    Ticket,
)


class _LockedPlanCache(PlanCache):
    """A :class:`PlanCache` safe to share across worker threads."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._plock = threading.RLock()

    def get(self, key):  # type: ignore[override]
        with self._plock:
            return super().get(key)

    def put(self, key, entry):  # type: ignore[override]
        with self._plock:
            super().put(key, entry)

    def __len__(self) -> int:
        with self._plock:
            return super().__len__()


class _Flight:
    """One in-flight compile; followers wait on the leader's event."""

    __slots__ = (
        "event", "value", "error", "planner_used", "followers", "leader_id",
    )

    def __init__(self, leader_id: int) -> None:
        self.event = threading.Event()
        self.value: CompiledTemplate | None = None
        self.error: BaseException | None = None
        self.planner_used = ""
        self.followers = 0
        #: request id of the leader — followers' timelines reference it
        self.leader_id = leader_id


class _Batch:
    """One coalesced batch: requests sharing a compiled plan execution.

    The worker that dequeued the leader pulls every *compatible* queued
    request (same batch key: template, device, options, planner, mode,
    host) within the coalescing window and processes them as one unit:
    the leader compiles (or hits the cache) once, followers reuse the
    compiled plan directly — and, for ``compile``/``simulate`` requests,
    the result value itself — with ``batched_with``/``deduped_from``
    provenance on every response.
    """

    __slots__ = ("ids", "leader_id", "compiled", "planner_used",
                 "shared_value", "error")

    def __init__(self, ids: tuple[int, ...], leader_id: int) -> None:
        self.ids = ids
        self.leader_id = leader_id
        self.compiled: CompiledTemplate | None = None
        self.planner_used = ""
        #: the leader's result value, reusable verbatim by followers
        #: (compile and simulate modes only — execute inputs differ)
        self.shared_value: Any = None
        self.error: BaseException | None = None


class ExecutionService:
    """Accepts template requests concurrently; see module docstring.

    Usage::

        with ExecutionService(ServiceConfig(workers=8)) as svc:
            tickets = [svc.submit(req) for req in requests]
            responses = [t.result(timeout=60) for t in tickets]

    ``clock`` and ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        plan_cache: PlanCache | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=time.perf_counter)
        self.events = EventLog(capacity=self.config.telemetry_events)
        self._latency_window = SlidingWindow(self.config.window_seconds)
        self._slo = SloTracker(
            self.config.slo_objectives or default_objectives(),
            window_seconds=self.config.window_seconds,
        )
        self._alerts = AlertEngine(self.config.alert_rules)
        self._alert_lock = threading.Lock()
        self.flight: FlightRecorder | None = None
        if self.config.flight_dir and self.events.enabled:
            # Crash-safe tee: every published event is journaled to disk
            # before emit() returns, so a SIGKILLed shard leaves a
            # readable black box behind (repro postmortem).
            self.flight = FlightRecorder(
                journal_dir(self.config.flight_dir, self.config.shard_label),
                segment_bytes=self.config.flight_segment_bytes,
                max_bytes=self.config.flight_max_bytes,
            )
            self.flight.attach(self.events)
        self._status_server: StatusServer | None = None
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queue: deque[Ticket] = deque()
        self._flights: dict[str, _Flight] = {}
        self._pb_memo: OrderedDict[str, tuple[CompiledTemplate, str]] = (
            OrderedDict()
        )
        self._closed = False
        self._next_id = 0
        self._in_flight = 0
        if plan_cache is not None:
            self.plan_cache = plan_cache
        elif self.config.shared_cache_dir:
            # Cross-process tier: shared with sibling shard processes
            # (stampede-protected, internally thread-safe).
            self.plan_cache = SharedPlanCache(
                self.config.shared_cache_dir,
                max_entries=self.config.plan_cache_entries,
            )
        else:
            self.plan_cache = _LockedPlanCache(
                max_entries=self.config.plan_cache_entries
            )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for t in self._workers:
            t.start()

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self, *, cancel_pending: bool = False) -> None:
        """Stop accepting work; drain (or cancel) the queue; join workers."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            if cancel_pending:
                while self._queue:
                    ticket = self._queue.popleft()
                    self._finish_unstarted(ticket, RequestStatus.CANCELLED)
                self.metrics.gauge("service.queue_depth").set(0)
            self._cv.notify_all()
        for t in self._workers:
            t.join()
        if self._status_server is not None:
            self._status_server.close()
            self._status_server = None
        # The clean-shutdown marker: a journal ending without one of
        # these is a crash, and post-mortems say so.
        self.events.emit("service.close", shard=self.config.shard_label)
        if self.flight is not None:
            self.flight.close()

    # -- submission ------------------------------------------------------
    def submit(
        self, request: ServiceRequest | Any = None, /, **fields: Any
    ) -> Ticket:
        """Admit one request; returns its :class:`Ticket`.

        Canonically takes one :class:`ServiceRequest` (the
        :class:`~repro.service.Submitter` contract); the pre-protocol
        expanded shape ``submit(template, device=..., ...)`` still works
        behind a :class:`DeprecationWarning`.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity (explicit rejection — callers decide whether to back
        off or shed load) and :class:`ServiceClosedError` after
        ``close()``.
        """
        from .submitter import coerce_request

        request = coerce_request("ExecutionService.submit", request, fields)
        now = self._clock()
        deadline = request.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        with self._cv:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if len(self._queue) >= self.config.max_queue_depth:
                self.metrics.counter("service.rejected").inc()
                self.events.emit(
                    "service.reject",
                    reason="queue_full",
                    queue_depth=len(self._queue),
                    label=request.label,
                )
                raise QueueFullError(
                    f"queue depth {len(self._queue)} at configured limit "
                    f"{self.config.max_queue_depth}; retry with backoff"
                )
            self._next_id += 1
            ticket = Ticket(
                id=self._next_id,
                request=request,
                submitted_at=now,
                deadline_at=None if deadline is None else now + deadline,
            )
            ticket._cancel_hook = self._cancel
            self._queue.append(ticket)
            self.metrics.counter("service.submitted").inc()
            self.metrics.gauge("service.queue_depth").set(len(self._queue))
            self.events.emit(
                "service.admit",
                request_id=ticket.id,
                label=request.label,
                mode=request.mode,
                planner=request.planner,
                queue_depth=len(self._queue),
            )
            # notify_all: with batching enabled, a gathering worker also
            # waits on this condition — a single notify could wake it
            # instead of an idle worker and delay an incompatible request
            # by a full batch window.
            self._cv.notify_all()
        return ticket

    def submit_all(self, requests: list[ServiceRequest]) -> list[Ticket]:
        """Submit a batch; admission is all-or-error per request."""
        return [self.submit(r) for r in requests]

    def _cancel(self, ticket: Ticket) -> bool:
        with self._cv:
            try:
                self._queue.remove(ticket)
            except ValueError:
                return False  # already dequeued (running or done)
            self.metrics.gauge("service.queue_depth").set(len(self._queue))
            self._finish_unstarted(ticket, RequestStatus.CANCELLED)
            return True

    def _finish_unstarted(self, ticket: Ticket, status: RequestStatus) -> None:
        self.metrics.counter(f"service.{status.value}").inc()
        self.events.emit(
            "service.done",
            request_id=ticket.id,
            status=status.value,
            started=False,
        )
        ticket._resolve(
            ServiceResponse(
                request_id=ticket.id,
                label=ticket.request.label,
                status=status,
                error=f"request {status.value} before starting",
                wait_seconds=self._clock() - ticket.submitted_at,
            )
        )

    # -- introspection ---------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """JSON-ready snapshot of every service and substrate metric."""
        with self._lock:
            return self.metrics.snapshot()

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- live telemetry --------------------------------------------------
    def request_timeline(self, request_id: int) -> list[TelemetryEvent]:
        """One request's end-to-end event trace, in emission order.

        Covers every stage that executed for the request — admission,
        dequeue, plan-cache lookups, compile, retries, simulated
        execution, completion — because each worker binds the event log
        to the request id it is processing.  Empty if the id is unknown
        or its events have aged out of the ring.
        """
        return self.events.events(request_id=request_id)

    def request_chrome_trace(self, request_id: int) -> list[dict[str, Any]]:
        """The timeline as one Chrome-trace / Perfetto track."""
        return timeline_to_chrome(self.request_timeline(request_id))

    def live_snapshot(self) -> dict[str, Any]:
        """JSON-ready operational snapshot: the ``GET /slo`` payload.

        Rolling-window latency percentiles and throughput, SLO
        error-budget accounting, queue/cache occupancy, event-ring
        health, and the per-shard breakdown (one in-process shard today;
        the list shape is the contract multi-process shards will extend).
        """
        with self._lock:
            queue_depth = len(self._queue)
            in_flight = self._in_flight
            closed = self._closed
            counters = {
                name: c.value
                for name, c in sorted(self.metrics.counters.items())
                if name.startswith("service.")
            }
        cache_stats = self.plan_cache.stats()
        with self._alert_lock:
            if self._alerts:
                # re-evaluate at snapshot time so an idle service still
                # resolves alerts once traffic ages out of the window
                self._alerts.evaluate(
                    self._latency_window.snapshot(),
                    self._slo.snapshot(),
                    event_log=self.events,
                )
            alert_snap = self._alerts.snapshot()
        shard = {
            "shard": self.config.shard_label,
            "alive": True,
            "workers": len(self._workers),
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "plan_cache": cache_stats,
            "window": self._latency_window.snapshot(),
        }
        snap = {
            "closed": closed,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "workers": len(self._workers),
            "counters": counters,
            "window": self._latency_window.snapshot(),
            "slo": self._slo.snapshot(),
            "alerts": alert_snap,
            "plan_cache": cache_stats,
            "events": {
                "capacity": self.events.capacity,
                "emitted": self.events.total_emitted,
                "dropped": self.events.dropped,
            },
            "shards": [shard],
        }
        if self.flight is not None:
            snap["flight"] = {
                "dir": self.flight.directory,
                **self.flight.stats(),
            }
        return snap

    def prom_text(self) -> str:
        """Prometheus text exposition (the ``GET /metrics`` payload)."""
        out = PromText()
        with self._lock:
            snap = self.metrics.snapshot()
        out.registry(snap)
        out.summary(
            "service.latency_seconds",
            self._latency_window.snapshot(),
            help_text=(
                "End-to-end request latency over the rolling window"
            ),
        )
        stats = self.plan_cache.stats()
        out.counter(
            "plancache.hits", stats["hits"],
            help_text="Plan-cache memory-tier hits",
        )
        out.counter("plancache.disk_hits", stats["disk_hits"])
        out.counter("plancache.misses", stats["misses"])
        out.gauge("plancache.entries", stats["entries"])
        out.event_log({
            "capacity": self.events.capacity,
            "emitted": self.events.total_emitted,
            "dropped": self.events.dropped,
        })
        with self._alert_lock:
            alert_snap = self._alerts.snapshot()
        out.gauge(
            "alerts.active", len(alert_snap["active"]),
            help_text="Alert rules currently firing",
        )
        out.counter(
            "alerts.fired", alert_snap["fired_total"],
            help_text="Alert firing transitions since start",
        )
        for obj in self._slo.snapshot()["objectives"]:
            base = f"slo.{obj['name']}"
            out.gauge(f"{base}.compliance", obj["compliance"])
            out.gauge(
                f"{base}.budget_remaining",
                obj["budget_remaining_fraction"],
            )
            out.gauge(f"{base}.breached", 1.0 if obj["breached"] else 0.0)
        return out.render()

    def _health(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ok": not self._closed,
                "closed": self._closed,
                "queue_depth": len(self._queue),
                "in_flight": self._in_flight,
                "workers": len(self._workers),
            }

    def serve_status(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> StatusServer:
        """Start the HTTP status endpoint (``/metrics``, ``/slo``,
        ``/requests``, ``/healthz``) on a daemon thread.

        ``port=0`` binds an ephemeral port; read it back from the
        returned server's ``.port``.  The server is owned by the
        service and shut down by ``close()``.
        """
        if self._status_server is not None:
            raise RuntimeError("status server already running")
        self._status_server = StatusServer(
            metrics=self.prom_text,
            slo=self.live_snapshot,
            requests=lambda request_id, limit: self.events.to_ndjson(
                request_id=request_id, limit=limit
            ),
            health=self._health,
            host=host,
            port=port,
        )
        return self._status_server

    # -- worker loop -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained
                ticket = self._queue.popleft()
                self.metrics.gauge("service.queue_depth").set(len(self._queue))
                self._in_flight += 1
                self.metrics.gauge("service.in_flight").set(self._in_flight)
            tickets = [ticket]
            if self.config.batch_window > 0:
                tickets += self._gather_batch(ticket)
            batch: _Batch | None = None
            if len(tickets) > 1:
                batch = _Batch(
                    ids=tuple(t.id for t in tickets), leader_id=ticket.id
                )
                self.metrics.counter("service.batches").inc()
                self.metrics.histogram("service.batch_size").observe(
                    len(tickets)
                )
            for t in tickets:
                # The ambient bind is what correlates everything below —
                # Framework.compile, PlanCache, SimRuntime — to this
                # request.
                try:
                    with bind(self.events, t.id):
                        self._process(t, batch=batch)
                except BaseException as exc:  # worker must never die silently
                    self._record_done(
                        t,
                        ServiceResponse(
                            request_id=t.id,
                            label=t.request.label,
                            status=RequestStatus.FAILED,
                            error=f"internal: {type(exc).__name__}: {exc}",
                        ),
                        tracer=None,
                    )
            with self._lock:
                self._in_flight -= 1
                self.metrics.gauge("service.in_flight").set(self._in_flight)

    def _ticket_batch_key(self, ticket: Ticket) -> str:
        """The coalescing key: requests sharing it can share one batched
        plan execution.  Memoized per ticket (the key hashes the graph)."""
        cached = getattr(ticket, "_batch_key", None)
        if cached is not None:
            return cached
        req = ticket.request
        key = plan_key(
            req.template,
            req.device,
            req.options or CompileOptions(),
            kind="service-batch",
            extra={
                "planner": self._effective_planner(req),
                "mode": req.mode,
                "host": req.host,
            },
        )
        ticket._batch_key = key  # type: ignore[attr-defined]
        return key

    def _gather_batch(self, leader: Ticket) -> list[Ticket]:
        """Coalesce queued requests compatible with ``leader``.

        Waits up to ``config.batch_window`` seconds for more compatible
        arrivals (bounded by ``config.batch_max``), removing gathered
        tickets from the queue — they are now owned by this worker and
        processed on the leader's compiled plan.
        """
        key = self._ticket_batch_key(leader)
        window_end = self._clock() + self.config.batch_window
        gathered: list[Ticket] = []
        limit = self.config.batch_max - 1
        with self._cv:
            while True:
                for t in list(self._queue):
                    if len(gathered) >= limit:
                        break
                    if self._ticket_batch_key(t) == key:
                        self._queue.remove(t)
                        gathered.append(t)
                self.metrics.gauge("service.queue_depth").set(
                    len(self._queue)
                )
                if len(gathered) >= limit or self._closed:
                    break
                remaining = window_end - self._clock()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
        return gathered

    def _process(self, ticket: Ticket, batch: _Batch | None = None) -> None:
        req = ticket.request
        start = self._clock()
        wait = start - ticket.submitted_at
        ticket._status = RequestStatus.RUNNING
        tracer = Tracer(clock=time.perf_counter)
        response = ServiceResponse(
            request_id=ticket.id,
            label=req.label,
            status=RequestStatus.FAILED,
            wait_seconds=wait,
        )
        planner = self._effective_planner(req)
        degraded = False
        publish(
            "service.start",
            label=req.label,
            mode=req.mode,
            planner=planner,
            wait_seconds=wait,
        )
        if batch is not None:
            response.batched_with = tuple(
                i for i in batch.ids if i != ticket.id
            )
            if ticket.id == batch.leader_id:
                publish(
                    "service.batch",
                    size=len(batch.ids),
                    batched_with=list(response.batched_with),
                )
            else:
                publish(
                    "service.batch_join",
                    leader_request_id=batch.leader_id,
                )
        with tracer.span(
            "service.request",
            id=ticket.id,
            label=req.label,
            mode=req.mode,
            planner=planner,
            template=req.template.name,
            device=req.device.name,
        ) as root:
            # Deadline gate: an already-expired request is degraded to
            # the heuristic planner (if allowed) or rejected — loudly.
            if ticket.deadline_at is not None and start > ticket.deadline_at:
                if self.config.degrade_on_deadline and planner != "heuristic":
                    degraded = True
                    tracer.event("service.degrade", reason="deadline_expired")
                    publish("service.degrade", reason="deadline_expired")
                else:
                    response.status = RequestStatus.EXPIRED
                    response.error = (
                        f"deadline expired {start - ticket.deadline_at:.3f}s "
                        f"before the request was dequeued"
                    )
                    root.set(status=response.status.value)
                    self._record_done(ticket, response, tracer=tracer)
                    return
            self._attempt_loop(
                ticket, response, planner, degraded, tracer, batch=batch
            )
            root.set(
                status=response.status.value,
                attempts=response.attempts,
                retries=response.retries,
                degraded=response.degraded,
                deduped=response.deduped,
            )
        response.service_seconds = self._clock() - start
        self._record_done(ticket, response, tracer=tracer)

    def _attempt_loop(
        self,
        ticket: Ticket,
        response: ServiceResponse,
        planner: str,
        degraded: bool,
        tracer: Tracer,
        batch: _Batch | None = None,
    ) -> None:
        req = ticket.request
        retry = self.config.retry
        injector: FaultInjector | None = None
        if self.config.fault_spec is not None and req.mode == "execute":
            # One injector shared across retries: each attempt draws a
            # fresh slice of the decision stream (transient semantics).
            injector = FaultInjector(self.config.fault_spec)
        while True:
            response.attempts += 1
            try:
                value, planner_used, deduped, deduped_from = self._perform(
                    ticket, planner, degraded, injector, tracer, batch=batch
                )
                response.status = RequestStatus.OK
                response.value = value
                response.planner_used = planner_used
                response.degraded = degraded
                response.deduped = response.deduped or deduped
                if deduped_from is not None:
                    response.deduped_from = deduped_from
                return
            except TransientFault as fault:
                self.metrics.counter("service.faults").inc()
                if response.attempts >= retry.max_attempts:
                    response.status = RequestStatus.FAILED
                    response.error = (
                        f"gave up after {response.attempts} attempts: {fault}"
                    )
                    return
                backoff = retry.backoff(response.attempts)
                if (
                    ticket.deadline_at is not None
                    and self._clock() + backoff > ticket.deadline_at
                ):
                    # Deadline pressure mid-retry: drop to the cheap
                    # heuristic plan if we still can, else expire loudly.
                    if (
                        self.config.degrade_on_deadline
                        and planner != "heuristic"
                        and not degraded
                    ):
                        degraded = True
                        tracer.event(
                            "service.degrade", reason="deadline_pressure"
                        )
                        publish("service.degrade", reason="deadline_pressure")
                    else:
                        response.status = RequestStatus.EXPIRED
                        response.error = (
                            f"deadline would expire during the "
                            f"{backoff * 1e3:.1f} ms backoff after "
                            f"attempt {response.attempts}: {fault}"
                        )
                        return
                response.retries += 1
                self.metrics.counter("service.retries").inc()
                self.metrics.histogram("service.backoff_seconds").observe(
                    backoff
                )
                tracer.event(
                    "service.retry",
                    attempt=response.attempts,
                    backoff_seconds=backoff,
                    fault=str(fault),
                )
                publish(
                    "service.retry",
                    attempt=response.attempts,
                    backoff_seconds=backoff,
                    fault=str(fault),
                )
                self._sleep(backoff)

    # -- the work itself -------------------------------------------------
    def _effective_planner(self, req: ServiceRequest) -> str:
        if req.planner == "auto":
            return (
                "pb"
                if len(req.template.ops) <= self.config.pb_max_ops
                else "heuristic"
            )
        return req.planner

    def _perform(
        self,
        ticket: Ticket,
        planner: str,
        degraded: bool,
        injector: FaultInjector | None,
        tracer: Tracer,
        batch: _Batch | None = None,
    ) -> tuple[Any, str, bool, int | None]:
        """Run one attempt; returns (value, planner_used, deduped,
        deduped_from)."""
        req = ticket.request
        is_batch_follower = (
            batch is not None and ticket.id != batch.leader_id
        )
        compiled, planner_used, deduped, deduped_from = self._compile_stage(
            req, "heuristic" if degraded else planner, degraded, tracer,
            request_id=ticket.id, batch=batch,
        )
        if degraded:
            self.metrics.counter("service.degraded").inc()
            planner_used = f"{planner_used}-degraded"
        if req.mode == "compile":
            if batch is not None and ticket.id == batch.leader_id:
                batch.shared_value = compiled
            return compiled, planner_used, deduped, deduped_from
        if req.mode == "simulate":
            # One batched plan execution: the leader simulates, followers
            # reuse the value verbatim (the batch key pins template,
            # device, options, and host, so the timing is identical).
            if is_batch_follower and batch.shared_value is not None:
                tracer.event("service.batch_shared_value")
                return (
                    batch.shared_value, planner_used, deduped, deduped_from
                )
            with tracer.span("service.simulate") as sp:
                sim = simulate_plan(
                    compiled.plan, compiled.graph, req.device, req.host
                )
            publish("service.simulate_done", seconds=sp.duration)
            if batch is not None and ticket.id == batch.leader_id:
                batch.shared_value = sim
            return sim, planner_used, deduped, deduped_from
        # mode == "execute": a fresh runtime per attempt, so a failed
        # attempt leaves no residue; the injector survives across
        # attempts (transient faults, new decisions each retry).
        runtime = SimRuntime(
            req.device,
            req.host,
            metrics=MetricsRegistry(),
            fault_injector=injector,
        )
        try:
            with tracer.span("service.execute") as sp:
                result = execute_plan(
                    compiled.plan, compiled.graph, runtime, req.inputs
                )
            publish("service.execute_done", seconds=sp.duration)
        finally:
            with self._lock:
                self.metrics.merge(runtime.metrics)
        return result, planner_used, deduped, deduped_from

    def _compile_stage(
        self,
        req: ServiceRequest,
        planner: str,
        degraded: bool,
        tracer: Tracer,
        *,
        request_id: int,
        batch: _Batch | None = None,
    ) -> tuple[CompiledTemplate, str, bool, int | None]:
        """Single-flight compile keyed on the PR-4 content-addressed key.

        Returns (compiled, planner_used, deduped, deduped_from) —
        ``deduped_from`` is the leader's request id when this request
        joined an in-flight compile, so its telemetry timeline points at
        the request whose compile actually produced the plan.

        A batch follower short-circuits everything: its leader already
        compiled (or failed) on this very worker thread, so the result
        is taken straight off the batch — no locks, no flights.
        """
        if batch is not None and request_id != batch.leader_id:
            if batch.error is not None:
                raise batch.error
            if batch.compiled is not None:
                self.metrics.counter("service.dedupe_hits").inc()
                self.metrics.counter("service.batch_joins").inc()
                tracer.event(
                    "service.batch_join", leader_request_id=batch.leader_id
                )
                publish(
                    "service.dedupe_join",
                    leader_request_id=batch.leader_id,
                    via="batch",
                )
                return (
                    batch.compiled, batch.planner_used, True, batch.leader_id
                )
            # Leader finished without a compile result (should not
            # happen) — fall through and compile independently.
        opts = req.options or CompileOptions()
        key = plan_key(
            req.template,
            req.device,
            opts,
            kind="service",
            extra={"planner": planner},
        )
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight(leader_id=request_id)
                self._flights[key] = flight
            else:
                flight.followers += 1
        assert flight is not None
        if not leader:
            # Join the in-flight compile: its leader is guaranteed to be
            # running on another worker (FIFO dequeue), so this wait is
            # bounded by one compile, never by queued work.
            self.metrics.counter("service.dedupe_hits").inc()
            self.metrics.counter("service.singleflight_joins").inc()
            tracer.event("service.singleflight_join", key=key[:16])
            publish(
                "service.dedupe_join",
                key=key[:16],
                leader_request_id=flight.leader_id,
            )
            flight.event.wait()
            if flight.error is not None:
                if batch is not None and request_id == batch.leader_id:
                    batch.error = flight.error
                raise flight.error
            assert flight.value is not None
            if batch is not None and request_id == batch.leader_id:
                batch.compiled = flight.value
                batch.planner_used = flight.planner_used
            return flight.value, flight.planner_used, True, flight.leader_id
        try:
            with tracer.span(
                "service.compile", planner=planner, key=key[:16]
            ) as sp:
                compiled, planner_used, cached = self._compile_uncontended(
                    req, planner, opts, key
                )
            if cached:
                self.metrics.counter("service.dedupe_hits").inc()
                self.metrics.counter("service.plan_cache_hits").inc()
                tracer.event("service.plan_cache_hit", key=key[:16])
            else:
                self.metrics.counter("service.compiles").inc()
            publish(
                "service.compile_done",
                planner=planner_used,
                cached=cached,
                seconds=sp.duration,
            )
            flight.value = compiled
            flight.planner_used = planner_used
            if batch is not None and request_id == batch.leader_id:
                batch.compiled = compiled
                batch.planner_used = planner_used
            return compiled, planner_used, cached, None
        except BaseException as exc:
            flight.error = exc
            if batch is not None and request_id == batch.leader_id:
                batch.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()

    def _compile_uncontended(
        self,
        req: ServiceRequest,
        planner: str,
        opts: CompileOptions,
        key: str,
    ) -> tuple[CompiledTemplate, str, bool]:
        """The leader's actual compile.  Returns (compiled, used, cached)."""
        if planner == "pb":
            with self._lock:
                memo = self._pb_memo.get(key)
                if memo is not None:
                    self._pb_memo.move_to_end(key)
                    return memo[0], memo[1], True
            graph = req.template.copy()
            capacity = req.device.usable_memory_floats
            result = pb_plan_or_heuristic(
                graph,
                capacity,
                conflict_budget=self.config.pb_conflict_budget,
            )
            compiled = CompiledTemplate(
                graph=graph,
                plan=result.plan,
                op_order=list(result.op_order),
                split_report=SplitReport(),
                device=req.device,
                host=req.host,
                options=opts,
            )
            with self._lock:
                self._pb_memo[key] = (compiled, result.source)
                while len(self._pb_memo) > self.config.plan_cache_entries:
                    self._pb_memo.popitem(last=False)
            return compiled, result.source, False
        fw = Framework(
            req.device,
            host=req.host,
            options=opts,
            plan_cache=self.plan_cache,
        )
        compiled = fw.compile(req.template)
        hit = bool(
            compiled.metrics.get("counters", {}).get("plan_cache.hit", 0)
        )
        return compiled, "heuristic", hit

    # -- bookkeeping -----------------------------------------------------
    def _record_done(
        self,
        ticket: Ticket,
        response: ServiceResponse,
        tracer: Tracer | None,
    ) -> None:
        with self._lock:
            self.metrics.counter(f"service.{response.status.value}").inc()
            if response.status is RequestStatus.OK:
                self.metrics.counter("service.completed").inc()
            self.metrics.histogram("service.wait_seconds").observe(
                response.wait_seconds
            )
            self.metrics.histogram("service.service_seconds").observe(
                response.service_seconds
            )
            if tracer is not None:
                self.tracer.merge(tracer)
        latency = response.wait_seconds + response.service_seconds
        self._latency_window.observe(latency)
        self._slo.record(ok=response.ok, latency=latency)
        if self._alerts:  # rule-free configs skip the snapshots entirely
            with self._alert_lock:
                self._alerts.evaluate(
                    self._latency_window.snapshot(),
                    self._slo.snapshot(),
                    event_log=self.events,
                )
        self.events.emit(
            "service.done",
            request_id=ticket.id,
            status=response.status.value,
            planner=response.planner_used,
            attempts=response.attempts,
            retries=response.retries,
            deduped=response.deduped,
            batched=bool(response.batched_with),
            seconds=response.service_seconds,
        )
        ticket._resolve(response)


__all__ = ["ExecutionService"]
