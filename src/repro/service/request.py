"""Requests, responses, and tickets.

A :class:`ServiceRequest` is a pure description of work — template,
target device, mode, planner, deadline.  Submitting one yields a
:class:`Ticket` (the caller's handle: wait, poll, cancel); completion
produces a :class:`ServiceResponse` that always states *what happened*
— status, attempts, retries, whether the result was deduplicated or
degraded — so no request outcome is ever silent.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.framework import CompileOptions
from repro.core.graph import OperatorGraph
from repro.gpusim import GpuDevice, HostSystem

MODES = ("compile", "execute", "simulate")
PLANNERS = ("heuristic", "pb", "auto")


class ServiceError(RuntimeError):
    """Base class for service-level rejections."""


class QueueFullError(ServiceError):
    """Admission control: the bounded queue is at capacity."""


class ServiceClosedError(ServiceError):
    """The service is no longer accepting submissions."""


class RequestStatus(str, enum.Enum):
    """Terminal and in-flight states of a submitted request."""

    PENDING = "pending"
    RUNNING = "running"
    OK = "ok"
    FAILED = "failed"
    EXPIRED = "expired"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self not in (RequestStatus.PENDING, RequestStatus.RUNNING)


@dataclass(frozen=True, kw_only=True, eq=False)
class ServiceRequest:
    """One unit of work for the execution service.

    ``mode`` selects the deliverable: a compiled plan (``compile``), a
    numeric run on the simulated device (``execute``, requires
    ``inputs``), or analytic timing (``simulate``).  ``planner`` picks
    the scheduling pipeline: the production heuristic (DFS + Belady),
    the bounded PB-optimal solver (``pb``), or ``auto`` (PB for small
    templates, heuristic otherwise).  ``deadline`` is a *budget in
    seconds from submission*; an expired request is degraded to the
    heuristic planner or explicitly rejected — never silently dropped.
    """

    template: OperatorGraph
    device: GpuDevice
    host: HostSystem | None = None
    options: CompileOptions | None = None
    mode: str = "compile"
    inputs: Mapping[str, Any] | None = None
    planner: str = "heuristic"
    deadline: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.planner not in PLANNERS:
            raise ValueError(
                f"planner must be one of {PLANNERS}, got {self.planner!r}"
            )
        if self.mode == "execute" and self.inputs is None:
            raise ValueError("mode='execute' requires inputs")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")


@dataclass(kw_only=True)
class ServiceResponse:
    """The explicit outcome of one request."""

    request_id: int
    label: str
    status: RequestStatus
    #: CompiledTemplate / ExecutionResult / SimulatedRun, or None on
    #: failure/expiry/cancellation
    value: Any = None
    error: str | None = None
    #: pipeline that actually produced the plan ("heuristic", "pb",
    #: "pb-incumbent", "heuristic-degraded", "cache", ...)
    planner_used: str = ""
    attempts: int = 0
    retries: int = 0
    degraded: bool = False
    #: the compile stage was served by single-flight join or plan cache
    deduped: bool = False
    #: the request id whose in-flight compile this request joined
    #: (single-flight followers only; None for leaders and cache hits)
    deduped_from: int | None = None
    #: the *other* request ids coalesced into the same batched plan
    #: execution (empty when the request ran unbatched)
    batched_with: tuple[int, ...] = ()
    wait_seconds: float = 0.0
    service_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    @property
    def batched(self) -> bool:
        return bool(self.batched_with)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the value itself is not serialized)."""
        return {
            "request_id": self.request_id,
            "label": self.label,
            "status": self.status.value,
            "error": self.error,
            "planner_used": self.planner_used,
            "attempts": self.attempts,
            "retries": self.retries,
            "degraded": self.degraded,
            "deduped": self.deduped,
            "deduped_from": self.deduped_from,
            "batched_with": list(self.batched_with),
            "wait_seconds": self.wait_seconds,
            "service_seconds": self.service_seconds,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ServiceResponse":
        """Rebuild a response from :meth:`to_dict` output (the shard IPC
        channel ships responses as dicts; the value travels separately)."""
        return cls(
            request_id=int(raw["request_id"]),
            label=str(raw.get("label", "")),
            status=RequestStatus(raw["status"]),
            error=raw.get("error"),
            planner_used=str(raw.get("planner_used", "")),
            attempts=int(raw.get("attempts", 0)),
            retries=int(raw.get("retries", 0)),
            degraded=bool(raw.get("degraded", False)),
            deduped=bool(raw.get("deduped", False)),
            deduped_from=raw.get("deduped_from"),
            batched_with=tuple(raw.get("batched_with", ())),
            wait_seconds=float(raw.get("wait_seconds", 0.0)),
            service_seconds=float(raw.get("service_seconds", 0.0)),
        )


@dataclass(eq=False)
class Ticket:
    """Caller-side handle for one submitted request."""

    id: int
    request: ServiceRequest
    submitted_at: float
    deadline_at: float | None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    _response: ServiceResponse | None = field(default=None, repr=False)
    _status: RequestStatus = RequestStatus.PENDING
    _cancel_hook: Any = field(default=None, repr=False)
    _done_callbacks: list = field(default_factory=list, repr=False)

    @property
    def status(self) -> RequestStatus:
        return self._status

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """Block until the request reaches a terminal state.

        Raises :class:`TimeoutError` if ``timeout`` elapses first — the
        request itself keeps running; call ``result()`` again to keep
        waiting.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.id} not done after {timeout} s "
                f"(status {self._status.value})"
            )
        assert self._response is not None
        return self._response

    def cancel(self) -> bool:
        """Cancel if still queued.  Returns True on success; a request
        already running (or finished) is not interrupted and False is
        returned."""
        if self._cancel_hook is None:
            return False
        return bool(self._cancel_hook(self))

    def add_done_callback(self, fn) -> None:
        """Call ``fn(ticket)`` once the request reaches a terminal state.

        Fires immediately if the ticket is already resolved.  Callbacks
        run on the resolving worker thread, so they must be brief and
        non-blocking (the shard worker uses this to pump completed
        responses back over the IPC channel).
        """
        fire = False
        if self._event.is_set():
            fire = True
        else:
            self._done_callbacks.append(fn)
            # _resolve may have run between the check and the append
            fire = self._event.is_set() and fn in self._done_callbacks
            if fire:
                self._done_callbacks.remove(fn)
        if fire:
            fn(self)

    # -- service side ----------------------------------------------------
    def _resolve(self, response: ServiceResponse) -> None:
        self._response = response
        self._status = response.status
        self._event.set()
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:
                pass  # a broken observer must not fail the request


__all__ = [
    "MODES",
    "PLANNERS",
    "QueueFullError",
    "RequestStatus",
    "ServiceClosedError",
    "ServiceError",
    "ServiceRequest",
    "ServiceResponse",
    "Ticket",
]
