"""Consistent-hash ring for shard routing.

The sharded serving tier routes every request by its content-addressed
plan key (:func:`repro.core.plancache.plan_key`), so *identical
templates always land on the same shard* — that is what lets
single-flight dedupe, request batching, and the per-shard plan cache
keep working unchanged inside each worker process.

A modulo hash (``hash(key) % n``) would remap nearly every key when the
fleet grows from N to N+1 shards, invalidating every shard's warm cache
at once.  The classic consistent-hashing construction avoids that: each
shard owns ``replicas`` pseudo-random points on a 2^64 ring, a key is
routed to the first shard point at or after the key's own point, and
adding one shard therefore steals only ~1/(N+1) of the keyspace — the
**minimal-disruption property** the property tests pin down.

Hashing is SHA-256-based, never Python's randomized ``hash()``, so
routing is stable across processes, runs, and machines — the router in
the parent process and any future external balancer agree byte-for-byte.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

DEFAULT_REPLICAS = 1024

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def _point(data: str) -> int:
    """Deterministic position of ``data`` on the 2^64 ring."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto named shards.

    ``replicas`` virtual points per shard smooth the keyspace split;
    1024 keeps every shard's share within ~20% of uniform for fleet
    sizes up to 16 (the property tests assert exactly that).  Building
    a 16-shard ring is ~16k hashes — milliseconds against a process
    spawn — and routing stays one bisect regardless.
    """

    def __init__(
        self,
        shards: Iterable[str] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted ring positions
        self._owners: list[str] = []  # shard owning self._points[i]
        self._shards: set[str] = set()
        for shard in shards:
            self.add(shard)

    # -- membership ------------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def add(self, shard: str) -> None:
        """Insert one shard (``replicas`` ring points).  Idempotent-safe:
        re-adding an existing shard is an error, not silent duplication."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = _point(f"{shard}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            raise KeyError(shard)
        self._shards.discard(shard)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != shard
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- routing ---------------------------------------------------------
    def route(self, key: str) -> str:
        """The shard owning ``key``: first ring point at/after the key's.

        Deterministic across processes (SHA-256).  Raises on an empty
        ring — routing with no shards is a configuration error, not a
        default.
        """
        if not self._points:
            raise LookupError("cannot route on an empty ring")
        point = _point(key)
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):  # wrap around
            index = 0
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (all shards present)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts


__all__ = ["DEFAULT_REPLICAS", "HashRing"]
