"""Shard worker process: one :class:`ExecutionService` behind a pipe.

:func:`shard_worker_main` is the entry point the shard router spawns in
each worker process.  It owns a full in-process execution service —
worker threads, plan cache (cross-process tier when the config names a
``shared_cache_dir``), telemetry plane — and speaks the
:mod:`repro.service.ipc` frame protocol over its end of a duplex pipe:

* ``submit`` frames are admitted into the inner service; the worker
  acks with ``accepted`` (carrying the shard-local request id, which
  the router maps back to the fleet-global id) or ``error`` when
  admission control rejects.  Completion is pushed back asynchronously
  via :meth:`Ticket.add_done_callback` as a ``response`` frame.
* ``snapshot`` / ``events`` / ``prom`` frames serve the router's
  aggregated telemetry: the snapshot reply additionally ships the raw
  latency-window samples, because fleet percentiles must be computed
  over the union of every shard's samples, never averaged.
* ``close`` drains (or cancels) the inner service, acks ``closed``,
  and returns — ending the process.

The entry point lives at module level (not a closure or lambda) so it
imports cleanly under the ``spawn`` multiprocessing start method as
well as the ``fork`` default on Linux.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any

from repro.service.config import ServiceConfig
from repro.service.ipc import FrameError, recv_message, send_message
from repro.service.request import ServiceError, Ticket
from repro.service.service import ExecutionService


def _response_frame(gid: int, ticket: Ticket) -> dict[str, Any]:
    """Build the terminal ``response`` frame for one finished ticket."""
    response = ticket._response
    assert response is not None
    frame: dict[str, Any] = {
        "kind": "response",
        "id": gid,
        "response": response.to_dict(),
        "value": response.value,
    }
    # The value (CompiledTemplate / ExecutionResult / SimulatedRun) must
    # survive the trip through the pipe's pickler; anything that cannot
    # travels as None with an explicit note rather than killing the
    # worker's sender.
    try:
        pickle.dumps(frame["value"], protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        frame["value"] = None
        frame["value_error"] = (
            f"result value not transferable: {type(exc).__name__}: {exc}"
        )
    return frame


def shard_worker_main(conn: Any, config: ServiceConfig) -> None:
    """Run one shard: serve framed requests from ``conn`` until ``close``.

    ``config.shard_label`` is this shard's name in every snapshot the
    router aggregates.
    """
    service = ExecutionService(config)
    # First journal entry: ties the on-disk journal to a concrete pid,
    # so a post-mortem can say *which* incarnation of the shard it is
    # reading (the journal directory survives restarts).
    service.events.emit(
        "worker.start", shard=config.shard_label, pid=os.getpid()
    )
    send_lock = threading.Lock()

    def send(message: dict[str, Any]) -> None:
        # Completion callbacks fire on the inner service's worker
        # threads, so frames interleave; the lock keeps each frame's
        # send_bytes atomic on the pipe.
        with send_lock:
            send_message(conn, message)

    def on_done(ticket: Ticket, gid: int) -> None:
        send(_response_frame(gid, ticket))

    try:
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError):
                break  # router vanished: nothing to reply to
            except FrameError as exc:
                send({"kind": "error", "id": -1, "error": str(exc)})
                continue
            kind = message["kind"]
            gid = message.get("id", -1)
            try:
                if kind == "submit":
                    try:
                        ticket = service.submit(message["request"])
                    except ServiceError as exc:
                        send({
                            "kind": "error",
                            "id": gid,
                            "error": str(exc),
                            "error_type": type(exc).__name__,
                        })
                        continue
                    send({
                        "kind": "accepted",
                        "id": gid,
                        "local_id": ticket.id,
                    })
                    ticket.add_done_callback(
                        lambda t, gid=gid: on_done(t, gid)
                    )
                elif kind == "snapshot":
                    send({
                        "kind": "snapshot_result",
                        "id": gid,
                        "snapshot": service.live_snapshot(),
                        "latency_samples": service._latency_window.samples(),
                    })
                elif kind == "events":
                    send({
                        "kind": "events_result",
                        "id": gid,
                        "events": service.events.events(
                            request_id=message.get("request_id"),
                            kind=message.get("event_kind"),
                            limit=message.get("limit"),
                        ),
                    })
                elif kind == "prom":
                    send({
                        "kind": "prom_result",
                        "id": gid,
                        "text": service.prom_text(),
                    })
                elif kind == "close":
                    service.close(
                        cancel_pending=message.get("cancel_pending", False)
                    )
                    send({"kind": "closed", "id": gid})
                    break
                else:  # pragma: no cover - KNOWN_KINDS already filters
                    send({
                        "kind": "error",
                        "id": gid,
                        "error": f"unhandled kind {kind!r}",
                    })
            except Exception as exc:  # one bad message must not kill the shard
                try:
                    send({
                        "kind": "error",
                        "id": gid,
                        "error": f"{type(exc).__name__}: {exc}",
                    })
                except Exception:
                    break
    finally:
        service.close(cancel_pending=True)
        try:
            conn.close()
        except Exception:
            pass


__all__ = ["shard_worker_main"]
