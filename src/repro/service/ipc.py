"""Request/response framing for the shard IPC channel.

The sharded serving tier talks to its worker processes over duplex
pipes.  A pipe is a byte stream with message boundaries but no
*semantics*; this module defines the wire contract both sides speak:

* every message is one **frame**: a fixed binary header (magic,
  protocol version, flags, CRC-32, payload length) followed by a
  pickled payload dict;
* the header is validated on receipt — wrong magic, unknown version, a
  CRC mismatch, or a truncated payload raise :class:`FrameError`
  instead of handing corrupt bytes to ``pickle``;
* every payload dict carries a ``kind`` (message type) and, for
  request/response pairs, an ``id`` correlating them.  Kinds are the
  router's dispatch key, so unknown kinds fail loudly on both sides.

Message kinds (parent → worker):

=============  =============================================
``submit``     one :class:`~repro.service.ServiceRequest`
``snapshot``   request the shard's ``live_snapshot()`` + window samples
``events``     request recent telemetry events (optionally one request's)
``prom``       request the shard's Prometheus text
``close``      drain and exit (worker replies ``closed`` and returns)
=============  =============================================

Worker → parent: ``accepted`` (submit acknowledged, carries the
shard-local request id), ``response`` (terminal
:class:`~repro.service.ServiceResponse` + result value),
``snapshot_result`` / ``events_result`` / ``prom_result``, ``closed``,
and ``error`` (the worker-side exception for one correlated message).

Pickle is acceptable here because both endpoints are the same trusted
codebase on the same machine, spawned by the same parent — this is an
*internal* bus, not a network protocol; the CRC protects against pipe
corruption and truncation, not adversaries.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any

MAGIC = b"RSRV"
PROTOCOL_VERSION = 1

#: ``!`` network order: magic, version, flags, crc32, payload length
_HEADER = struct.Struct("!4sBBII")
HEADER_SIZE = _HEADER.size

#: parent -> worker message kinds
REQUEST_KINDS = frozenset({"submit", "snapshot", "events", "prom", "close"})
#: worker -> parent message kinds
RESPONSE_KINDS = frozenset({
    "accepted", "response", "snapshot_result", "events_result",
    "prom_result", "closed", "error",
})
KNOWN_KINDS = REQUEST_KINDS | RESPONSE_KINDS


class FrameError(RuntimeError):
    """A frame failed validation (magic/version/CRC/length/kind)."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message dict into a validated wire frame."""
    kind = message.get("kind")
    if kind not in KNOWN_KINDS:
        raise FrameError(f"unknown message kind {kind!r}")
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        0,  # flags, reserved
        zlib.crc32(payload) & 0xFFFFFFFF,
        len(payload),
    )
    return header + payload


def decode_frame(data: bytes) -> dict[str, Any]:
    """Validate and deserialize one wire frame back into its message."""
    if len(data) < HEADER_SIZE:
        raise FrameError(
            f"frame shorter than its {HEADER_SIZE}-byte header "
            f"({len(data)} bytes)"
        )
    magic, version, _flags, crc, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"protocol version {version} unsupported "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise FrameError(
            f"truncated frame: header claims {length} payload bytes, "
            f"got {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("payload CRC mismatch (corrupt frame)")
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"payload does not unpickle: {exc}") from exc
    if not isinstance(message, dict) or message.get("kind") not in KNOWN_KINDS:
        raise FrameError(f"decoded payload is not a known message: {message!r}")
    return message


def send_message(conn: Any, message: dict[str, Any]) -> None:
    """Frame and send one message over a ``Connection``-like endpoint."""
    conn.send_bytes(encode_frame(message))


def recv_message(conn: Any) -> dict[str, Any]:
    """Receive and validate one framed message (blocking)."""
    return decode_frame(conn.recv_bytes())


__all__ = [
    "FrameError",
    "HEADER_SIZE",
    "KNOWN_KINDS",
    "MAGIC",
    "PROTOCOL_VERSION",
    "REQUEST_KINDS",
    "RESPONSE_KINDS",
    "decode_frame",
    "encode_frame",
    "recv_message",
    "send_message",
]
